"""Run-server smoke: submit over HTTP, crash the worker, resume, verify.

CI drill for the whole control plane, end to end and with real
processes:

1. start a run-server (in-process, ephemeral port),
2. submit a ``fast_debug`` job over ``POST /v1/jobs``,
3. poll ``GET /v1/jobs/<id>/metrics`` while it trains,
4. SIGKILL the worker once two epochs are durably checkpointed,
5. resume over ``POST /v1/jobs/<id>/resume`` and wait for completion,
6. assert the finished job's metrics stream satisfies the
   drop-accounting balance (``repro.obs`` invariant) and that the final
   row's engine series are present,
7. assert the served raw metrics bytes equal the on-disk
   ``metrics.jsonl`` export.

Exit code 0 = every assertion held.
"""

from __future__ import annotations

import os
import signal
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import JobSpec, RunClient  # noqa: E402
from repro.obs.invariants import drop_balance_from_metrics  # noqa: E402
from repro.server.http import create_server  # noqa: E402


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}")
        raise SystemExit(1)
    print(f"ok: {message}")


def main() -> int:
    root = tempfile.mkdtemp(prefix="server-smoke-")
    server = create_server(root)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = RunClient(server.url)
    print(f"run-server on {server.url} (root {root})")

    try:
        health = client.health()
        check(health["ok"] and health["api_version"] == 1, "healthz answers")

        # Lossy queue settings so the drop-accounting ledger has real
        # entries to balance.
        spec = JobSpec.fast_debug(name="smoke", epochs=5, max_queue_size=1,
                                  queue_backpressure="drop",
                                  reliable_delivery=True)
        job_id = client.submit(spec)
        check(job_id.startswith("job-0001-"), f"submitted {job_id}")

        deadline = time.monotonic() + 180
        record = client.status(job_id)
        while record.get("epochs_completed", 0) < 2:
            assert time.monotonic() < deadline, "worker stalled"
            assert record["state"] in ("pending", "running"), record
            time.sleep(0.05)
            record = client.status(job_id)
        check(True, f"worker reached epoch {record['epochs_completed']}")
        rows_mid_run = len(client.metrics(job_id))
        check(rows_mid_run > 0, f"metrics stream live ({rows_mid_run} rows)")

        os.kill(record["pid"], signal.SIGKILL)
        print(f"killed worker pid {record['pid']} at "
              f"epoch {record['epochs_completed']}")
        deadline = time.monotonic() + 30
        while client.status(job_id)["state"] != "interrupted":
            check(time.monotonic() < deadline, "kill -9 reconciled")
            time.sleep(0.05)
        check(True, "kill -9 reconciled to 'interrupted'")

        client.resume(job_id)
        record = client.wait(job_id, timeout_s=180)
        check(record["state"] == "completed",
              f"resumed job completed (attempts={record['attempts']})")
        check(record["attempts"] == 2, "exactly one resume was needed")
        check(record["epochs_completed"] == 5, "every epoch accounted for")

        # Served bytes ARE the on-disk stream the worker wrote.
        raw = client.metrics_raw(job_id)
        disk = server.manager.metrics_path(job_id).read_bytes()
        check(raw == disk, "GET metrics?raw=1 == metrics.jsonl bytes")

        # The drop ledger balances across the crash/resume boundary.
        snapshot = client.snapshot(job_id)
        balance = drop_balance_from_metrics(snapshot)
        check(balance.holds,
              f"drop-accounting balance holds "
              f"(dropped={balance.queue_dropped:.0f})")
        check(balance.queue_dropped > 0, "the lossy queue actually shed")

        report = client.report(job_id)
        check(report["drop_balance"]["holds"] == 1,
              "report endpoint agrees the invariant holds")
        summary = client.result(job_id)["summary"]
        check(summary["epochs"] == 5, "result summary has every epoch")
        print("server smoke passed")
        return 0
    finally:
        server.shutdown_workers()
        server.shutdown()


if __name__ == "__main__":
    sys.exit(main())
