#!/usr/bin/env python
"""CI observability smoke: metrics + traces on a small chaotic run.

Drives one obs-enabled training run (lossy links, reliable delivery,
full-rate tracing, periodic flushes), exports the artifacts, and asserts
the observability contract end-to-end:

* the metrics sink flushed and the final snapshot satisfies the
  drop-balance invariant (``repro.obs.invariants``);
* the exported trace is schema-valid Chrome trace-event JSON and
  actually contains message-lifecycle spans;
* the ``repro.obs report`` CLI round-trips the exported
  ``metrics.jsonl`` (exit 0, invariant HOLDS) in both table and JSON
  formats;
* obs is deterministic: a same-seed run produces an identical metrics
  export and an identical trace;
* obs is inert when off: a same-seed obs-off run reaches the identical
  traffic ledger.

Exit status 0 means the obs plane works on this checkout; any assertion
failure (or crash in the run itself) fails the build.

Usage (from the repo root)::

    PYTHONPATH=src python scripts/obs_smoke.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.core.config import TrainingConfig
from repro.core.split import SplitSpec
from repro.core.trainer import SpatioTemporalTrainer
from repro.experiments import WorkloadSpec, build_workload
from repro.obs.invariants import assert_drop_balance, drop_balance_from_metrics
from repro.obs.tracing import validate_chrome_trace
from repro.simnet.topology import star_topology


def run_once(pieces, spec, workload, obs_dir=None, obs_enabled=True):
    latencies = list(np.linspace(0.002, 0.03, workload.num_end_systems))
    topology = star_topology(
        workload.num_end_systems,
        latencies_s=latencies,
        drop_probability=0.1,
        seed=workload.seed,
    )
    obs_knobs = {}
    if obs_enabled:
        obs_knobs = dict(
            obs_enabled=True,
            obs_trace_sample_rate=1.0,
            obs_flush_every_s=0.05,
            obs_dir=obs_dir,
        )
    config = TrainingConfig(
        epochs=workload.epochs,
        batch_size=workload.batch_size,
        mode="asynchronous",
        max_in_flight=1,
        max_queue_size=2,
        queue_backpressure="drop",
        server_step_time_s=0.004,
        reliable_delivery=True,
        retry_timeout_s=0.01,
        retry_max=3,
        seed=workload.seed,
        **obs_knobs,
    )
    trainer = SpatioTemporalTrainer(
        spec, pieces["parts"], config, topology=topology,
        train_transform=pieces["normalize"],
    )
    history = trainer.train()
    return trainer, history


def main() -> int:
    workload = WorkloadSpec.laptop(
        num_samples=320, num_end_systems=8, epochs=1, batch_size=16,
    )
    pieces = build_workload(workload)
    spec = SplitSpec(pieces["architecture"], client_blocks=1)

    with tempfile.TemporaryDirectory(prefix="obs_smoke_") as tmp:
        out = Path(tmp) / "run"
        trainer, history = run_once(pieces, spec, workload, obs_dir=str(out))

        # The smoke must exercise the plane, not sail past it.
        obs = history.observability()
        assert trainer.obs.enabled, "obs bundle was not enabled"
        assert obs["flushes"] > 0, "the metrics sink never flushed"
        assert obs["trace_emitted"] > 0, "the tracer emitted nothing"

        # The live registry snapshot satisfies the drop ledger both via
        # the trainer objects and via the exported metric names.
        assert_drop_balance(trainer)
        balance = drop_balance_from_metrics(trainer.obs.last_snapshot())
        assert balance.holds, f"metrics-view ledger violated: {balance.describe()}"

        # Exported artifacts: schema-valid trace, parseable JSONL.
        metrics_path = out / "metrics.jsonl"
        trace_path = out / "trace.json"
        assert metrics_path.exists() and trace_path.exists(), (
            "obs export did not write metrics.jsonl + trace.json"
        )
        trace = json.loads(trace_path.read_text())
        problems = validate_chrome_trace(trace)
        assert not problems, f"invalid Chrome trace: {problems[:5]}"
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert spans, "trace contains no lifecycle spans"
        rows = [json.loads(line) for line in metrics_path.read_text().splitlines()]
        assert len(rows) == obs["flushes"], "JSONL row count != flush count"

        # The report CLI round-trips the export.
        for fmt in ("table", "json"):
            result = subprocess.run(
                [sys.executable, "-m", "repro.obs", "report",
                 str(metrics_path), "--format", fmt],
                capture_output=True, text=True,
                env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            )
            assert result.returncode == 0, (
                f"report --format {fmt} failed "
                f"({result.returncode}):\n{result.stderr}"
            )
        assert "HOLDS" in result.stdout or json.loads(result.stdout), (
            "report produced no output"
        )

        # Determinism: a same-seed obs run exports identical artifacts.
        # The ``perf.*`` series are profiling, not physics — workspace
        # cache hits/misses depend on process-level allocator state, so
        # they are exempt (exactly like ``flush_wall_ms``).
        def physics_rows(path: Path):
            return [
                {"t": row["t"],
                 "metrics": [m for m in row["metrics"]
                             if not m["name"].startswith("perf.")]}
                for row in map(json.loads, path.read_text().splitlines())
            ]

        twin_out = Path(tmp) / "twin"
        twin, _ = run_once(pieces, spec, workload, obs_dir=str(twin_out))
        assert physics_rows(twin_out / "metrics.jsonl") == physics_rows(metrics_path), (
            "same-seed runs exported different metrics"
        )
        assert (twin_out / "trace.json").read_text() == trace_path.read_text(), (
            "same-seed runs exported different traces"
        )

        # Inertness: obs-off reaches the identical physical run.
        off, _ = run_once(pieces, spec, workload, obs_enabled=False)
        assert not off.obs.enabled and off.obs.flushes == 0
        assert off.transport.log.summary() == trainer.transport.log.summary(), (
            "enabling obs changed the traffic ledger"
        )

        print("obs smoke OK: "
              f"flushes={obs['flushes']}, "
              f"metric_rows={obs['metric_rows']}, "
              f"trace_events={obs['trace_events']}, "
              f"trace_emitted={obs['trace_emitted']}, "
              f"spans={len(spans)}, "
              f"queue_dropped={balance.queue_dropped}, "
              f"notified={balance.notified}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
