#!/usr/bin/env python
"""CI crash-recovery smoke: churn + durable checkpoints on a tiny workload.

Runs the ``server_failover`` sweep once with stochastic shard churn and
periodic checkpointing enabled, then asserts the dependability contract
end-to-end:

* crashes actually happened and every one was recovered from;
* checkpoints were written and at least one recovery restored from one;
* the RPO columns (lost simulated seconds / samples per crash) are
  present and sane — lost work is non-negative and bounded by the run.

Exit status 0 means the crash-recovery path works on this checkout;
any assertion failure (or crash in the sweep itself) fails the build.

Usage (from the repo root)::

    PYTHONPATH=src python scripts/crash_recovery_smoke.py
"""

from __future__ import annotations

import sys

from repro.experiments import WorkloadSpec, run_server_failover


def main() -> int:
    workload = WorkloadSpec.laptop(
        num_samples=240, num_end_systems=8, epochs=1, batch_size=16,
    )
    result = run_server_failover(
        workload=workload,
        mtbf_values_s=(0.02,),
        mttr_s=0.01,
        checkpoint_every_values_s=(0.002,),
        failover_policies=("standby",),
        sync_modes=("average",),
        server_sync_every=1000,  # no sync snapshot: checkpoints or bust
        near_latency_s=0.002,
        far_latency_s=0.03,
    )
    print(result.to_table())

    index = {name: position for position, name in enumerate(result.headers)}
    required = ("crashes", "recoveries", "rpo_lost_s", "rpo_samples",
                "recovered_from", "ckpts", "ckpt_wall_ms", "simulated_time_s")
    missing = [name for name in required if name not in index]
    assert not missing, f"RPO columns missing from the sweep: {missing}"

    assert len(result.rows) == 1
    row = result.rows[0]
    crashes = row[index["crashes"]]
    recoveries = row[index["recoveries"]]
    assert crashes > 0, "churn never fired — the smoke tested nothing"
    assert recoveries > 0, f"{crashes} crashes but no recoveries"
    assert row[index["ckpts"]] > 0, "no checkpoints were written"
    assert row[index["ckpt_wall_ms"]] > 0.0, "checkpoint overhead unaccounted"
    from_checkpoint = int(row[index["recovered_from"]].split("/")[0])
    assert from_checkpoint > 0, (
        f"no recovery used a checkpoint (recovered_from="
        f"{row[index['recovered_from']]!r})"
    )
    rpo_lost_s = row[index["rpo_lost_s"]]
    assert 0.0 <= rpo_lost_s <= crashes * row[index["simulated_time_s"]], (
        f"implausible rpo_lost_s={rpo_lost_s}"
    )
    assert row[index["rpo_samples"]] >= 0

    print(f"crash-recovery smoke OK: {crashes} crashes, {recoveries} "
          f"recoveries ({from_checkpoint} from checkpoints), "
          f"rpo_lost_s={rpo_lost_s:.4f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
