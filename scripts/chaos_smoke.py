#!/usr/bin/env python
"""CI chaos smoke: scripted faults + reliable delivery on a tiny workload.

Drives one training run through the full chaos plane — link loss, a link
flap, a hub-to-hub partition, a straggling shard, per-message corruption
/ duplication / reordering — with the reliability layer on (retries,
dedup, quorum-degraded sync), then asserts the robustness contract
end-to-end:

* chaos actually fired (fault events, corrupted/duplicated messages and
  retransmissions are all non-zero — the smoke tested something);
* the extended drop-accounting balance holds: every lost batch notified
  its client exactly once, and nothing leaked;
* determinism: a second run with the same seed produces a byte-identical
  traffic ledger and identical run-level statistics.

Exit status 0 means the chaos plane works on this checkout; any
assertion failure (or crash in the run itself) fails the build.

Usage (from the repo root)::

    PYTHONPATH=src python scripts/chaos_smoke.py
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core.config import TrainingConfig
from repro.core.split import SplitSpec
from repro.core.trainer import SpatioTemporalTrainer
from repro.experiments import WorkloadSpec, build_workload
from repro.obs.invariants import assert_drop_balance
from repro.simnet.topology import multi_hub_star_topology

#: Every fault class the plane supports, landing inside the tiny run.
CHAOS_SCHEDULE = [
    ("flap", 0.01, 0.02, 0),
    ("partition", 0.03, 0.03, 0, 1),
    ("straggler", 0.01, 0.08, 2, 20.0),
    ("leave", 0.06, 0.02, 3),
]


def run_once(pieces, spec, workload):
    latencies = list(np.linspace(0.002, 0.03, workload.num_end_systems))
    topology = multi_hub_star_topology(
        workload.num_end_systems, 3,
        assigner="latency_aware",
        latencies_s=latencies,
        drop_probability=0.1,
        inter_server_latency_s=0.005,
        seed=workload.seed,
    )
    config = TrainingConfig(
        epochs=workload.epochs,
        batch_size=workload.batch_size,
        num_servers=3,
        shard_assigner="latency_aware",
        server_sync_every=1,
        server_sync_mode="average",
        server_step_time_s=0.004,
        reliable_delivery=True,
        retry_timeout_s=0.01,
        retry_max=3,
        sync_quorum=0.5,
        sync_timeout_s=0.02,
        chaos_schedule=CHAOS_SCHEDULE,
        chaos_corrupt_probability=0.05,
        chaos_duplicate_probability=0.1,
        chaos_reorder_probability=0.1,
        seed=workload.seed,
    )
    trainer = SpatioTemporalTrainer(
        spec, pieces["parts"], config, topology=topology,
        train_transform=pieces["normalize"],
    )
    history = trainer.train()
    return trainer, history


def main() -> int:
    workload = WorkloadSpec.laptop(
        num_samples=320, num_end_systems=8, epochs=1, batch_size=16,
    )
    pieces = build_workload(workload)
    spec = SplitSpec(pieces["architecture"], client_blocks=1)

    trainer, history = run_once(pieces, spec, workload)
    log = trainer.transport.log
    stats = trainer.engine.stats

    # The smoke must exercise the plane, not sail past it.
    assert stats.chaos_events > 0, "no chaos events fired"
    assert log.corrupted_messages > 0, "message corruption never fired"
    assert log.retried_messages > 0, "no physically-lost attempt was retried"
    assert stats.deduped > 0, "the idempotent receiver absorbed nothing"
    assert stats.quorum_syncs > 0, (
        "the straggler never forced a quorum-degraded sync"
    )
    assert_drop_balance(trainer)

    # Same seed, same faults, same ledger — chaos is a regression tool
    # only because it is deterministic.
    twin, twin_history = run_once(pieces, spec, workload)
    assert_drop_balance(twin)
    assert log.summary() == twin.transport.log.summary(), (
        "same-seed runs produced different traffic ledgers"
    )
    assert history.queue_stats == twin_history.queue_stats, (
        "same-seed runs produced different run statistics"
    )
    assert history.reliability() == twin_history.reliability()

    reliability = history.reliability()
    print("chaos smoke OK: "
          f"chaos_events={stats.chaos_events}, "
          f"corrupted={log.corrupted_messages}, "
          f"duplicated={log.duplicated_messages}, "
          f"reordered={log.reordered_messages}, "
          f"retried={log.retried_messages}, "
          f"deduped={stats.deduped}, gave_up={stats.gave_up}, "
          f"quorum_syncs={stats.quorum_syncs}, "
          f"sync_timeouts={stats.sync_timeouts}")
    print(f"reliability view: {reliability}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
