"""Multi-shard drain throughput (PR 4 tentpole).

A sharded deployment splits one big backlog across S independent server
replicas, each draining its own queue/arena.  These benchmarks stage the
*same* 96-client backlog through 1, 2 and 4 shards and time a full
cluster drain — every shard's ``process_pending_batch`` — so
``BENCH_substrate.json`` records how the server-side step cost moves as
the union batch is split (per-shard batches shrink, per-step overhead is
paid S times; on a single core the shard drains serialize, which is the
honest lower bound a multi-process backend would beat).

Run with::

    pytest benchmarks/test_bench_cluster.py --benchmark-only
"""

import numpy as np
import pytest

from repro.cluster import ClusterCoordinator, ServerShard
from repro.core.messages import ActivationMessage
from repro.core.models import tiny_cnn_architecture
from repro.core.server import CentralServer
from repro.core.split import SplitSpec
from repro.nn import default_dtype
from repro.utils.perf import track

NUM_CLIENTS = 96
CLIENT_BATCH = 4


@pytest.fixture(scope="module")
def cluster_workload():
    """A split spec plus one activation message per client (96 total)."""
    with default_dtype(np.float32):
        architecture = tiny_cnn_architecture(image_size=16, num_blocks=3,
                                             base_filters=8, dense_units=64)
        spec = SplitSpec(architecture, client_blocks=1)
        shape = architecture.block_output_shape(1)
        rng = np.random.default_rng(7)
        messages = [
            ActivationMessage(
                end_system_id=index,
                batch_id=index,
                activations=rng.random((CLIENT_BATCH, *shape)).astype(np.float32),
                labels=rng.integers(0, 10, CLIENT_BATCH),
                arrival_time=float(index),
            )
            for index in range(NUM_CLIENTS)
        ]
    return spec, messages


@pytest.mark.benchmark(group="cluster")
@pytest.mark.parametrize("num_shards", [1, 2, 4])
def test_cluster_drain(benchmark, cluster_workload, num_shards):
    """Drain a 96-client backlog split across ``num_shards`` replicas."""
    spec, messages = cluster_workload
    with default_dtype(np.float32):
        shards = [
            ServerShard(index, CentralServer(spec, use_arena=True, seed=0),
                        f"server_{index}")
            for index in range(num_shards)
        ]
    cluster = ClusterCoordinator(
        shards=shards,
        assignment={index: index % num_shards for index in range(NUM_CLIENTS)},
    )

    def refill():
        # Enqueue-time work (admission + arena staging) happens on the
        # arrival path, exactly like a real backlog building up.
        for message in messages:
            cluster.shard_of(message.end_system_id).receive(message)
        return (), {}

    def drain():
        replies = 0
        for shard in shards:
            replies += len(shard.process_pending_batch())
        assert replies == NUM_CLIENTS
        return replies

    with track() as delta:
        benchmark.pedantic(drain, setup=refill, iterations=1, rounds=5,
                           warmup_rounds=1)
    assert cluster.samples_processed >= NUM_CLIENTS * CLIENT_BATCH
    benchmark.extra_info["clients"] = NUM_CLIENTS
    benchmark.extra_info["shards"] = num_shards
    benchmark.extra_info["rows_per_shard"] = NUM_CLIENTS * CLIENT_BATCH // num_shards
    if delta.get("arena_gather_zero_copy"):
        benchmark.extra_info["arena_gather_zero_copy"] = delta["arena_gather_zero_copy"]


@pytest.mark.benchmark(group="cluster")
def test_cluster_sync_average_cost(benchmark, cluster_workload):
    """Wall cost of one full-averaging sync across 4 replicas."""
    spec, messages = cluster_workload
    with default_dtype(np.float32):
        shards = [
            ServerShard(index, CentralServer(spec, use_arena=True, seed=0),
                        f"server_{index}")
            for index in range(4)
        ]
    cluster = ClusterCoordinator(
        shards=shards,
        assignment={index: index % 4 for index in range(NUM_CLIENTS)},
    )

    def desync():
        # Give every shard distinct weights and fresh per-sync counters,
        # as one round of independent training would.
        for offset, shard in enumerate(shards):
            state = {
                name: value + (offset + 1) * 1e-3
                for name, value in shard.server.state_dict().items()
            }
            shard.server.load_state_dict(state)
            shard.samples_since_sync = (offset + 1) * CLIENT_BATCH
        return (), {}

    benchmark.pedantic(cluster.sync_average, setup=desync, iterations=1,
                       rounds=5, warmup_rounds=1)
    benchmark.extra_info["shards"] = 4
    benchmark.extra_info["parameters"] = int(sum(
        np.asarray(value).size for value in shards[0].server.state_dict().values()
    ))
