"""Benchmark — Figure 4: privacy of the smashed activations.

Paper reference (qualitative): the raw image is fully visible, the
Conv2D(L1) activation is blurred but may be recognized, and the full L1
(Conv2D + MaxPooling2D) activation definitely hides the original image.

Expected shape: reconstruction quality (PSNR/SSIM, inverse of NMSE) is
highest for the input and lowest for the post-pooling activation.
"""

import pytest

from conftest import run_once
from repro.experiments.figure4 import run_figure4


@pytest.mark.benchmark(group="figure4")
def test_figure4_leakage_decreases_through_the_first_block(benchmark, bench_workload):
    result = run_once(benchmark, run_figure4, workload=bench_workload,
                      num_probe_images=200)
    print()
    print(result.to_table("{:.3f}"))

    layers = result.column("layer")
    nmse = dict(zip(layers, result.column("reconstruction_nmse")))
    ssim = dict(zip(layers, result.column("reconstruction_ssim")))
    correlation = dict(zip(layers, result.column("pixel_correlation")))

    # Fig. 4(a) vs 4(c): the post-pooling activation reconstructs the raw
    # image strictly worse than the input reconstructs itself.
    assert nmse["L1_pool"] > nmse["input"]
    assert ssim["L1_pool"] < ssim["input"]
    # The rendered post-pool activation correlates with the original image
    # no better than the input rendering does.
    assert correlation["L1_pool"] <= correlation["input"]


@pytest.mark.benchmark(group="figure4")
def test_figure4_deeper_cuts_leak_no_more_than_first_block(benchmark, quick_bench_workload):
    """Extension of Fig. 4: pushing the cut deeper does not increase leakage."""
    result = run_once(benchmark, run_figure4, workload=quick_bench_workload,
                      client_blocks=2, num_probe_images=150, train_first=False)
    print()
    print(result.to_table("{:.3f}"))
    layers = result.column("layer")
    nmse = dict(zip(layers, result.column("reconstruction_nmse")))
    assert nmse["L2_pool"] >= nmse["input"] - 1e-6
