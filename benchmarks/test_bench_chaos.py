"""Reliability-layer and chaos-plane overhead benchmarks.

The PR 8 chaos plane promises that a fault-free run with
``reliable_delivery`` off takes the exact legacy code path — so the
first benchmark is the control, the second prices what turning the
reliability layer on costs when nothing ever fails (sequence numbers,
ack bookkeeping, the receiver's seen-set), and the third measures a
full chaos storm (link loss + corruption/duplication/reordering with
retries and dedup absorbing it).  The off/on fault-free pair is the
number to watch: it is pure protocol overhead.

Run with::

    pytest benchmarks/test_bench_chaos.py --benchmark-only
"""

import numpy as np
import pytest

from repro.core.config import TrainingConfig
from repro.core.models import tiny_cnn_architecture
from repro.core.split import SplitSpec
from repro.core.trainer import SpatioTemporalTrainer
from repro.data.datasets import SyntheticCIFAR10
from repro.data.partition import IIDPartitioner
from repro.simnet.topology import star_topology

NUM_CLIENTS = 48

WARMUP_ROUNDS = 1
MEASURED_ROUNDS = 5


def build_trainer(drop_probability=0.0, **overrides):
    architecture = tiny_cnn_architecture(image_size=8, num_blocks=2, base_filters=4,
                                         dense_units=16)
    spec = SplitSpec(architecture, client_blocks=1)
    dataset = SyntheticCIFAR10(num_samples=480, image_size=8, seed=0)
    parts = IIDPartitioner(NUM_CLIENTS, seed=0).partition(dataset)
    topology = star_topology(
        NUM_CLIENTS, latencies_s=list(np.linspace(0.002, 0.06, NUM_CLIENTS)),
        drop_probability=drop_probability, seed=0,
    )
    config = TrainingConfig(
        epochs=1, batch_size=8, mode="asynchronous", max_in_flight=1,
        server_step_time_s=0.002, seed=0, **overrides,
    )
    return SpatioTemporalTrainer(spec, parts, config, topology=topology)


def run_epoch_benchmark(benchmark, **build_kwargs):
    trainers = []

    def setup():
        trainers.append(build_trainer(**build_kwargs))
        return (trainers[-1],), {}

    def one_epoch(trainer):
        history = trainer.train()
        return history.final_train_accuracy

    accuracy = benchmark.pedantic(one_epoch, setup=setup, iterations=1,
                                  rounds=MEASURED_ROUNDS,
                                  warmup_rounds=WARMUP_ROUNDS)
    assert accuracy >= 0.0
    return trainers[-1]


@pytest.mark.benchmark(group="chaos")
def test_fault_free_reliability_off(benchmark):
    """The control: legacy transport path, no chaos machinery at all."""
    trainer = run_epoch_benchmark(benchmark)
    assert trainer.fault_plan is None
    assert trainer.message_chaos is None
    assert trainer.engine.stats.retries == 0
    benchmark.extra_info["engine_events"] = int(
        trainer.engine.stats.events_processed)


@pytest.mark.benchmark(group="chaos")
def test_fault_free_reliability_on(benchmark):
    """Pure protocol overhead: acks, seen-sets, zero actual faults.

    The ack timeout sits above the worst-case round trip so no spurious
    retransmissions fire — any delta against the off row is bookkeeping.
    """
    trainer = run_epoch_benchmark(
        benchmark, reliable_delivery=True, retry_timeout_s=0.5,
        retry_max=3,
    )
    stats = trainer.engine.stats
    assert stats.gave_up == 0
    assert stats.deduped == 0
    assert trainer.transport.log.retried_messages == 0
    benchmark.extra_info["engine_events"] = int(stats.events_processed)


@pytest.mark.benchmark(group="chaos")
def test_chaos_storm_with_reliability(benchmark):
    """Loss + corruption + duplication + reordering, repaired by retries."""
    trainer = run_epoch_benchmark(
        benchmark, drop_probability=0.1, reliable_delivery=True,
        retry_timeout_s=0.5, retry_max=3,
        chaos_corrupt_probability=0.02, chaos_duplicate_probability=0.05,
        chaos_reorder_probability=0.1,
    )
    log = trainer.transport.log
    assert log.retried_messages > 0
    benchmark.extra_info["retried_messages"] = int(log.retried_messages)
    benchmark.extra_info["deduped"] = int(trainer.engine.stats.deduped)
    benchmark.extra_info["engine_events"] = int(
        trainer.engine.stats.events_processed)
