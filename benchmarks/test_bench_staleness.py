"""Benchmark — queue-scheduling ablation (the paper's Fig. 2 discussion).

The paper: "the parameters from the end-system can arrive at the server
lately or sparsely ... the learning performance can be biased due to the
differences of arrivals from end-systems.  Thus, parameter scheduling is
required."

Expected shape: within a fixed simulated time budget the nearby
end-system completes far more updates than the remote one; fairness-aware
scheduling (weighted_fair / round_robin / staleness) never yields a lower
Jain fairness index than plain FIFO.
"""

import pytest

from conftest import run_once
from repro.experiments.staleness import run_staleness
from repro.experiments.base import WorkloadSpec


@pytest.mark.benchmark(group="staleness")
def test_scheduling_policies_under_heterogeneous_latency(benchmark, bench_workload):
    workload = WorkloadSpec.laptop(
        num_samples=bench_workload.num_samples,
        epochs=bench_workload.epochs,
        num_end_systems=4,
        partition="dirichlet",
        partition_kwargs={"alpha": 0.5},
        batch_size=bench_workload.batch_size,
        seed=bench_workload.seed,
    )
    result = run_once(benchmark, run_staleness, workload=workload)
    print()
    print(result.to_table("{:.3f}"))

    policies = result.column("policy")
    fairness = dict(zip(policies, result.column("fairness_index")))
    fast = dict(zip(policies, result.column("updates_fast_client")))
    slow = dict(zip(policies, result.column("updates_slow_client")))

    # Arrival bias exists: under FIFO the nearby end-system gets at least as
    # many updates through as the far one (usually far more).
    assert fast["fifo"] >= slow["fifo"]
    # Fairness-aware policies do not do worse than FIFO on Jain's index.
    assert fairness["weighted_fair"] >= fairness["fifo"] - 0.05
    # Everything still trains above chance accuracy.
    assert min(result.column("accuracy_pct")) > 10.0
