"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures (or one of
the ablations DESIGN.md calls out) on the laptop-scale workload and
prints the resulting table, so that running::

    pytest benchmarks/ --benchmark-only -s

produces the same rows the paper reports.  The goal is shape fidelity
(who wins, by roughly what factor, where the trend bends), not absolute
numbers — the substrate is a NumPy simulator, not the authors' GPU
testbed.  ``--scale paper`` on the CLI (``repro-experiments``) runs the
full-size configuration instead.
"""

from __future__ import annotations

import datetime
import json
import platform
from pathlib import Path

import pytest

from repro.experiments.base import WorkloadSpec

# Seed-tree timings of the substrate group (mean ms, measured before the
# fast-compute-substrate work landed) so BENCH_substrate.json always shows
# the before/after trajectory.
SEED_BASELINE_MS = {
    "test_paper_cnn_forward": 25.03,
    "test_paper_cnn_forward_backward": 59.33,
    "test_split_round_trip": 10.48,
    "test_synthetic_dataset_generation": 47.33,
    "test_one_synchronous_epoch_wall_time": 142.01,
}

# PR 2 timings of the hotpath/engine groups (mean ms from the PR 2
# BENCH_substrate.json) — the reference for PR 3's server-throughput
# substrate (fused losses/pooling, backend GEMMs, activation arena).
PR2_BASELINE_MS = {
    "test_conv2d_forward[float32]": 1.561,
    "test_conv2d_forward[float64]": 3.387,
    "test_conv2d_forward_backward[float32]": 3.807,
    "test_conv2d_forward_backward[float64]": 9.021,
    "test_max_pool_forward_backward": 3.650,
    "test_max_pool_inference_fast_path": 0.214,
    "test_col2im_non_overlapping_fast_path": 0.261,
    "test_col2im_general_path": 0.422,
    "test_server_sequential_drain": 20.668,
    "test_server_batched_drain": 12.446,
    "test_async_epoch_100_clients_event_throughput": 120.413,
    "test_async_epoch_100_clients_bounded_queue": 73.305,
}


def pytest_addoption(parser):
    parser.addoption(
        "--bench-samples", type=int, default=1200,
        help="synthetic dataset size used by the benchmark workloads",
    )
    parser.addoption(
        "--bench-epochs", type=int, default=6,
        help="training epochs used by the benchmark workloads",
    )


@pytest.fixture(scope="session")
def bench_workload(request) -> WorkloadSpec:
    """Laptop-scale workload shared by the experiment benchmarks."""
    return WorkloadSpec.laptop(
        num_samples=request.config.getoption("--bench-samples"),
        epochs=request.config.getoption("--bench-epochs"),
        num_end_systems=4,
        batch_size=32,
        seed=0,
    )


@pytest.fixture(scope="session")
def quick_bench_workload(request) -> WorkloadSpec:
    """Smaller workload for the per-configuration micro-benchmarks."""
    return WorkloadSpec.laptop(
        num_samples=max(400, request.config.getoption("--bench-samples") // 3),
        epochs=max(2, request.config.getoption("--bench-epochs") // 3),
        num_end_systems=4,
        batch_size=32,
        seed=0,
    )


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, iterations=1, rounds=1)


def pytest_sessionfinish(session, exitstatus):
    """Emit ``BENCH_substrate.json`` with the substrate/hotpath op timings.

    The file records mean/min timings per benchmark together with the
    seed-tree baseline and the substrate's op-level perf counters, so
    future PRs can track the performance trajectory without re-running
    the seed revision.
    """
    # Only benchmark-only sessions may write the tracking file: a plain
    # test run executes benchmarks once un-calibrated and has the process
    # -global perf counters polluted with unit-test traffic.
    if not session.config.getoption("--benchmark-only", default=False):
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    benchmarks = getattr(bench_session, "benchmarks", None)
    if not benchmarks:
        return
    rows = []
    for bench in benchmarks:
        group = getattr(bench, "group", None)
        if group not in {"substrate", "hotpaths-conv", "hotpaths-pool",
                         "hotpaths-col2im", "hotpaths-server", "engine",
                         "cluster", "state", "chaos", "obs"}:
            continue
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        name = getattr(bench, "name", "?")
        row = {
            "name": name,
            "group": group,
            "mean_ms": getattr(stats, "mean", float("nan")) * 1e3,
            "min_ms": getattr(stats, "min", float("nan")) * 1e3,
            "stddev_ms": getattr(stats, "stddev", float("nan")) * 1e3,
            "rounds": getattr(stats, "rounds", None),
        }
        extra_info = dict(getattr(bench, "extra_info", None) or {})
        if extra_info:
            # The engine benchmarks report event throughput here so the
            # scheduler's overhead is tracked across PRs alongside timings.
            row["extra_info"] = extra_info
        baseline = SEED_BASELINE_MS.get(name)
        if baseline is not None:
            row["seed_baseline_ms"] = baseline
            mean = row["mean_ms"]
            row["speedup_vs_seed"] = round(baseline / mean, 3) if mean else None
        pr2_baseline = PR2_BASELINE_MS.get(name)
        if pr2_baseline is not None:
            row["pr2_baseline_ms"] = pr2_baseline
            mean = row["mean_ms"]
            row["speedup_vs_pr2"] = round(pr2_baseline / mean, 3) if mean else None
        rows.append(row)
    if not rows:
        return
    # Only (re)write the tracking file when the run covered every tracked
    # benchmark — the substrate group *and* the gated hotpaths/engine set
    # that check_regression.py consumes; a filtered run (-k, single file)
    # must not clobber the cross-PR snapshot with partial data.
    row_names = {row["name"] for row in rows}
    if not row_names.issuperset(SEED_BASELINE_MS) or not row_names.issuperset(PR2_BASELINE_MS):
        return

    from repro.nn import get_default_dtype
    from repro.utils.perf import counters

    payload = {
        "generated_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "default_dtype": str(get_default_dtype()),
        "perf_counters": counters.snapshot(),
        "benchmarks": sorted(rows, key=lambda row: (row["group"], row["name"])),
    }
    output = Path(str(session.config.rootpath)) / "BENCH_substrate.json"
    output.write_text(json.dumps(payload, indent=2) + "\n")
