"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures (or one of
the ablations DESIGN.md calls out) on the laptop-scale workload and
prints the resulting table, so that running::

    pytest benchmarks/ --benchmark-only -s

produces the same rows the paper reports.  The goal is shape fidelity
(who wins, by roughly what factor, where the trend bends), not absolute
numbers — the substrate is a NumPy simulator, not the authors' GPU
testbed.  ``--scale paper`` on the CLI (``repro-experiments``) runs the
full-size configuration instead.
"""

from __future__ import annotations

import pytest

from repro.experiments.base import WorkloadSpec


def pytest_addoption(parser):
    parser.addoption(
        "--bench-samples", type=int, default=1200,
        help="synthetic dataset size used by the benchmark workloads",
    )
    parser.addoption(
        "--bench-epochs", type=int, default=6,
        help="training epochs used by the benchmark workloads",
    )


@pytest.fixture(scope="session")
def bench_workload(request) -> WorkloadSpec:
    """Laptop-scale workload shared by the experiment benchmarks."""
    return WorkloadSpec.laptop(
        num_samples=request.config.getoption("--bench-samples"),
        epochs=request.config.getoption("--bench-epochs"),
        num_end_systems=4,
        batch_size=32,
        seed=0,
    )


@pytest.fixture(scope="session")
def quick_bench_workload(request) -> WorkloadSpec:
    """Smaller workload for the per-configuration micro-benchmarks."""
    return WorkloadSpec.laptop(
        num_samples=max(400, request.config.getoption("--bench-samples") // 3),
        epochs=max(2, request.config.getoption("--bench-epochs") // 3),
        num_end_systems=4,
        batch_size=32,
        seed=0,
    )


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, iterations=1, rounds=1)
