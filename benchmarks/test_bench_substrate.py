"""Micro-benchmarks of the NumPy substrate and the split-learning round trip.

These are throughput benchmarks (pytest-benchmark's bread and butter)
rather than table reproductions: they document how expensive the Fig.-3
CNN's forward/backward pass and one full client→server→client training
round trip are on this substrate, and they catch performance regressions
in the im2col convolution path.

They run at the library's float32 dtype-policy default (the fast mode;
see :mod:`repro.nn.dtype`).  After a ``--benchmark-only`` session the
conftest's ``pytest_sessionfinish`` hook writes ``BENCH_substrate.json``
at the repo root with the measured op timings next to the seed-tree
baseline, so the performance trajectory is tracked across PRs.
"""

import numpy as np
import pytest

from repro.core.config import TrainingConfig
from repro.core.end_system import EndSystem
from repro.core.models import paper_cnn_architecture, tiny_cnn_architecture
from repro.core.server import CentralServer
from repro.core.split import SplitSpec
from repro.data.datasets import SyntheticCIFAR10
from repro.data.loader import DataLoader
from repro.nn import CrossEntropyLoss, Tensor


@pytest.fixture(scope="module")
def paper_batch():
    rng = np.random.default_rng(0)
    return rng.random((16, 3, 32, 32)), rng.integers(0, 10, 16)


@pytest.fixture(scope="module")
def paper_model():
    return paper_cnn_architecture().build(seed=0)


@pytest.mark.benchmark(group="substrate")
def test_paper_cnn_forward(benchmark, paper_model, paper_batch):
    images, _ = paper_batch

    def forward():
        return paper_model(Tensor(images)).data

    logits = benchmark(forward)
    assert logits.shape == (16, 10)


@pytest.mark.benchmark(group="substrate")
def test_paper_cnn_forward_backward(benchmark, paper_model, paper_batch):
    images, labels = paper_batch
    loss_fn = CrossEntropyLoss()

    def step():
        paper_model.zero_grad()
        loss = loss_fn(paper_model(Tensor(images)), labels)
        loss.backward()
        return loss.item()

    loss_value = benchmark(step)
    assert loss_value > 0


@pytest.mark.benchmark(group="substrate")
def test_split_round_trip(benchmark):
    """One complete split-learning step: client forward, server train, client update."""
    architecture = tiny_cnn_architecture(image_size=16, num_blocks=3, base_filters=8,
                                         dense_units=64)
    spec = SplitSpec(architecture, client_blocks=1)
    dataset = SyntheticCIFAR10(num_samples=64, image_size=16, seed=0)
    loader = DataLoader(dataset, batch_size=32, seed=0)
    end_system = EndSystem(0, loader, spec, seed=1)
    server = CentralServer(spec, seed=2)
    rng = np.random.default_rng(0)
    images = rng.random((32, 3, 16, 16))
    labels = rng.integers(0, 10, 32)

    def round_trip():
        message = end_system.forward_batch(images, labels)
        gradient = server.process(message)
        end_system.apply_gradient(gradient)
        return gradient.loss

    loss_value = benchmark(round_trip)
    assert loss_value > 0


@pytest.mark.benchmark(group="substrate")
def test_synthetic_dataset_generation(benchmark):
    def generate():
        return SyntheticCIFAR10(num_samples=200, image_size=32, seed=3)

    dataset = benchmark(generate)
    assert len(dataset) == 200


@pytest.mark.benchmark(group="substrate")
def test_one_synchronous_epoch_wall_time(benchmark):
    """End-to-end cost of one synchronous epoch on the laptop workload."""
    from repro.core.trainer import SpatioTemporalTrainer
    from repro.data.partition import IIDPartitioner

    architecture = tiny_cnn_architecture(image_size=16, num_blocks=3, base_filters=8,
                                         dense_units=64)
    spec = SplitSpec(architecture, client_blocks=1)
    dataset = SyntheticCIFAR10(num_samples=400, image_size=16, seed=0)
    parts = IIDPartitioner(4, seed=0).partition(dataset)

    def one_epoch():
        trainer = SpatioTemporalTrainer(
            spec, parts, TrainingConfig(epochs=1, batch_size=32, seed=0)
        )
        history = trainer.train()
        return history.final_train_accuracy

    accuracy = benchmark.pedantic(one_epoch, iterations=1, rounds=1)
    assert accuracy >= 0.0
