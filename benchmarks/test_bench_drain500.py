"""Hundred-to-five-hundred-client drain throughput (PR 3 tentpole).

The server's batched drain is the throughput bottleneck of the whole
deployment: wall-clock scales with how fast one queue's worth of
activation messages becomes one training step.  These benchmarks stage a
full 500-client backlog through ``CentralServer.receive`` (the arena
copy happens there, at enqueue time, exactly as it would during network
arrival) and time only the drain — ``process_pending_batch`` — which
trains on a contiguous zero-copy view of the activation arena.

``test_server_drain_500_concat`` runs the identical workload with the
arena disabled, so ``BENCH_substrate.json`` records what the
``np.concatenate`` rebuild costs at this scale.

Run with::

    pytest benchmarks/test_bench_drain500.py --benchmark-only
"""

import numpy as np
import pytest

from repro.core.messages import ActivationMessage
from repro.core.models import tiny_cnn_architecture
from repro.core.server import CentralServer
from repro.core.split import SplitSpec
from repro.nn import default_dtype
from repro.utils.perf import counters, track

NUM_CLIENTS = 500
CLIENT_BATCH = 4


@pytest.fixture(scope="module")
def drain_workload():
    """A split spec plus one activation message per client (500 total)."""
    with default_dtype(np.float32):
        architecture = tiny_cnn_architecture(image_size=16, num_blocks=3,
                                             base_filters=8, dense_units=64)
        spec = SplitSpec(architecture, client_blocks=1)
        shape = architecture.block_output_shape(1)
        rng = np.random.default_rng(7)
        messages = [
            ActivationMessage(
                end_system_id=index,
                batch_id=index,
                activations=rng.random((CLIENT_BATCH, *shape)).astype(np.float32),
                labels=rng.integers(0, 10, CLIENT_BATCH),
                arrival_time=float(index),
            )
            for index in range(NUM_CLIENTS)
        ]
    return spec, messages


def _drain_benchmark(benchmark, drain_workload, use_arena):
    spec, messages = drain_workload
    with default_dtype(np.float32):
        server = CentralServer(spec, use_arena=use_arena, seed=0)

    def refill():
        # Enqueue-time work (admission + arena staging) happens here, on
        # the arrival path, exactly like a real backlog building up.
        for message in messages:
            server.receive(message)
        return (), {}

    def drain():
        results = server.process_pending_batch()
        assert len(results) == NUM_CLIENTS
        return results

    with track() as delta:
        benchmark.pedantic(drain, setup=refill, iterations=1, rounds=5,
                           warmup_rounds=1)
    assert server.samples_processed >= NUM_CLIENTS * CLIENT_BATCH
    benchmark.extra_info["clients"] = NUM_CLIENTS
    benchmark.extra_info["union_batch"] = NUM_CLIENTS * CLIENT_BATCH
    for key in ("arena_gather_zero_copy", "arena_gather_fallback",
                "arena_staged", "arena_grows"):
        if delta.get(key):
            benchmark.extra_info[key] = delta[key]


@pytest.mark.benchmark(group="hotpaths-server")
def test_server_drain_500_arena(benchmark, drain_workload):
    """500-client drain through the zero-copy arena gather."""
    _drain_benchmark(benchmark, drain_workload, use_arena=True)
    assert counters.get("arena_gather_zero_copy") > 0


@pytest.mark.benchmark(group="hotpaths-server")
def test_server_drain_500_concat(benchmark, drain_workload):
    """Identical 500-client drain rebuilding the batch with np.concatenate."""
    _drain_benchmark(benchmark, drain_workload, use_arena=False)
