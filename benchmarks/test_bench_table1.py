"""Benchmark — Table I: accuracy vs. layers at the end-systems.

Paper reference (CIFAR-10, Fig.-3 CNN)::

    Nothing (all layers in the server)   71.09 %
    L1                                   68.18 %
    L1, L2                               67.92 %
    L1, L2, L3                           66.00 %
    L1, L2, L3, L4                       65.66 %

Expected shape on the synthetic workload: the centralized row is the
best, accuracy degrades as blocks move to the end-systems, and the total
degradation stays within a few percentage points (the paper's is 5.43 %).
"""

import pytest

from conftest import run_once
from repro.experiments.table1 import run_table1


@pytest.mark.benchmark(group="table1")
def test_table1_accuracy_vs_split_depth(benchmark, bench_workload):
    result = run_once(benchmark, run_table1, workload=bench_workload)
    print()
    print(result.to_table())

    accuracies = result.column("accuracy_pct")
    labels = result.column("layers_at_end_systems")
    assert labels[0].startswith("Nothing")

    # Shape check 1: the non-private centralized configuration is the best.
    assert accuracies[0] == max(accuracies)
    # Shape check 2: every split configuration is above chance (10 classes).
    assert min(accuracies) > 20.0
    # Shape check 3: the worst-case degradation stays moderate (paper: 5.43 %),
    # allowing slack for the small synthetic workload.
    degradation = accuracies[0] - min(accuracies)
    assert degradation < 35.0
    # Shape check 4: deeper cuts do not *improve* on the centralized model.
    assert all(accuracy <= accuracies[0] + 1.0 for accuracy in accuracies[1:])


@pytest.mark.benchmark(group="table1")
def test_table1_privacy_preserving_cut_is_near_optimal(benchmark, bench_workload):
    """The paper's headline: the L1 cut loses only a few points vs. centralized.

    Uses the full benchmark budget (not the quick one) because the
    per-end-system first block needs enough local data/epochs to train;
    with a starved budget the gap widens artificially.
    """
    result = run_once(benchmark, run_table1, workload=bench_workload,
                      client_block_range=[0, 1])
    print()
    print(result.to_table())
    centralized, l1 = result.column("accuracy_pct")
    assert l1 > 0.5 * centralized
