"""Micro-benchmarks for the substrate's allocation-aware hot paths.

Each benchmark isolates one optimisation from the fast-compute-substrate
work so regressions show up at the op level rather than only in the
end-to-end numbers:

* the float32 dtype policy (same op at float32 vs float64),
* the single-copy im2col GEMM path in ``conv2d``,
* the non-overlapping ``col2im`` reshape fast path (the paper's
  MaxPooling2D case) vs the general strided-scatter path,
* the no-grad inference fast path (workspace-cached columns, view-reduce
  pooling),
* batched server-side queue draining vs per-message processing.

Run with::

    pytest benchmarks/test_bench_hotpaths.py --benchmark-only
"""

import numpy as np
import pytest

import repro.nn.functional as F
from repro.core.messages import ActivationMessage
from repro.core.models import tiny_cnn_architecture
from repro.core.server import CentralServer
from repro.core.split import SplitSpec
from repro.nn import Tensor, default_dtype, no_grad
from repro.nn.layers.base import Parameter


@pytest.fixture(scope="module", params=[np.float32, np.float64],
                ids=["float32", "float64"])
def conv_setup(request):
    """A paper-L2-sized convolution problem in both policy dtypes."""
    dtype = request.param
    rng = np.random.default_rng(0)
    images = rng.random((16, 16, 16, 16)).astype(dtype)
    weight = Parameter(rng.random((32, 16, 3, 3)).astype(dtype))
    bias = Parameter(rng.random(32).astype(dtype))
    return dtype, images, weight, bias


@pytest.mark.benchmark(group="hotpaths-conv")
def test_conv2d_forward(benchmark, conv_setup):
    dtype, images, weight, bias = conv_setup
    inputs = Tensor(images, dtype=dtype)

    def forward():
        with no_grad():
            return F.conv2d(inputs, weight, bias, stride=1, padding=1).data

    out = benchmark(forward)
    assert out.dtype == dtype


@pytest.mark.benchmark(group="hotpaths-conv")
def test_conv2d_forward_backward(benchmark, conv_setup):
    dtype, images, weight, bias = conv_setup

    def step():
        inputs = Tensor(images, requires_grad=True, dtype=dtype)
        weight.zero_grad()
        bias.zero_grad()
        out = F.conv2d(inputs, weight, bias, stride=1, padding=1)
        out.backward(np.ones_like(out.data))
        return inputs.grad

    grad = benchmark(step)
    assert grad.dtype == dtype


@pytest.mark.benchmark(group="hotpaths-pool")
def test_max_pool_forward_backward(benchmark):
    rng = np.random.default_rng(1)
    images = rng.random((16, 16, 32, 32)).astype(np.float32)

    def step():
        inputs = Tensor(images, requires_grad=True, dtype=np.float32)
        out = F.max_pool2d(inputs, 2)
        out.backward(np.ones_like(out.data))
        return inputs.grad

    grad = benchmark(step)
    assert grad.shape == images.shape


@pytest.mark.benchmark(group="hotpaths-pool")
def test_max_pool_inference_fast_path(benchmark):
    rng = np.random.default_rng(2)
    images = rng.random((16, 16, 32, 32)).astype(np.float32)
    inputs = Tensor(images, dtype=np.float32)

    def infer():
        with no_grad():
            return F.max_pool2d(inputs, 2).data

    out = benchmark(infer)
    assert out.shape == (16, 16, 16, 16)


@pytest.fixture(scope="module")
def col2im_cols():
    rng = np.random.default_rng(3)
    return rng.random((16, 16, 2, 2, 16, 16)).astype(np.float32)


@pytest.mark.benchmark(group="hotpaths-col2im")
def test_col2im_non_overlapping_fast_path(benchmark, col2im_cols):
    """stride == kernel, no padding: folds via reshape (no scatter loop)."""
    out = benchmark(F.col2im, col2im_cols, (16, 16, 32, 32), (2, 2), (2, 2), (0, 0))
    assert out.shape == (16, 16, 32, 32)


@pytest.mark.benchmark(group="hotpaths-col2im")
def test_col2im_general_path(benchmark, col2im_cols):
    """Overlapping windows (stride < kernel) take the strided += loop."""
    out = benchmark(F.col2im, col2im_cols, (16, 16, 17, 17), (2, 2), (1, 1), (0, 0))
    assert out.shape == (16, 16, 17, 17)


# --------------------------------------------------------------------------- #
# Batched queue draining
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def queue_workload():
    """A split spec plus 8 pending activation messages from 8 clients."""
    with default_dtype(np.float32):
        architecture = tiny_cnn_architecture(image_size=16, num_blocks=3,
                                             base_filters=8, dense_units=64)
        spec = SplitSpec(architecture, client_blocks=1)
        shape = architecture.block_output_shape(1)
        rng = np.random.default_rng(4)
        messages = [
            ActivationMessage(
                end_system_id=index,
                batch_id=index,
                activations=rng.random((16, *shape)).astype(np.float32),
                labels=rng.integers(0, 10, 16),
            )
            for index in range(8)
        ]
    return spec, messages


@pytest.mark.benchmark(group="hotpaths-server")
def test_server_sequential_drain(benchmark, queue_workload):
    spec, messages = queue_workload
    with default_dtype(np.float32):
        server = CentralServer(spec, seed=0)

    def drain():
        for message in messages:
            server.process(message)
        return server.batches_processed

    processed = benchmark(drain)
    assert processed >= len(messages)


@pytest.mark.benchmark(group="hotpaths-server")
def test_server_batched_drain(benchmark, queue_workload):
    spec, messages = queue_workload
    with default_dtype(np.float32):
        server = CentralServer(spec, seed=0)

    def drain():
        server.process_batch(messages)
        return server.batches_processed

    processed = benchmark(drain)
    assert processed >= len(messages)
