"""Observability-plane overhead benchmarks.

The obs plane promises that *off* means free (the run executes with the
shared inert ``NULL_OBS`` bundle — same code path, no-op hooks) and that
*on* costs under ~5% even with full-rate tracing.  The pair here prices
both sides on the same lossy asynchronous workload the chaos benchmarks
use: the off row is the control, and the sampled-on row carries the
metrics registry, the queue-wait/retry histograms, periodic 5 Hz
(sim-time) flushes and full-rate span tracing.

The flush cadence is the cost knob: one flush collects every registered
series (~0.16 ms for this workload's ~84 series, reported per-run as
``flush_wall_ms`` in the extra info), so overhead scales linearly with
``obs_flush_every_s`` while tracing and histogram observes are noise by
comparison.

Run with::

    pytest benchmarks/test_bench_obs.py --benchmark-only
"""

import numpy as np
import pytest

from repro.core.config import TrainingConfig
from repro.core.models import tiny_cnn_architecture
from repro.core.split import SplitSpec
from repro.core.trainer import SpatioTemporalTrainer
from repro.data.datasets import SyntheticCIFAR10
from repro.data.partition import IIDPartitioner
from repro.simnet.topology import star_topology

NUM_CLIENTS = 48

WARMUP_ROUNDS = 1
MEASURED_ROUNDS = 5


def build_trainer(**overrides):
    architecture = tiny_cnn_architecture(image_size=8, num_blocks=2,
                                         base_filters=4, dense_units=16)
    spec = SplitSpec(architecture, client_blocks=1)
    dataset = SyntheticCIFAR10(num_samples=480, image_size=8, seed=0)
    parts = IIDPartitioner(NUM_CLIENTS, seed=0).partition(dataset)
    topology = star_topology(
        NUM_CLIENTS, latencies_s=list(np.linspace(0.002, 0.06, NUM_CLIENTS)),
        drop_probability=0.05, seed=0,
    )
    config = TrainingConfig(
        epochs=1, batch_size=8, mode="asynchronous", max_in_flight=1,
        server_step_time_s=0.002, reliable_delivery=True,
        retry_timeout_s=0.5, retry_max=3, seed=0, **overrides,
    )
    return SpatioTemporalTrainer(spec, parts, config, topology=topology)


def run_epoch_benchmark(benchmark, **build_kwargs):
    trainers = []

    def setup():
        trainers.append(build_trainer(**build_kwargs))
        return (trainers[-1],), {}

    def one_epoch(trainer):
        history = trainer.train()
        return history.final_train_accuracy

    accuracy = benchmark.pedantic(one_epoch, setup=setup, iterations=1,
                                  rounds=MEASURED_ROUNDS,
                                  warmup_rounds=WARMUP_ROUNDS)
    assert accuracy >= 0.0
    return trainers[-1]


@pytest.mark.benchmark(group="obs")
def test_obs_off_control(benchmark):
    """The control: obs disabled, every hook a shared no-op."""
    trainer = run_epoch_benchmark(benchmark)
    assert not trainer.obs.enabled
    assert trainer.obs.flushes == 0
    benchmark.extra_info["engine_events"] = int(
        trainer.engine.stats.events_processed)


@pytest.mark.benchmark(group="obs")
def test_obs_on_full_tracing(benchmark):
    """Registry + histograms + periodic flushes + full-rate tracing.

    The delta against the off row is the plane's whole price; the <5%
    target is enforced by check_regression.py against the committed
    baseline pair.
    """
    trainer = run_epoch_benchmark(
        benchmark, obs_enabled=True, obs_trace_sample_rate=1.0,
        obs_flush_every_s=0.2,
    )
    assert trainer.obs.flushes > 0
    assert trainer.obs.tracer.emitted > 0
    benchmark.extra_info["trace_events"] = int(trainer.obs.tracer.emitted)
    benchmark.extra_info["metric_rows"] = int(len(trainer.obs.rows))
    benchmark.extra_info["flush_wall_ms"] = round(
        trainer.obs.flush_wall_s * 1e3, 3)
    benchmark.extra_info["engine_events"] = int(
        trainer.engine.stats.events_processed)
