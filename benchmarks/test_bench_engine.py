"""Event-engine throughput benchmark: a 100-client asynchronous epoch.

The discrete-event engine in :mod:`repro.core.engine` schedules one
arrival, one dispatch share and one landing per message, so its
per-event overhead bounds how many end-systems a simulated deployment
can sustain.  This benchmark drives one asynchronous epoch over a
100-client heterogeneous star on a tiny model (so the NumPy math stays
cheap and the scheduler dominates) and reports event throughput via
``extra_info``, which ``conftest.pytest_sessionfinish`` folds into
``BENCH_substrate.json`` for cross-PR tracking.

Run with::

    pytest benchmarks/test_bench_engine.py --benchmark-only
"""

import numpy as np
import pytest

from repro.core.config import TrainingConfig
from repro.core.models import tiny_cnn_architecture
from repro.core.split import SplitSpec
from repro.core.trainer import SpatioTemporalTrainer
from repro.data.datasets import SyntheticCIFAR10
from repro.data.partition import IIDPartitioner
from repro.simnet.topology import star_topology

NUM_CLIENTS = 100


def build_trainer(max_queue_size=None, queue_backpressure="drop"):
    architecture = tiny_cnn_architecture(image_size=8, num_blocks=2, base_filters=4,
                                         dense_units=16)
    spec = SplitSpec(architecture, client_blocks=1)
    dataset = SyntheticCIFAR10(num_samples=1000, image_size=8, seed=0)
    parts = IIDPartitioner(NUM_CLIENTS, seed=0).partition(dataset)
    topology = star_topology(
        NUM_CLIENTS, latencies_s=list(np.linspace(0.002, 0.12, NUM_CLIENTS)), seed=0,
    )
    config = TrainingConfig(
        epochs=1, batch_size=8, mode="asynchronous", max_in_flight=1,
        server_step_time_s=0.002, max_queue_size=max_queue_size,
        queue_backpressure=queue_backpressure, seed=0,
    )
    return SpatioTemporalTrainer(spec, parts, config, topology=topology)


# A single un-warmed round gave meaningless cross-PR numbers (rounds: 1,
# stddev: 0 in BENCH_substrate.json).  Every engine benchmark now runs one
# discarded warmup round (imports, BLAS init, workspace-cache population)
# followed by several measured rounds, each on a freshly built trainer so
# no round trains on another round's parameters.
WARMUP_ROUNDS = 1
MEASURED_ROUNDS = 5


@pytest.mark.benchmark(group="engine")
def test_async_epoch_100_clients_event_throughput(benchmark):
    """One asynchronous epoch over 100 clients; reports events/second."""
    trainers = []

    def setup():
        trainers.append(build_trainer())
        return (trainers[-1],), {}

    def one_epoch(trainer):
        history = trainer.train()
        return history.final_train_accuracy

    accuracy = benchmark.pedantic(one_epoch, setup=setup, iterations=1,
                                  rounds=MEASURED_ROUNDS, warmup_rounds=WARMUP_ROUNDS)
    assert accuracy >= 0.0
    trainer = trainers[-1]
    events = trainer.engine.stats.events_processed
    assert events > 0
    mean_s = benchmark.stats.stats.mean
    benchmark.extra_info["engine_events"] = int(events)
    benchmark.extra_info["events_per_second"] = events / mean_s if mean_s else None
    benchmark.extra_info["server_steps"] = int(trainer.engine.stats.server_steps)


@pytest.mark.benchmark(group="engine")
def test_async_epoch_100_clients_bounded_queue(benchmark):
    """Same epoch with a tight bounded queue: drop-path overhead stays flat."""
    trainers = []

    def setup():
        trainers.append(build_trainer(max_queue_size=8, queue_backpressure="drop"))
        return (trainers[-1],), {}

    def one_epoch(trainer):
        history = trainer.train()
        return history.final_train_accuracy

    benchmark.pedantic(one_epoch, setup=setup, iterations=1,
                       rounds=MEASURED_ROUNDS, warmup_rounds=WARMUP_ROUNDS)
    trainer = trainers[-1]
    assert all(es.pending_batches == 0 for es in trainer.end_systems)
    benchmark.extra_info["engine_events"] = int(trainer.engine.stats.events_processed)
    benchmark.extra_info["queue_drops"] = int(trainer.engine.stats.queue_drops)
