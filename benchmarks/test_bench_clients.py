"""Benchmark — ablation: accuracy vs. number of end-systems M.

The paper's claim is that *multiple* end-systems can share one
centralized server while keeping near-optimal accuracy.  Expected shape:
accuracy declines gently (not catastrophically) as the same dataset is
spread across more end-systems, because each end-system's private first
block sees 1/M of the data while the shared server segment still sees
everything.
"""

import pytest

from conftest import run_once
from repro.experiments.clients_sweep import run_clients_sweep


@pytest.mark.benchmark(group="clients")
def test_accuracy_vs_number_of_end_systems(benchmark, bench_workload):
    result = run_once(benchmark, run_clients_sweep, workload=bench_workload,
                      num_end_systems=(1, 2, 4, 8))
    print()
    print(result.to_table())

    counts = result.column("num_end_systems")
    accuracies = result.column("accuracy_pct")
    assert counts == [1, 2, 4, 8]
    # Everything trains above chance.
    assert min(accuracies) > 20.0
    # Single-client split learning is at least as good as the 8-client split
    # (each client head sees 8x less data), allowing a little noise slack.
    assert accuracies[0] >= accuracies[-1] - 5.0
    # The decline is graceful: even at M=8 we keep most of the M=1 accuracy.
    assert accuracies[-1] > 0.5 * accuracies[0]
