"""Benchmark — ablation: spatio-temporal split learning vs. the alternatives.

Puts the paper's framework next to centralized training (non-private
upper bound), classic sequential split learning and FedAvg on the same
partitioned workload.  Expected shape: centralized is the accuracy upper
bound; the split variants and FedAvg land within a moderate gap of it;
only the centralized baseline ships raw data off the clients; FedAvg
requires every client to host the full model while split learning only
requires the first block(s).
"""

import pytest

from conftest import run_once
from repro.experiments.baselines_comparison import run_baselines_comparison


@pytest.mark.benchmark(group="baselines")
def test_paradigm_comparison(benchmark, quick_bench_workload):
    result = run_once(benchmark, run_baselines_comparison, workload=quick_bench_workload)
    print()
    print(result.to_table())

    methods = result.column("method")
    accuracy = dict(zip(methods, result.column("accuracy_pct")))
    leaks = dict(zip(methods, result.column("raw_data_leaves_client")))
    client_parameters = dict(zip(methods, result.column("client_parameters")))

    # Privacy column: only the centralized baseline uploads raw data.
    assert leaks["centralized"] == "yes"
    assert leaks["spatio_temporal"] == "no"
    assert leaks["fedavg"] == "no"

    # Client footprint: FedAvg hosts the full model, split learning hosts a
    # strictly smaller head, centralized hosts nothing.
    assert client_parameters["fedavg"] > client_parameters["spatio_temporal"]
    assert client_parameters["centralized"] == 0

    # Accuracy shape: the centralized upper bound is not beaten by a wide
    # margin, and split learning stays in the race (above chance, within a
    # factor of the upper bound).
    upper = accuracy["centralized"]
    assert accuracy["spatio_temporal"] > 20.0
    assert accuracy["spatio_temporal"] <= upper + 10.0
    assert accuracy["sequential_split"] > 20.0
