#!/usr/bin/env python
"""Benchmark regression gate for the verify flow.

Diffs a freshly generated ``BENCH_substrate.json`` against the committed
baseline (``benchmarks/BENCH_baseline.json``) and **fails (exit 1) when
any benchmark in a ``hotpaths-*``, ``engine``, ``state``, ``chaos`` or
``obs`` group regresses by more than the threshold** (default 20% on the mean).  Benchmarks present in
the baseline but missing from the current run also fail — silently
dropping coverage must not pass the gate.

Usage (from the repo root, after a full benchmark run)::

    PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only -q
    python benchmarks/check_regression.py

When a slowdown is intentional (or after a PR deliberately moves the
performance envelope), refresh the committed baseline with::

    python benchmarks/check_regression.py --update-baseline

New benchmarks absent from the baseline are reported but never fail the
gate; updating the baseline adopts them.

``--report-only`` prints the same comparison but always exits 0 on
regressions or missing benchmarks (setup errors such as a missing input
file still exit 2).  This is the CI benchmark-smoke mode: shared runners
are far too noisy for a hard gate, and a smoke run covers only one
benchmark per group, so both "REGRESSED" and "missing" rows are
downgraded to warnings.

The ``--current`` file may be either this repo's ``BENCH_substrate.json``
format (rows with ``mean_ms``) or pytest-benchmark's native
``--benchmark-json`` output (rows with a ``stats`` object, seconds) —
the CI smoke job uses the native format because the custom tracking file
is deliberately only written by *full* benchmark runs.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_CURRENT = REPO_ROOT / "BENCH_substrate.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "BENCH_baseline.json"
GATED_GROUPS = ("engine", "state", "chaos", "obs")
GATED_PREFIXES = ("hotpaths-",)


def gated(group: str) -> bool:
    return group in GATED_GROUPS or any(group.startswith(p) for p in GATED_PREFIXES)


def normalize_row(row: dict) -> dict:
    """Accept both this repo's tracking format and pytest-benchmark's.

    The tracking file carries ``mean_ms`` directly; pytest-benchmark's
    ``--benchmark-json`` output nests seconds under ``stats``.
    """
    if "mean_ms" in row:
        return row
    stats = row.get("stats") or {}
    normalized = dict(row)
    normalized["mean_ms"] = float(stats.get("mean", float("nan"))) * 1e3
    return normalized


def load_rows(path: Path) -> dict:
    payload = json.loads(path.read_text())
    return {
        row["name"]: normalize_row(row)
        for row in payload.get("benchmarks", [])
        if gated(row.get("group") or "")
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", type=Path, default=DEFAULT_CURRENT,
                        help="freshly generated benchmark file (default: BENCH_substrate.json)")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="committed baseline (default: benchmarks/BENCH_baseline.json)")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional mean regression (default: 0.20)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="copy the current file over the baseline and exit")
    parser.add_argument("--report-only", action="store_true",
                        help="print the comparison but exit 0 even on regressions "
                             "or missing benchmarks (CI smoke mode for noisy "
                             "shared runners)")
    args = parser.parse_args(argv)

    if not args.current.exists():
        print(f"error: current benchmark file not found: {args.current}")
        print("run: PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only -q")
        return 2
    if args.update_baseline:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline updated: {args.baseline}")
        return 0
    if not args.baseline.exists():
        print(f"error: baseline not found: {args.baseline} "
              "(seed it with --update-baseline)")
        return 2

    current = load_rows(args.current)
    baseline = load_rows(args.baseline)

    failures = []
    lines = []
    for name, base_row in sorted(baseline.items()):
        base_mean = base_row["mean_ms"]
        current_row = current.get(name)
        if current_row is None:
            if args.report_only:
                lines.append(f"  {'skipped':>9}  {name:<50} (not in this run)")
            else:
                failures.append(f"{name}: missing from current run")
            continue
        mean = current_row["mean_ms"]
        ratio = mean / base_mean if base_mean else float("inf")
        status = "ok"
        if ratio > 1.0 + args.threshold:
            status = "REGRESSED"
            failures.append(
                f"{name}: {base_mean:.3f} ms -> {mean:.3f} ms ({ratio:.2f}x)"
            )
        lines.append(
            f"  {status:>9}  {name:<50} {base_mean:>9.3f} -> {mean:>9.3f} ms"
            f"  ({ratio:.2f}x)"
        )
    for name in sorted(set(current) - set(baseline)):
        lines.append(f"  {'new':>9}  {name:<50} {'':>9}    {current[name]['mean_ms']:>9.3f} ms")

    mode = "report" if args.report_only else "gate"
    print(f"benchmark regression {mode} (threshold: +{args.threshold:.0%} on mean)")
    print("\n".join(lines))
    if failures:
        if args.report_only:
            print(f"\nWARN: {len(failures)} benchmark(s) beyond "
                  f"+{args.threshold:.0%} (report-only mode; not failing — "
                  "shared runners are noisy, re-check locally with an A/B run):")
            for failure in failures:
                print(f"  - {failure}")
            return 0
        print(f"\nFAIL: {len(failures)} regression(s) beyond +{args.threshold:.0%}:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nOK: gated benchmarks within +{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
