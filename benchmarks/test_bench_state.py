"""Durable-checkpoint write overhead (PR 6 tentpole).

Every periodic checkpoint event pays capture (weights + optimizer
moments + RNG streams copied out of the live shard) plus the store's
atomic temp-then-rename write.  These benchmarks time that pipeline on
the laptop-scale shard so ``BENCH_substrate.json`` tracks the cost a
training run absorbs per checkpoint — the denominator of every
"RPO vs. overhead" trade-off the failover sweep reports.

Run with::

    pytest benchmarks/test_bench_state.py --benchmark-only
"""

import numpy as np
import pytest

from repro.cluster import ServerShard
from repro.core.models import tiny_cnn_architecture
from repro.core.server import CentralServer
from repro.core.split import SplitSpec
from repro.nn import default_dtype
from repro.state import FileCheckpointStore, MemoryCheckpointStore, ShardCheckpoint


@pytest.fixture(scope="module")
def bench_shard():
    """One laptop-scale shard with warm optimizer moment buffers."""
    with default_dtype(np.float32):
        architecture = tiny_cnn_architecture(image_size=16, num_blocks=3,
                                             base_filters=8, dense_units=64)
        spec = SplitSpec(architecture, client_blocks=1)
        shard = ServerShard(0, CentralServer(spec, seed=0), "server_0")
    rng = np.random.default_rng(3)
    optimizer = shard.server.optimizer
    for _ in range(2):  # populate every slot buffer
        for parameter in optimizer.parameters:
            parameter.grad = rng.normal(size=parameter.data.shape).astype(
                parameter.data.dtype)
        optimizer.step()
    return shard


@pytest.mark.benchmark(group="state")
def test_shard_checkpoint_file_save(benchmark, bench_shard, tmp_path):
    """Capture + durable (atomic npz) write — the per-event checkpoint cost."""
    store = FileCheckpointStore(tmp_path, keep=2)

    def save():
        return store.save_shard(
            ShardCheckpoint.capture(bench_shard, sim_time=1.0))

    version = benchmark.pedantic(save, iterations=1, rounds=10, warmup_rounds=1)
    assert store.latest_shard(0) is not None
    benchmark.extra_info["version"] = version
    benchmark.extra_info["bytes_per_checkpoint"] = int(
        store.bytes_written / store.checkpoints_written)


@pytest.mark.benchmark(group="state")
def test_shard_checkpoint_memory_save(benchmark, bench_shard):
    """Capture + in-memory store write — isolates the serialization cost
    (payload flattening, CRC) from the filesystem underneath."""
    store = MemoryCheckpointStore(keep=2)

    def save():
        return store.save_shard(
            ShardCheckpoint.capture(bench_shard, sim_time=1.0))

    # Sub-millisecond op: average several iterations per round so the
    # regression gate sees a stable mean on a noisy single-core box.
    benchmark.pedantic(save, iterations=10, rounds=10, warmup_rounds=1)
    assert store.latest_shard(0) is not None


@pytest.mark.benchmark(group="state")
def test_shard_checkpoint_file_load(benchmark, bench_shard, tmp_path):
    """Recovery-path read: newest intact checkpoint off disk + restore."""
    store = FileCheckpointStore(tmp_path, keep=2)
    store.save_shard(ShardCheckpoint.capture(bench_shard, sim_time=1.0))

    def load():
        checkpoint = store.latest_shard(0)
        checkpoint.restore(bench_shard)
        return checkpoint

    loaded = benchmark.pedantic(load, iterations=1, rounds=10, warmup_rounds=1)
    assert loaded.sim_time == 1.0
