"""Benchmark — extension: compressing / perturbing the smashed activations.

Not part of the paper's evaluation; DESIGN.md lists it as the natural
follow-up ablation.  Expected shape: 8-bit quantization cuts uplink
traffic ~8x with little accuracy cost; Gaussian noise at the cut improves
the leakage metric (higher reconstruction NMSE) at some accuracy cost;
nothing inflates traffic above the uncompressed baseline.
"""

import pytest

from conftest import run_once
from repro.experiments.compression import run_compression


@pytest.mark.benchmark(group="compression")
def test_cut_layer_transform_tradeoffs(benchmark, quick_bench_workload):
    result = run_once(benchmark, run_compression, workload=quick_bench_workload)
    print()
    print(result.to_table("{:.3f}"))

    labels = result.column("transform")
    accuracy = dict(zip(labels, result.column("accuracy_pct")))
    traffic = dict(zip(labels, result.column("uplink_megabytes")))
    leakage = dict(zip(labels, result.column("reconstruction_nmse")))
    noise_label = [label for label in labels if label.startswith("gaussian_noise")][0]
    topk_label = [label for label in labels if label.startswith("topk")][0]

    # Quantization slashes traffic and stays close to the uncompressed accuracy.
    assert traffic["uint8"] < 0.2 * traffic["none"]
    assert accuracy["uint8"] > accuracy["none"] - 10.0
    # Top-k also reduces traffic below the baseline.
    assert traffic[topk_label] < traffic["none"]
    # Noising the activations does not *reduce* the reconstruction error of an
    # attacker (i.e. privacy does not get worse), and typically improves it.
    assert leakage[noise_label] >= leakage["none"] - 0.05
    # The lossless-ish variants still learn well above chance; the noised
    # variant pays an accuracy price but must not collapse below chance.
    assert accuracy["none"] > 15.0 and accuracy["uint8"] > 15.0
    assert accuracy[noise_label] > 7.0
