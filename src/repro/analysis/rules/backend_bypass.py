"""RL005 — hot-path matrix math goes through the ``Backend`` primitives.

PR 3 funneled every heavy product through
``repro.backend.get_backend().gemm`` so that tiling, fused epilogues and
(eventually) threaded backends speed up *every* hot path at once.  A raw
``np.matmul``/``@`` in a hot module silently opts that site out: it
still computes the right answer, it just stops getting faster — and it
bypasses the gemm counters the benchmarks reason with.

Scope is the hot modules only; the backend package itself implements the
primitives, and cold paths (closed-form attack baselines, one-off
analysis) may keep the readable operator.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from ..findings import Finding
from .base import RuleContext, dotted_name

__all__ = ["BackendBypassRule"]

_HOT_MODULES = ("nn/functional.py", "nn/losses.py", "core/server.py",
                "cluster/shard.py", "utils/arena.py")
_HOT_PREFIXES = ("nn/layers/",)

_RAW_GEMM_CALLS = ("matmul", "dot", "einsum", "tensordot", "inner", "vdot")


class BackendBypassRule:
    rule_id = "RL005"
    name = "backend-bypass"
    description = (
        "Hot modules must route matrix products through "
        "repro.backend (get_backend().gemm) instead of raw "
        "np.matmul/@/einsum, so tiling and fused epilogues apply."
    )

    def __init__(self, modules: Tuple[str, ...] = _HOT_MODULES,
                 prefixes: Tuple[str, ...] = _HOT_PREFIXES) -> None:
        self.modules = modules
        self.prefixes = prefixes

    def applies_to(self, context: RuleContext) -> bool:
        return context.in_module(names=self.modules, prefixes=self.prefixes)

    def check(self, context: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
                yield self._finding(context, node, "the @ operator")
            elif isinstance(node, ast.Call):
                called = dotted_name(node.func)
                if called is None:
                    continue
                alias, _, attr = called.partition(".")
                if alias in ("np", "numpy") and attr in _RAW_GEMM_CALLS:
                    yield self._finding(context, node, f"{called}()")

    def _finding(self, context: RuleContext, node: ast.AST, what: str) -> Finding:
        return Finding(
            path=context.path,
            line=node.lineno,
            col=node.col_offset,
            rule_id=self.rule_id,
            message=f"raw GEMM via {what} in a hot module bypasses the "
                    "pluggable Backend (tiling, fused epilogues, counters)",
            fix_hint="use repro.backend.get_backend().gemm(a, b, ...) — it "
                     "fuses bias/activation and keeps the perf counters honest",
        )
