"""Rule registry: the invariants repro-lint enforces."""

from __future__ import annotations

from typing import Any, List, Tuple, Type

from .base import Rule, RuleContext, module_relpath
from .dtype_policy import DtypePolicyRule
from .determinism import DeterminismRule
from .drop_accounting import DropAccountingRule
from .generation_guard import GenerationGuardRule
from .backend_bypass import BackendBypassRule

__all__ = [
    "Rule",
    "RuleContext",
    "module_relpath",
    "DEFAULT_RULES",
    "KNOWN_RULE_IDS",
    "make_default_rules",
    "DtypePolicyRule",
    "DeterminismRule",
    "DropAccountingRule",
    "GenerationGuardRule",
    "BackendBypassRule",
]

#: Rule classes in report order.
DEFAULT_RULES: Tuple[Type[Any], ...] = (
    DtypePolicyRule,
    DeterminismRule,
    DropAccountingRule,
    GenerationGuardRule,
    BackendBypassRule,
)

#: Every id a suppression may legitimately name (RL900 is the
#: suppression-hygiene pseudo-rule and cannot itself be suppressed).
KNOWN_RULE_IDS: Tuple[str, ...] = tuple(
    rule.rule_id for rule in DEFAULT_RULES
)


def make_default_rules() -> List[Rule]:
    """Fresh default-configured instances of every rule."""
    return [rule() for rule in DEFAULT_RULES]
