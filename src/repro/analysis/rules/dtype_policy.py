"""RL001 — every dtype-*defaulting* NumPy constructor names its dtype.

The process-wide default is float32 (:mod:`repro.nn.dtype`) while NumPy's
own default is float64, so ``np.zeros(shape)`` silently builds a
float64 buffer that promotes everything it touches.  Requiring an
explicit ``dtype=`` makes the intent auditable: float buffers say
``get_default_dtype()`` (or a deliberate precision), index/bool buffers
say so outright.

Two constructor classes are checked:

* **Allocating** constructors (``zeros``/``empty``/``ones``/``full``/
  ``arange``) always default to float64 (or a value-derived dtype for
  ``full``/``arange``) — they must always state a dtype.
* **Converting** constructors (``array``/``asarray``) are flagged only
  when fed a Python literal or comprehension: that is exactly where
  NumPy falls back to float64 for float values.  ``np.asarray(existing)``
  on an array-valued expression is a dtype-*preserving* pass-through —
  forcing a dtype there would corrupt deliberate precision choices
  (e.g. restoring a float64 checkpoint under a float32 policy), so it
  stays legal.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from ..findings import Finding
from .base import RuleContext, dotted_name

__all__ = ["DtypePolicyRule"]

#: Constructors that allocate fresh storage with a float64-leaning default.
_ALLOCATING = ("zeros", "empty", "ones", "full", "arange")

#: Converting constructors, checked only for literal/comprehension input.
_CONVERTING = ("array", "asarray")

_NUMPY_ALIASES = ("np", "numpy")

#: First-argument node types whose dtype NumPy derives from Python
#: objects (float → float64): literals and comprehensions.
_LITERALISH = (ast.List, ast.Tuple, ast.Set, ast.Constant,
               ast.ListComp, ast.GeneratorExp, ast.UnaryOp, ast.BinOp)


class DtypePolicyRule:
    rule_id = "RL001"
    name = "dtype-policy"
    description = (
        "NumPy constructors under src/repro must pass an explicit dtype= "
        "wherever NumPy would otherwise pick float64 (allocations, and "
        "conversions of Python literals), so buffers follow the float32 "
        "policy or a stated intent dtype."
    )

    def __init__(self, exclude_prefixes: Tuple[str, ...] = ("analysis/",)) -> None:
        self.exclude_prefixes = exclude_prefixes

    def applies_to(self, context: RuleContext) -> bool:
        if context.modpath is None:
            return False
        return not context.modpath.startswith(self.exclude_prefixes)

    def check(self, context: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            called = dotted_name(node.func)
            if called is None or "." not in called:
                continue
            alias, _, attr = called.partition(".")
            if alias not in _NUMPY_ALIASES:
                continue
            if attr in _ALLOCATING:
                kind = "allocates with NumPy's float64-leaning default"
            elif attr in _CONVERTING and node.args \
                    and isinstance(node.args[0], _LITERALISH):
                kind = "converts a Python literal (floats become float64)"
            else:
                continue
            if any(keyword.arg == "dtype" for keyword in node.keywords):
                continue
            yield Finding(
                path=context.path,
                line=node.lineno,
                col=node.col_offset,
                rule_id=self.rule_id,
                message=f"{called}() without an explicit dtype= {kind}",
                fix_hint="pass dtype=get_default_dtype() for float buffers, "
                         "or the intended integer/bool dtype",
            )
