"""Rule protocol and the AST helpers shared by the concrete rules."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Protocol, Set, Tuple

from ..findings import Finding

__all__ = [
    "Rule",
    "RuleContext",
    "module_relpath",
    "dotted_name",
    "referenced_identifiers",
    "iter_function_defs",
]


def module_relpath(path: str) -> Optional[str]:
    """Path of ``path`` relative to its ``repro`` package root, if any.

    ``src/repro/core/engine.py`` → ``core/engine.py``; returns ``None``
    for files outside a ``repro`` package (scripts, tests), which keeps
    the module-scoped rules from firing on code that does not share the
    package's invariants.
    """
    parts = path.replace("\\", "/").split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            rel = "/".join(parts[index + 1:])
            return rel or None
    return None


@dataclass
class RuleContext:
    """Everything a rule may need about the file under analysis."""

    path: str                      #: path as reported in findings
    modpath: Optional[str]         #: path relative to the repro package root
    source: str
    tree: ast.Module

    def in_module(self, names: Tuple[str, ...] = (),
                  prefixes: Tuple[str, ...] = ()) -> bool:
        """True when the file is one of ``names`` or under ``prefixes``."""
        if self.modpath is None:
            return False
        return self.modpath in names or self.modpath.startswith(prefixes)


class Rule(Protocol):
    """One machine-checked invariant.

    ``check`` is only called when ``applies_to`` accepted the file, so a
    rule never needs to re-test its scope per node.
    """

    rule_id: str
    name: str
    description: str

    def applies_to(self, context: RuleContext) -> bool:
        ...

    def check(self, context: RuleContext) -> Iterator[Finding]:
        ...


# --------------------------------------------------------------------------- #
# Shared AST helpers
# --------------------------------------------------------------------------- #
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def referenced_identifiers(node: ast.AST) -> Set[str]:
    """Every Name id, Attribute attr and argument name under ``node``.

    Lambda/def parameter *defaults* are included (the engine's
    ``lambda s, rt=runtime, gen=generation: ...`` binding idiom makes the
    captured state visible there), so guard detection sees both the
    closure variables and the bound defaults.
    """
    names: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.add(child.id)
        elif isinstance(child, ast.Attribute):
            names.add(child.attr)
        elif isinstance(child, ast.arg):
            names.add(child.arg)
    return names


def iter_function_defs(tree: ast.Module) -> Dict[str, List[ast.AST]]:
    """Every (async) function/lambda-free def in the module, keyed by name.

    Nested defs are included: the engine's event chains define their
    callbacks inside the epoch driver, and RL004's call-through
    resolution needs to see them.
    """
    defs: Dict[str, List[ast.AST]] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defs.setdefault(node.name, []).append(node)
    return defs
