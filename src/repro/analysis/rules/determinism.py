"""RL002 — all randomness and time flow through seeded/simulated sources.

Replay-exact recovery (``repro.state``) and the 1e-9 equivalence pins
only hold if a run is a pure function of its seed: wall-clock reads and
process-global RNG state are the two ways that breaks.  Every stochastic
component must draw from a ``numpy.random.Generator`` handed to it via
:mod:`repro.utils.rng`, and simulated components must take time from the
simulator clock, never the host's.

``time.perf_counter``/``process_time`` stay allowed: they measure the
*host* for benchmarking and never feed simulation state.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from ..findings import Finding
from .base import RuleContext, dotted_name

__all__ = ["DeterminismRule"]

#: Dotted-call suffixes that read the wall clock.
_WALL_CLOCK = (
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)

#: Legacy global-state numpy.random functions (np.random.<fn>); the
#: Generator API (default_rng / SeedSequence / spawn) is the allowed path.
_NP_LEGACY = {
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "normal", "uniform",
    "standard_normal", "binomial", "poisson", "beta", "gamma", "exponential",
    "geometric", "lognormal", "multinomial", "get_state", "set_state",
    "RandomState",
}

#: Stdlib ``random`` module functions (all share hidden global state).
_STDLIB_RANDOM = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "seed", "getrandbits",
    "betavariate", "expovariate", "triangular", "vonmisesvariate",
}


class DeterminismRule:
    rule_id = "RL002"
    name = "determinism"
    description = (
        "Simulation code must not read the wall clock or legacy global "
        "RNGs; randomness flows through repro.utils.rng seeded Generators "
        "and time through the simulator clock."
    )

    def applies_to(self, context: RuleContext) -> bool:
        if context.modpath is None:
            return False
        return not context.modpath.startswith("analysis/")

    def check(self, context: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            called = dotted_name(node.func)
            if called is None:
                continue
            finding = self._classify(called)
            if finding is None:
                finding = self._classify_unseeded(called, node)
            if finding is None:
                continue
            message, hint = finding
            yield Finding(
                path=context.path,
                line=node.lineno,
                col=node.col_offset,
                rule_id=self.rule_id,
                message=message.format(called=called),
                fix_hint=hint,
            )

    @staticmethod
    def _classify(called: str) -> Optional[Tuple[str, str]]:
        for suffix in _WALL_CLOCK:
            if called == suffix or called.endswith("." + suffix):
                return (
                    "{called}() reads the wall clock inside simulation code",
                    "take `now` from the Simulator clock (sim.now) or a "
                    "parameter; perf_counter() is fine for benchmarking",
                )
        parts = called.split(".")
        if len(parts) >= 3 and parts[-2] == "random" and parts[-3] in ("np", "numpy") \
                and parts[-1] in _NP_LEGACY:
            return (
                "{called}() uses numpy's legacy global RNG state",
                "draw from a seeded Generator via repro.utils.rng "
                "(seeded_rng / SeedSequence.generator)",
            )
        if len(parts) == 2 and parts[0] == "random" and parts[1] in _STDLIB_RANDOM:
            return (
                "{called}() uses the stdlib global RNG",
                "draw from a seeded numpy Generator via repro.utils.rng",
            )
        return None

    @staticmethod
    def _classify_unseeded(called: str,
                           node: ast.Call) -> Optional[Tuple[str, str]]:
        """Flag Generator construction that is not pinned to a seed.

        ``default_rng()`` with no arguments (and ``Generator`` wrapping a
        no-argument bit generator) seeds from OS entropy, so two runs of
        the same config draw different streams — exactly the
        non-reproducibility RL002 exists to keep out of the tree.
        """
        parts = called.split(".")
        is_random_api = len(parts) == 1 or parts[-2] == "random"
        if not is_random_api:
            return None
        if parts[-1] == "default_rng" and not node.args and not node.keywords:
            return (
                "{called}() without a seed draws from OS entropy",
                "pass an explicit seed (derive one via repro.utils.rng "
                "SeedSequence when a stream is needed)",
            )
        if parts[-1] == "Generator":
            seedless_bitgen = (
                bool(node.args)
                and isinstance(node.args[0], ast.Call)
                and not node.args[0].args
                and not node.args[0].keywords
            )
            if not node.args or seedless_bitgen:
                return (
                    "{called}() built without a seeded bit generator",
                    "construct the bit generator from an explicit seed "
                    "(e.g. np.random.Generator(np.random.PCG64(seed)))",
                )
        return None
