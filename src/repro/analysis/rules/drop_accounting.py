"""RL003 — queue/arena/pending state mutates only in approved modules.

The cluster-wide drop-accounting invariant
(``notified == queue + transport - nack - sync + failover``) holds
because every loss path funnels through ``EndSystem.notify_drop`` and
the queue/arena helpers in the server, shard and engine.  A stray
``shard.queue.clear()`` or ``end_system._pending.pop(...)`` from
anywhere else silently removes work without notifying its owner and the
ledger stops balancing — exactly the class of leak PR 2/PR 5 hunted
down by hand.

The rule flags *mutations* (clear/pop/remove, attribute assignment,
``del``) of the accounting-protected attributes outside the modules that
implement the approved paths.  Reads are always fine; ``__init__``
construction is fine anywhere.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from ..findings import Finding
from .base import RuleContext

__all__ = ["DropAccountingRule"]

#: Attribute names participating in drop accounting.
_PROTECTED = ("_pending", "queue", "_queue", "arena", "_arena",
              "_awaiting_nack", "_stranded")

#: Method calls that remove or destroy queued work.
_MUTATORS = ("clear", "pop", "popleft", "popitem", "remove")

#: Modules implementing the approved notify_drop-routing paths (plus the
#: queue/arena containers themselves, which own their storage).
_APPROVED = (
    "core/end_system.py",
    "core/server.py",
    "core/engine.py",
    "core/scheduling.py",
    "cluster/shard.py",
    "utils/arena.py",
)


class DropAccountingRule:
    rule_id = "RL003"
    name = "drop-accounting"
    description = (
        "Server queues, arenas and _pending maps may only be mutated by "
        "the approved notify_drop-routing helpers; direct clears/pops "
        "elsewhere break the drop-accounting balance."
    )

    def __init__(self, approved: Tuple[str, ...] = _APPROVED) -> None:
        self.approved = approved

    def applies_to(self, context: RuleContext) -> bool:
        if context.modpath is None:
            return False
        if context.modpath.startswith("analysis/"):
            return False
        return context.modpath not in self.approved

    def check(self, context: RuleContext) -> Iterator[Finding]:
        visitor = _MutationVisitor(context)
        visitor.visit(context.tree)
        yield from visitor.findings


def _protected_attr(node: ast.AST) -> str:
    """The protected attribute name if ``node`` is ``<expr>.<protected>``."""
    if isinstance(node, ast.Attribute) and node.attr in _PROTECTED:
        return node.attr
    return ""


class _MutationVisitor(ast.NodeVisitor):
    def __init__(self, context: RuleContext) -> None:
        self.context = context
        self.findings: List[Finding] = []
        self._function_stack: List[str] = []

    # ------------------------------------------------------------------ #
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _in_init(self) -> bool:
        return bool(self._function_stack) and self._function_stack[-1] == "__init__"

    def _report(self, node: ast.AST, attr: str, what: str) -> None:
        self.findings.append(Finding(
            path=self.context.path,
            line=node.lineno,
            col=node.col_offset,
            rule_id=DropAccountingRule.rule_id,
            message=f"{what} of accounting-protected '{attr}' outside the "
                    "approved drop-routing modules",
            fix_hint="route the loss through EndSystem.notify_drop / the "
                     "server+shard queue helpers so the drop ledger balances",
        ))

    # ------------------------------------------------------------------ #
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            attr = _protected_attr(func.value)
            if attr:
                self._report(node, attr, f"direct .{func.attr}()")
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._in_init():
            for target in node.targets:
                attr = _protected_attr(target)
                if attr:
                    self._report(node, attr, "rebinding")
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if not self._in_init():
            attr = _protected_attr(node.target)
            if attr:
                self._report(node, attr, "rebinding")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = _protected_attr(node.target)
        if attr:
            self._report(node, attr, "augmented assignment")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            attr = _protected_attr(target)
            if not attr and isinstance(target, ast.Subscript):
                attr = _protected_attr(target.value)
            if attr:
                self._report(node, attr, "del")
        self.generic_visit(node)
