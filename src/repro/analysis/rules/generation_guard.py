"""RL004 — scheduled shard callbacks check generation (or shard health).

A crash or recovery bumps a shard runtime's ``generation`` and any event
already scheduled against the old chain must die when it fires —
otherwise a restarted chain double-fires rounds (PR 5's hardest bug
class).  The engine's idiom binds the live generation at schedule time::

    generation = runtime.generation
    def fire(sim):
        if runtime.generation != generation or not runtime.shard.healthy:
            return
        ...
    sim.schedule(at_time, fire, ...)

This rule inspects every ``*.schedule(time, callback, ...)`` in the
scoped modules whose callback closes over a shard runtime (an identifier
named ``rt``/``runtime``-ish) and requires the callback — or, one level
deep, a same-module function it delegates to — to consult a
``generation`` or ``healthy``/``health`` name.  Callbacks that never
touch a runtime (client-side landings, NACK deliveries) are exempt:
their staleness is resolved by per-message state, not chain generations.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..findings import Finding
from .base import RuleContext, iter_function_defs, referenced_identifiers

__all__ = ["GenerationGuardRule"]

_SCOPED = ("core/engine.py", "cluster/failover.py", "cluster/shard.py")

_GUARD_TOKENS = ("generation", "healthy", "health")


def _runtime_like(names: Set[str]) -> bool:
    return any(name == "rt" or "runtime" in name.lower() for name in names)


def _guarded(names: Set[str]) -> bool:
    return any(token in name.lower() for name in names for token in _GUARD_TOKENS)


class GenerationGuardRule:
    rule_id = "RL004"
    name = "generation-guard"
    description = (
        "Simulator callbacks that close over a shard runtime must check "
        "generation/sent_generation (or shard health) so stale chains die "
        "after a crash or recovery instead of double-firing."
    )

    def __init__(self, modules: Tuple[str, ...] = _SCOPED) -> None:
        self.modules = modules

    def applies_to(self, context: RuleContext) -> bool:
        return context.in_module(names=self.modules)

    def check(self, context: RuleContext) -> Iterator[Finding]:
        defs = iter_function_defs(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "schedule"):
                continue
            if len(node.args) < 2:
                continue
            callback = self._resolve_callback(node.args[1], defs)
            if callback is None:
                continue
            names = referenced_identifiers(callback)
            if not _runtime_like(names):
                continue
            if _guarded(names):
                continue
            # One-level call-through: a `lambda s, rt=runtime:
            # self._on_transition(s, rt)` forwarder is fine when the
            # handler it names does the checking.
            if _guarded(self._callee_identifiers(callback, defs)):
                continue
            yield Finding(
                path=context.path,
                line=node.lineno,
                col=node.col_offset,
                rule_id=self.rule_id,
                message="scheduled callback closes over a shard runtime but "
                        "never checks generation or shard health; a stale "
                        "chain can double-fire after crash/recovery",
                fix_hint="bind gen=runtime.generation at schedule time and "
                         "return early when runtime.generation != gen or the "
                         "shard is unhealthy",
            )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _resolve_callback(arg: ast.AST,
                          defs: Dict[str, List[ast.AST]]) -> Optional[ast.AST]:
        if isinstance(arg, ast.Lambda):
            return arg
        if isinstance(arg, ast.Name):
            candidates = defs.get(arg.id)
            if candidates:
                return candidates[-1]
        return None

    @staticmethod
    def _callee_identifiers(callback: ast.AST,
                            defs: Dict[str, List[ast.AST]]) -> Set[str]:
        """Identifiers of every same-module function the callback calls."""
        names: Set[str] = set()
        called: List[str] = []
        for child in ast.walk(callback):
            if not isinstance(child, ast.Call):
                continue
            func = child.func
            if isinstance(func, ast.Attribute):
                called.append(func.attr)
            elif isinstance(func, ast.Name):
                called.append(func.id)
        for name in called:
            for definition in defs.get(name, ()):
                names |= referenced_identifiers(definition)
        return names
