"""File walking, AST dispatch and suppression application."""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from .findings import Finding
from .rules import KNOWN_RULE_IDS, Rule, RuleContext, make_default_rules, module_relpath
from .suppressions import collect_suppressions, match_suppression

__all__ = ["FileReport", "LintEngine", "analyze_paths", "analyze_source"]


@dataclass
class FileReport:
    """Everything the engine learned about one file."""

    path: str
    findings: List[Finding] = field(default_factory=list)
    #: Set when the file could not be parsed (reported as an RL999 finding
    #: too, so broken files fail the gate instead of passing silently).
    parse_error: Optional[str] = None


class LintEngine:
    """Runs a rule set over files, sources or whole directory trees."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        self.rules: List[Rule] = list(rules) if rules is not None \
            else list(make_default_rules())

    # ------------------------------------------------------------------ #
    def analyze_source(self, source: str, path: str) -> FileReport:
        """Lint one in-memory source blob reported under ``path``.

        ``path`` drives rule scoping (via its position relative to the
        ``repro`` package root), which is what lets the fixture tests
        exercise module-scoped rules on synthetic snippets.
        """
        report = FileReport(path=path)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            report.parse_error = str(error)
            report.findings.append(Finding(
                path=path,
                line=error.lineno or 1,
                col=(error.offset or 1) - 1,
                rule_id="RL999",
                message=f"file does not parse: {error.msg}",
                fix_hint="fix the syntax error; unparseable files cannot be "
                         "checked and fail the gate",
            ))
            return report
        context = RuleContext(
            path=path,
            modpath=module_relpath(path),
            source=source,
            tree=tree,
        )
        raw: List[Finding] = []
        for rule in self.rules:
            if rule.applies_to(context):
                raw.extend(rule.check(context))
        by_line, hygiene = collect_suppressions(source, path, KNOWN_RULE_IDS)
        for finding in raw:
            suppression = match_suppression(finding, by_line)
            if suppression is not None:
                finding.suppressed = True
                finding.suppress_reason = suppression.reason
                suppression.used = True
        report.findings.extend(raw)
        report.findings.extend(hygiene)
        # An unused suppression is dead weight that hides future drift:
        # the rule it silences no longer fires there.  Surface it so the
        # comment gets pruned (same hygiene id as malformed suppressions).
        for suppression in by_line.values():
            if not suppression.used:
                report.findings.append(Finding(
                    path=path,
                    line=suppression.line,
                    col=0,
                    rule_id="RL900",
                    message="unused repro-lint suppression (nothing to "
                            f"suppress for {', '.join(suppression.rule_ids)} here)",
                    fix_hint="delete the stale suppression comment",
                ))
        report.findings.sort()
        return report

    def analyze_file(self, path: str) -> FileReport:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except (OSError, UnicodeDecodeError) as error:
            report = FileReport(path=path, parse_error=str(error))
            report.findings.append(Finding(
                path=path, line=1, col=0, rule_id="RL999",
                message=f"file could not be read: {error}",
            ))
            return report
        return self.analyze_source(source, path)

    def analyze_paths(self, paths: Iterable[str]) -> List[FileReport]:
        reports = []
        for path in iter_python_files(paths):
            reports.append(self.analyze_file(path))
        return reports


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    collected: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    name for name in dirnames
                    if name != "__pycache__" and not name.startswith(".")
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        collected.append(os.path.join(dirpath, filename))
        else:
            collected.append(path)
    return collected


# --------------------------------------------------------------------------- #
# Module-level conveniences (the pytest gate and CLI both use these)
# --------------------------------------------------------------------------- #
def analyze_paths(paths: Iterable[str],
                  rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """All findings (suppressed included) for ``paths``."""
    engine = LintEngine(rules=rules)
    findings: List[Finding] = []
    for report in engine.analyze_paths(paths):
        findings.extend(report.findings)
    return sorted(findings)


def analyze_source(source: str, path: str,
                   rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """All findings for one in-memory source blob."""
    return LintEngine(rules=rules).analyze_source(source, path).findings
