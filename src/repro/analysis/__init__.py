"""repro-lint: AST-based machine checking of the project's invariants.

The ROADMAP's durable invariants — the float32 dtype policy, seeded-RNG
determinism, the drop-accounting balance
(``notified == queue + transport - nack - sync + failover``),
generation-guarded event chains and the three-primitive compute backend
— were historically enforced by tests and reviewer memory.  This package
turns each of them into a lint rule that walks every module's AST and
reports structured findings, so a violation fails CI the moment it is
written instead of the night a sweep goes non-deterministic.

Usage::

    python -m repro.analysis [--format text|json] [--rules RL001,RL003] [paths]

Rules ship in :mod:`repro.analysis.rules`:

========  ==================  ====================================================
rule id   name                protects
========  ==================  ====================================================
RL001     dtype-policy        float32 policy: array constructors need ``dtype=``
RL002     determinism         all randomness/time flows through seeded streams
RL003     drop-accounting     queue/arena/pending mutations stay in approved paths
RL004     generation-guard    scheduled shard callbacks check generation/health
RL005     backend-bypass      hot-path GEMMs go through ``repro.backend``
RL900     suppression-hygiene suppressions carry a reason and a known rule id
========  ==================  ====================================================

A finding is silenced inline with a *reasoned* suppression on the
flagged line (or the line directly above it)::

    self._queue.clear()  # repro-lint: ignore[RL003] -- simulator event heap, not a drop-accounted queue

Suppressions without a reason (or naming an unknown rule) do not
suppress and are themselves reported (RL900).
"""

from .findings import Finding, JSON_SCHEMA_VERSION, findings_to_json
from .engine import (
    FileReport,
    LintEngine,
    analyze_paths,
    analyze_source,
)
from .rules import DEFAULT_RULES, Rule, RuleContext, make_default_rules

__all__ = [
    "Finding",
    "FileReport",
    "JSON_SCHEMA_VERSION",
    "LintEngine",
    "Rule",
    "RuleContext",
    "DEFAULT_RULES",
    "make_default_rules",
    "analyze_paths",
    "analyze_source",
    "findings_to_json",
]
