"""CLI: ``python -m repro.analysis [--format text|json] [paths]``.

Exit status: 0 when every finding is suppressed (with a reason), 1 when
unsuppressed findings remain — so the CI job is just this command.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from .engine import LintEngine
from .findings import Finding, findings_to_json
from .rules import DEFAULT_RULES, Rule, make_default_rules

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro-lint: machine-check the project's invariants "
                    "(dtype policy, determinism, drop accounting, "
                    "generation guards, backend routing).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules", default=None, metavar="RL001,RL003",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="include suppressed findings in the text report",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _select_rules(spec: Optional[str]) -> List[Rule]:
    rules = make_default_rules()
    if spec is None:
        return rules
    wanted = {part.strip().upper() for part in spec.split(",") if part.strip()}
    known = {rule.rule_id for rule in rules}
    unknown = wanted - known
    if unknown:
        raise SystemExit(
            f"unknown rule id(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(known))})"
        )
    return [rule for rule in rules if rule.rule_id in wanted]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    options = parser.parse_args(argv)
    if options.list_rules:
        for rule in DEFAULT_RULES:
            print(f"{rule.rule_id}  {rule.name}: {rule.description}")
        return 0
    engine = LintEngine(rules=_select_rules(options.rules))
    findings: List[Finding] = []
    for report in engine.analyze_paths(options.paths):
        findings.extend(report.findings)
    findings.sort()
    unsuppressed = [finding for finding in findings if not finding.suppressed]
    if options.format == "json":
        print(json.dumps(findings_to_json(findings), indent=2, sort_keys=True))
    else:
        shown = findings if options.show_suppressed else unsuppressed
        for finding in shown:
            print(finding.render())
        suppressed = len(findings) - len(unsuppressed)
        print(
            f"repro-lint: {len(unsuppressed)} finding(s)"
            + (f", {suppressed} suppressed" if suppressed else "")
            + f" across {len(set(f.path for f in findings)) if findings else 0} file(s)"
        )
    return 1 if unsuppressed else 0


if __name__ == "__main__":
    sys.exit(main())
