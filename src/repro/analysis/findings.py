"""Structured lint findings and their JSON wire format."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["Finding", "JSON_SCHEMA_VERSION", "findings_to_json"]

#: Bumped whenever the JSON output shape changes; consumers (the CI job,
#: editor integrations) should check it before parsing.
JSON_SCHEMA_VERSION = 1


@dataclass(order=True)
class Finding:
    """One rule violation at a source location.

    Findings sort by ``(path, line, col, rule_id)`` so reports are stable
    across runs and dict-ordering changes.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str = field(compare=False)
    #: Short actionable remediation ("pass dtype=...", "route through ...").
    fix_hint: str = field(compare=False, default="")
    #: True once an inline reasoned suppression comment matched this line.
    suppressed: bool = field(compare=False, default=False)
    #: The reason string carried by the matching suppression, if any.
    suppress_reason: Optional[str] = field(compare=False, default=None)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        """One-line human-readable report row."""
        text = f"{self.location()}: {self.rule_id}: {self.message}"
        if self.fix_hint:
            text += f" [hint: {self.fix_hint}]"
        if self.suppressed:
            text += f" (suppressed: {self.suppress_reason})"
        return text

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule_id": self.rule_id,
            "message": self.message,
            "fix_hint": self.fix_hint,
            "suppressed": self.suppressed,
            "suppress_reason": self.suppress_reason,
        }


def findings_to_json(findings: List[Finding]) -> Dict[str, Any]:
    """The full machine-readable report (``--format json``)."""
    ordered = sorted(findings)
    unsuppressed = [finding for finding in ordered if not finding.suppressed]
    by_rule: Dict[str, int] = {}
    for finding in unsuppressed:
        by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
    return {
        "schema_version": JSON_SCHEMA_VERSION,
        "findings": [finding.to_dict() for finding in ordered],
        "summary": {
            "total": len(ordered),
            "unsuppressed": len(unsuppressed),
            "suppressed": len(ordered) - len(unsuppressed),
            "by_rule": dict(sorted(by_rule.items())),
        },
    }
