"""Inline suppression comments: ``# repro-lint: ignore[RULE] -- reason``.

A suppression lives in a comment on the flagged line or on the line
directly above it (for statements whose flagged line is already full).
The bracket list names one or more rule ids (``ignore[RL001,RL003]``) or
``*`` for every rule, and the reason after ``--`` is **mandatory**: a
suppression is an auditable exception, and "because I said so" does not
audit.  Reasonless or unknown-rule suppressions do not suppress anything
and are reported by the RL900 suppression-hygiene pseudo-rule.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .findings import Finding

__all__ = ["Suppression", "collect_suppressions", "match_suppression"]

_PATTERN = re.compile(
    r"#\s*repro-lint:\s*ignore\[(?P<rules>[^\]]*)\]\s*(?:--\s*(?P<reason>.*\S))?"
)


@dataclass
class Suppression:
    """One parsed suppression comment."""

    line: int
    rule_ids: Tuple[str, ...]   #: ("*",) means every rule
    reason: Optional[str]
    used: bool = False

    def covers(self, rule_id: str) -> bool:
        return "*" in self.rule_ids or rule_id in self.rule_ids


def _parse_comment(line: int, text: str) -> Optional[Suppression]:
    match = _PATTERN.search(text)
    if match is None:
        return None
    rule_ids = tuple(
        part.strip().upper() for part in match.group("rules").split(",") if part.strip()
    )
    reason = match.group("reason")
    return Suppression(line=line, rule_ids=rule_ids, reason=reason)


def collect_suppressions(source: str, path: str,
                         known_rule_ids: Tuple[str, ...]) -> Tuple[
                             Dict[int, Suppression], List[Finding]]:
    """Parse every suppression comment in ``source``.

    Returns ``(by_line, hygiene_findings)``: the suppressions keyed by
    their physical line, plus RL900 findings for malformed ones
    (missing reason, empty or unknown rule list).  Malformed
    suppressions are *not* returned in ``by_line`` — they silence
    nothing.
    """
    by_line: Dict[int, Suppression] = {}
    hygiene: List[Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return by_line, hygiene
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        line = token.start[0]
        suppression = _parse_comment(line, token.string)
        if suppression is None:
            continue
        problems = []
        if not suppression.rule_ids:
            problems.append("names no rule (use ignore[RL00x] or ignore[*])")
        unknown = [
            rule_id for rule_id in suppression.rule_ids
            if rule_id != "*" and rule_id not in known_rule_ids
        ]
        if unknown:
            problems.append(f"names unknown rule(s) {', '.join(unknown)}")
        if not suppression.reason:
            problems.append("carries no reason (append ' -- why this is safe')")
        if problems:
            hygiene.append(Finding(
                path=path,
                line=line,
                col=token.start[1],
                rule_id="RL900",
                message="malformed repro-lint suppression: " + "; ".join(problems),
                fix_hint="# repro-lint: ignore[RL00x] -- reason the invariant holds",
            ))
            continue
        by_line[line] = suppression
    return by_line, hygiene


def match_suppression(finding: Finding,
                      by_line: Dict[int, Suppression]) -> Optional[Suppression]:
    """The suppression covering ``finding``, if any (same line, or one above)."""
    for line in (finding.line, finding.line - 1):
        suppression = by_line.get(line)
        if suppression is not None and suppression.covers(finding.rule_id):
            return suppression
    return None
