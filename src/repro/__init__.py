"""repro — reproduction of "Spatio-Temporal Split Learning" (DSN 2021).

The package is organised bottom-up:

* :mod:`repro.backend` — pluggable compute backends (GEMM / elementwise /
  reduce primitives with fused epilogues) behind the nn hot paths.
* :mod:`repro.nn` — NumPy deep-learning substrate (autograd, Conv2D,
  MaxPooling2D, Dense, losses, optimizers).
* :mod:`repro.data` — synthetic CIFAR-10-style datasets, loaders,
  transforms and multi-end-system partitioners.
* :mod:`repro.simnet` — discrete-event geo-distributed network simulation
  (latencies, links, topologies, transport).
* :mod:`repro.core` — the paper's contribution: split specification,
  end-systems, centralized server with its parameter-scheduling queue,
  the spatio-temporal trainer and the privacy (Fig. 4) analysis.
* :mod:`repro.cluster` — sharded multi-server deployments: server
  replicas, client-to-shard assignment and inter-server weight sync.
* :mod:`repro.baselines` — centralized, sequential split learning and
  FedAvg comparators.
* :mod:`repro.experiments` — one module per paper table/figure plus the
  ablations, with a CLI entry point (``repro-experiments``).
* :mod:`repro.api` — the versioned public surface: ``JobSpec`` (the
  JSON-serializable description of a whole training job), the runtime
  facade that materializes and runs it, and the ``RunClient`` SDK.
* :mod:`repro.server` — the long-lived run-server: a REST control plane
  (``python -m repro.server``) that starts, pauses, resumes, inspects
  and cancels jobs running in worker subprocesses.
"""

from . import api, backend, baselines, cluster, core, data, nn, server, simnet, utils
from .cluster import ClusterCoordinator, ServerShard
from .core import (
    CentralServer,
    CNNArchitecture,
    EndSystem,
    SpatioTemporalTrainer,
    SplitSpec,
    TrainingConfig,
    paper_cnn_architecture,
    tiny_cnn_architecture,
)
from .data import SyntheticCIFAR10, SyntheticMNIST

__version__ = "1.0.0"

__all__ = [
    "api",
    "backend",
    "nn",
    "data",
    "simnet",
    "core",
    "cluster",
    "baselines",
    "server",
    "utils",
    "ClusterCoordinator",
    "ServerShard",
    "SplitSpec",
    "TrainingConfig",
    "EndSystem",
    "CentralServer",
    "SpatioTemporalTrainer",
    "CNNArchitecture",
    "paper_cnn_architecture",
    "tiny_cnn_architecture",
    "SyntheticCIFAR10",
    "SyntheticMNIST",
    "__version__",
]
