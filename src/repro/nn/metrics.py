"""Classification metrics used by the training loops and experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from .tensor import Tensor

__all__ = [
    "accuracy",
    "top_k_accuracy",
    "confusion_matrix",
    "per_class_accuracy",
    "MetricTracker",
]


def _as_logits(predictions: Union[Tensor, np.ndarray]) -> np.ndarray:
    return predictions.data if isinstance(predictions, Tensor) else np.asarray(predictions)


def _as_labels(labels: Union[Tensor, np.ndarray]) -> np.ndarray:
    data = labels.data if isinstance(labels, Tensor) else np.asarray(labels)
    return data.astype(np.int64).reshape(-1)


def accuracy(predictions: Union[Tensor, np.ndarray], labels: Union[Tensor, np.ndarray]) -> float:
    """Fraction of samples whose arg-max prediction equals the label."""
    logits = _as_logits(predictions)
    labels = _as_labels(labels)
    if logits.shape[0] != labels.shape[0]:
        raise ValueError(
            f"batch mismatch: {logits.shape[0]} predictions vs {labels.shape[0]} labels"
        )
    if logits.shape[0] == 0:
        return 0.0
    predicted = logits.argmax(axis=-1)
    return float((predicted == labels).mean())


def top_k_accuracy(predictions: Union[Tensor, np.ndarray], labels: Union[Tensor, np.ndarray],
                   k: int = 5) -> float:
    """Fraction of samples whose label is among the top-``k`` predictions."""
    logits = _as_logits(predictions)
    labels = _as_labels(labels)
    if k <= 0:
        raise ValueError("k must be positive")
    if logits.shape[0] == 0:
        return 0.0
    k = min(k, logits.shape[-1])
    top_k = np.argsort(logits, axis=-1)[:, -k:]
    hits = (top_k == labels[:, None]).any(axis=-1)
    return float(hits.mean())


def confusion_matrix(predictions: Union[Tensor, np.ndarray], labels: Union[Tensor, np.ndarray],
                     num_classes: Optional[int] = None) -> np.ndarray:
    """Return the ``(num_classes, num_classes)`` confusion matrix.

    Rows are true labels, columns are predicted labels.
    """
    logits = _as_logits(predictions)
    labels = _as_labels(labels)
    predicted = logits.argmax(axis=-1) if logits.ndim > 1 else logits.astype(np.int64)
    if num_classes is None:
        num_classes = int(max(predicted.max(initial=0), labels.max(initial=0))) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predicted), 1)
    return matrix


def per_class_accuracy(predictions: Union[Tensor, np.ndarray], labels: Union[Tensor, np.ndarray],
                       num_classes: Optional[int] = None) -> np.ndarray:
    """Per-class recall (diagonal of the row-normalized confusion matrix)."""
    matrix = confusion_matrix(predictions, labels, num_classes)
    totals = matrix.sum(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        per_class = np.where(totals > 0, matrix.diagonal() / np.maximum(totals, 1), 0.0)
    return per_class


@dataclass
class MetricTracker:
    """Running average of named scalar metrics, weighted by batch size.

    Example
    -------
    >>> tracker = MetricTracker()
    >>> tracker.update({"loss": 2.1, "accuracy": 0.3}, count=32)
    >>> tracker.update({"loss": 1.9, "accuracy": 0.4}, count=32)
    >>> round(tracker.average("loss"), 2)
    2.0
    """

    _totals: Dict[str, float] = field(default_factory=dict)
    _counts: Dict[str, int] = field(default_factory=dict)
    history: List[Dict[str, float]] = field(default_factory=list)

    def update(self, values: Dict[str, float], count: int = 1) -> None:
        """Add a batch of metric values weighted by ``count`` samples."""
        if count <= 0:
            raise ValueError("count must be positive")
        for name, value in values.items():
            self._totals[name] = self._totals.get(name, 0.0) + float(value) * count
            self._counts[name] = self._counts.get(name, 0) + count
        self.history.append(dict(values))

    def average(self, name: str) -> float:
        """Weighted average of metric ``name`` over all updates."""
        if name not in self._totals:
            raise KeyError(f"metric {name!r} has not been recorded")
        return self._totals[name] / self._counts[name]

    def averages(self) -> Dict[str, float]:
        """Weighted averages of every recorded metric."""
        return {name: self.average(name) for name in self._totals}

    def reset(self) -> None:
        """Clear all recorded values."""
        self._totals.clear()
        self._counts.clear()
        self.history.clear()
