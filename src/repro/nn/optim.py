"""Optimizers and learning-rate schedules.

In spatio-temporal split learning each side of the cut owns its own
optimizer: every end-system updates its local first-block parameters with
the gradient the server sends back, and the centralized server updates the
remaining layers.  All optimizers therefore operate on an explicit list of
parameters rather than on a whole model.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..utils.perf import workspace
from .layers.base import Parameter

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "RMSProp",
    "LRScheduler",
    "StepLR",
    "ExponentialLR",
    "CosineAnnealingLR",
    "get_optimizer",
]


class Optimizer:
    """Base class: holds parameters and a learning rate, applies updates.

    Subclasses that keep per-parameter moment buffers declare them in
    ``_slots``: each entry ``name`` maps to an attribute ``_{name}``
    holding a ``List[Optional[np.ndarray]]`` aligned with
    :attr:`parameters` (``None`` until the first step touches that
    parameter).  :meth:`state_dict`/:meth:`load_state_dict` round-trip
    those buffers generically, so a restored optimizer resumes the exact
    update trajectory of the one that was checkpointed.
    """

    _slots: Sequence[str] = ()

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        self._step_count = 0

    def zero_grad(self) -> None:
        """Clear gradients on every managed parameter."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        """Apply one update using the gradients currently stored on the parameters."""
        self._step_count += 1
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            self._update(index, parameter)

    def _update(self, index: int, parameter: Parameter) -> None:
        raise NotImplementedError

    @property
    def step_count(self) -> int:
        """Number of :meth:`step` calls performed so far."""
        return self._step_count

    def state_dict(self) -> Dict[str, object]:
        """Full optimizer state: hyper-state plus per-parameter slot buffers.

        The returned arrays are **copies** — the dictionary is a true
        snapshot, decoupled from the in-place moment updates later steps
        perform.  Slots a step has not touched yet stay ``None``.
        """
        slots: Dict[str, List[Optional[np.ndarray]]] = {}
        for name in self._slots:
            buffers: List[Optional[np.ndarray]] = getattr(self, f"_{name}")
            slots[name] = [None if b is None else b.copy() for b in buffers]
        return {"lr": self.lr, "step_count": self._step_count, "slots": slots}

    def load_state_dict(self, state: Dict[str, object], strict: bool = True) -> None:
        """Restore state produced by :meth:`state_dict`.

        With ``strict=True`` the state's slot names and per-slot lengths
        must match this optimizer exactly; with ``strict=False`` unknown
        slots are ignored and missing ones keep their current buffers.  A
        legacy hyper-only dictionary (no ``"slots"`` key) restores the
        learning rate and step count and leaves the buffers untouched.
        Restored arrays are cast to each live parameter's dtype and
        copied into fresh buffers, so a float64-policy checkpoint loads
        cleanly into a float32-policy run (and vice versa) and the
        in-place update discipline never aliases checkpoint memory.
        """
        self.lr = float(state["lr"])
        self._step_count = int(state["step_count"])
        slots = state.get("slots")
        if slots is None:
            return
        known = set(self._slots)
        unexpected = set(slots) - known
        missing = known - set(slots)
        if strict and (unexpected or missing):
            raise ValueError(
                f"optimizer state mismatch: unexpected slots {sorted(unexpected)}, "
                f"missing slots {sorted(missing)}"
            )
        for name in self._slots:
            if name not in slots:
                continue
            entries = slots[name]
            if len(entries) != len(self.parameters):
                raise ValueError(
                    f"slot {name!r} carries {len(entries)} buffers for "
                    f"{len(self.parameters)} parameters"
                )
            buffers: List[Optional[np.ndarray]] = getattr(self, f"_{name}")
            for index, entry in enumerate(entries):
                if entry is None:
                    buffers[index] = None
                    continue
                target = self.parameters[index].data
                value = np.asarray(entry)
                if value.shape != target.shape:
                    raise ValueError(
                        f"slot {name!r}[{index}] has shape {value.shape}, "
                        f"parameter has shape {target.shape}"
                    )
                buffers[index] = value.astype(target.dtype, copy=True)


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    _slots = ("velocity",)

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def _update(self, index: int, parameter: Parameter) -> None:
        grad = parameter.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * parameter.data
        if self.momentum:
            velocity = self._velocity[index]
            if velocity is None:
                velocity = np.zeros_like(parameter.data)
                self._velocity[index] = velocity
            # In-place state update: velocity = momentum * velocity + grad.
            velocity *= self.momentum
            velocity += grad
            if self.nesterov:
                grad = grad + self.momentum * velocity
            else:
                grad = velocity
        # Rebind rather than mutate in place: backward closures of still-
        # pending graphs (async max_in_flight > 1) hold views of the old
        # weight buffer and must keep seeing forward-time values.
        parameter.data = parameter.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    _slots = ("m", "v")

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: Sequence[float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def _effective_grad(self, parameter: Parameter) -> np.ndarray:
        grad = parameter.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * parameter.data
        return grad

    def _update(self, index: int, parameter: Parameter) -> None:
        grad = self._effective_grad(parameter)
        m = self._m[index]
        v = self._v[index]
        if m is None:
            m = np.zeros_like(parameter.data)
            v = np.zeros_like(parameter.data)
            self._m[index] = m
            self._v[index] = v
        # In-place moment updates avoid reallocating two state-sized
        # arrays per parameter per step; the intermediate products live
        # in workspace scratch (transient: fully consumed below).
        scratch = workspace("optim.adam.scratch", grad.shape, grad.dtype)
        denom = workspace("optim.adam.denom", grad.shape, grad.dtype)
        m *= self.beta1
        np.multiply(grad, 1 - self.beta1, out=scratch)
        m += scratch
        v *= self.beta2
        np.multiply(grad, grad, out=scratch)
        scratch *= 1 - self.beta2
        v += scratch
        # step = lr * m_hat / (sqrt(v_hat) + eps), with the bias
        # corrections folded into the scalar factors.
        np.divide(v, 1 - self.beta2 ** self._step_count, out=denom)
        np.sqrt(denom, out=denom)
        denom += self.eps
        np.divide(m, denom, out=scratch)
        scratch *= self.lr / (1 - self.beta1 ** self._step_count)
        # Rebind (see SGD._update): pending backward closures may hold
        # views of the current weight buffer.
        parameter.data = parameter.data - scratch


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def _effective_grad(self, parameter: Parameter) -> np.ndarray:
        # Decoupled: decay is applied directly to the weights in _update.
        return parameter.grad

    def _update(self, index: int, parameter: Parameter) -> None:
        if self.weight_decay:
            parameter.data = parameter.data - self.lr * self.weight_decay * parameter.data
        super()._update(index, parameter)


class RMSProp(Optimizer):
    """RMSProp with exponentially decaying squared-gradient average."""

    _slots = ("square_avg",)

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        alpha: float = 0.99,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= alpha < 1.0:
            raise ValueError(f"alpha must be in [0, 1), got {alpha}")
        self.alpha = alpha
        self.eps = eps
        self.weight_decay = weight_decay
        self._square_avg: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def _update(self, index: int, parameter: Parameter) -> None:
        grad = parameter.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * parameter.data
        square_avg = self._square_avg[index]
        if square_avg is None:
            square_avg = np.zeros_like(parameter.data)
            self._square_avg[index] = square_avg
        square_avg *= self.alpha
        square_avg += (1 - self.alpha) * (grad * grad)
        # Rebind (see SGD._update): pending backward closures may hold
        # views of the current weight buffer.
        parameter.data = parameter.data - self.lr * grad / (np.sqrt(square_avg) + self.eps)


# --------------------------------------------------------------------------- #
# Learning-rate schedules
# --------------------------------------------------------------------------- #
class LRScheduler:
    """Base class for learning-rate schedules attached to an optimizer."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and update the optimizer's learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.get_lr(self.epoch)
        return self.optimizer.lr

    def get_lr(self, epoch: int) -> float:
        raise NotImplementedError


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** (epoch // self.step_size))


class ExponentialLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95) -> None:
        super().__init__(optimizer)
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** epoch)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base learning rate down to ``eta_min``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        self.total_epochs = total_epochs
        self.eta_min = eta_min

    def get_lr(self, epoch: int) -> float:
        progress = min(epoch, self.total_epochs) / self.total_epochs
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1 + np.cos(np.pi * progress))


_OPTIMIZERS = {
    "sgd": SGD,
    "adam": Adam,
    "adamw": AdamW,
    "rmsprop": RMSProp,
}


def get_optimizer(name: str, parameters: Iterable[Parameter], **kwargs) -> Optimizer:
    """Instantiate an optimizer by name (``sgd``, ``adam``, ``adamw``, ``rmsprop``)."""
    try:
        cls = _OPTIMIZERS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_OPTIMIZERS))
        raise KeyError(f"unknown optimizer {name!r}; known optimizers: {known}") from None
    return cls(parameters, **kwargs)
