"""NumPy deep-learning substrate with reverse-mode autograd.

This package replaces the GPU deep-learning framework the paper used with
a self-contained implementation of exactly the layer types that appear in
the paper's Fig.-3 CNN (Conv2D, MaxPooling2D, Dense, ReLU) plus the usual
training machinery (losses, optimizers, metrics, serialization).
"""

from . import dtype, functional, init, losses, metrics, optim, serialization
from .dtype import default_dtype, get_default_dtype, set_default_dtype
from .layers import (
    AvgPool2D,
    BatchNorm1D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    LeakyReLU,
    MaxPool2D,
    Module,
    Parameter,
    ReLU,
    Reshape,
    Sequential,
    Sigmoid,
    Softmax,
    Tanh,
)
from .losses import CrossEntropyLoss, L1Loss, Loss, MSELoss, NLLLoss, get_loss
from .optim import (
    SGD,
    Adam,
    AdamW,
    CosineAnnealingLR,
    ExponentialLR,
    LRScheduler,
    Optimizer,
    RMSProp,
    StepLR,
    get_optimizer,
)
from .tensor import Tensor, no_grad

__all__ = [
    "Tensor",
    "no_grad",
    "dtype",
    "default_dtype",
    "get_default_dtype",
    "set_default_dtype",
    "functional",
    "init",
    "losses",
    "metrics",
    "optim",
    "serialization",
    # layers
    "Module",
    "Parameter",
    "Sequential",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "Dropout",
    "BatchNorm1D",
    "BatchNorm2D",
    "Flatten",
    "Reshape",
    # losses
    "Loss",
    "CrossEntropyLoss",
    "NLLLoss",
    "MSELoss",
    "L1Loss",
    "get_loss",
    # optim
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "RMSProp",
    "LRScheduler",
    "StepLR",
    "ExponentialLR",
    "CosineAnnealingLR",
    "get_optimizer",
]
