"""Global floating-point dtype policy for the NumPy substrate.

Every leaf tensor, parameter, buffer and initializer in :mod:`repro.nn`
consults this module when it is not given an explicit dtype, so a single
call to :func:`set_default_dtype` (or the :class:`default_dtype` context
manager) switches the whole stack between fast ``float32`` training and
``float64`` precision mode.

The library default is **float32**: the split-learning workloads are
memory-bandwidth bound on the im2col/GEMM hot path, and halving the
element size roughly doubles end-to-end throughput (see
``benchmarks/test_bench_substrate.py``).  The test suite pins ``float64``
through the same policy hook so that central-difference gradient checks
stay exact.

Intermediate autograd ops always *preserve* their operands' dtype — the
policy only decides how raw arrays, Python scalars and lists entering the
graph are coerced, which is exactly the place where silent ``float64``
promotion used to creep in (e.g. ``one_hot`` building float64 masks under
float32 logits).
"""

from __future__ import annotations

from typing import Iterator, Union

import contextlib

import numpy as np

__all__ = [
    "DEFAULT_DTYPE",
    "get_default_dtype",
    "set_default_dtype",
    "default_dtype",
]

#: Library default: float32 for speed (see module docstring).
DEFAULT_DTYPE = np.dtype(np.float32)

_ALLOWED = (np.dtype(np.float16), np.dtype(np.float32), np.dtype(np.float64))

_default_dtype: np.dtype = DEFAULT_DTYPE

DTypeLike = Union[np.dtype, type, str]


def _validate(dtype: DTypeLike) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved not in _ALLOWED:
        allowed = ", ".join(str(d) for d in _ALLOWED)
        raise ValueError(
            f"default dtype must be a floating dtype ({allowed}), got {resolved}"
        )
    return resolved


def get_default_dtype() -> np.dtype:
    """Return the dtype used for tensors created without an explicit dtype."""
    return _default_dtype


def set_default_dtype(dtype: DTypeLike) -> np.dtype:
    """Set the global default floating dtype and return the *previous* one.

    Example
    -------
    >>> previous = set_default_dtype(np.float64)
    >>> ...  # precision-sensitive work
    >>> set_default_dtype(previous)
    """
    global _default_dtype
    previous = _default_dtype
    _default_dtype = _validate(dtype)
    return previous


@contextlib.contextmanager
def default_dtype(dtype: DTypeLike) -> Iterator[np.dtype]:
    """Context manager that temporarily switches the default dtype.

    >>> with default_dtype(np.float64):
    ...     model = build_paper_cnn()   # float64 parameters
    """
    previous = set_default_dtype(dtype)
    try:
        yield _default_dtype
    finally:
        set_default_dtype(previous)
