"""Weight-initialization schemes for the NumPy neural-network substrate.

The paper's CNN (Fig. 3) uses ReLU activations throughout, so He/Kaiming
initialization is the default for convolution and dense layers; Xavier
(Glorot) is provided for tanh/sigmoid networks and for the linear probes
used in the privacy-inversion analysis.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from .dtype import get_default_dtype

__all__ = [
    "compute_fans",
    "he_normal",
    "he_uniform",
    "xavier_normal",
    "xavier_uniform",
    "zeros",
    "ones",
    "normal",
    "uniform",
    "get_initializer",
]


def compute_fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a weight tensor shape.

    Dense weights are ``(in_features, out_features)``; convolution weights
    are ``(out_channels, in_channels, kh, kw)``.
    """
    if len(shape) == 2:
        fan_in, fan_out = shape[0], shape[1]
    elif len(shape) == 4:
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    elif len(shape) == 1:
        fan_in = fan_out = shape[0]
    else:
        size = int(np.prod(shape))
        fan_in = fan_out = int(math.sqrt(size))
    return int(fan_in), int(fan_out)


def _rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng()  # repro-lint: ignore[RL002] -- seeded-rng callers are the simulated path; bare default is interactive convenience


def he_normal(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Kaiming-He normal initialization for ReLU networks."""
    fan_in, _ = compute_fans(shape)
    std = math.sqrt(2.0 / max(fan_in, 1))
    return _rng(rng).normal(0.0, std, size=shape).astype(get_default_dtype(), copy=False)


def he_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Kaiming-He uniform initialization for ReLU networks."""
    fan_in, _ = compute_fans(shape)
    limit = math.sqrt(6.0 / max(fan_in, 1))
    return _rng(rng).uniform(-limit, limit, size=shape).astype(get_default_dtype(), copy=False)


def xavier_normal(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot-Xavier normal initialization."""
    fan_in, fan_out = compute_fans(shape)
    std = math.sqrt(2.0 / max(fan_in + fan_out, 1))
    return _rng(rng).normal(0.0, std, size=shape).astype(get_default_dtype(), copy=False)


def xavier_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot-Xavier uniform initialization."""
    fan_in, fan_out = compute_fans(shape)
    limit = math.sqrt(6.0 / max(fan_in + fan_out, 1))
    return _rng(rng).uniform(-limit, limit, size=shape).astype(get_default_dtype(), copy=False)


def zeros(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """All-zero initialization (biases)."""
    return np.zeros(shape, dtype=get_default_dtype())


def ones(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """All-one initialization (BatchNorm scale)."""
    return np.ones(shape, dtype=get_default_dtype())


def normal(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None,
           std: float = 0.01) -> np.ndarray:
    """Small-scale Gaussian initialization."""
    return _rng(rng).normal(0.0, std, size=shape).astype(get_default_dtype(), copy=False)


def uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None,
            limit: float = 0.05) -> np.ndarray:
    """Uniform initialization in ``[-limit, limit]``."""
    return _rng(rng).uniform(-limit, limit, size=shape).astype(get_default_dtype(), copy=False)


_INITIALIZERS = {
    "he_normal": he_normal,
    "he_uniform": he_uniform,
    "xavier_normal": xavier_normal,
    "xavier_uniform": xavier_uniform,
    "zeros": zeros,
    "ones": ones,
    "normal": normal,
    "uniform": uniform,
}


def get_initializer(name: str):
    """Look up an initializer function by name.

    Raises
    ------
    KeyError
        If ``name`` does not correspond to a known initializer.
    """
    try:
        return _INITIALIZERS[name]
    except KeyError:
        known = ", ".join(sorted(_INITIALIZERS))
        raise KeyError(f"unknown initializer {name!r}; known initializers: {known}") from None
