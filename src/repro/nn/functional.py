"""Functional neural-network operations with custom gradients.

These functions complement the primitive operations on :class:`~repro.nn.tensor.Tensor`
with the structured operations needed by the paper's CNN (Fig. 3):
2-D convolution (via ``im2col``), max/average pooling, softmax,
log-softmax and the classification losses.

All functions accept and return :class:`Tensor` objects and register
their own backward closures, so they compose freely with the rest of the
autograd graph.

Hot-path design
---------------
The convolution and pooling paths are the throughput bottleneck of every
split-learning experiment, so they are written to minimise allocations:

* patches are gathered through :func:`numpy.lib.stride_tricks.sliding_window_view`
  (a zero-copy strided view) and rearranged into the GEMM operand with a
  **single** copy, replacing the seed implementation's im2col-loop copy
  followed by a transpose-reshape copy;
* transient buffers (the zero-padded input, the inference-time column
  matrix, the pooling window matrix) come from the shape-keyed
  :mod:`repro.utils.perf` workspace cache instead of fresh allocations.
  Only buffers whose contents are never read by a backward closure after
  the op returns may live in a workspace — see the cache's safety
  contract;
* :func:`col2im` folds non-overlapping windows (stride == kernel, no
  padding — the paper's ``MaxPooling2D`` case) via a reshape instead of
  the strided ``+=`` scatter loop;
* when gradients are disabled (``evaluate``/``predict``), pooling reduces
  directly over the strided window view and convolution reuses a cached
  column workspace, so steady-state inference performs no large
  allocations beyond its outputs.

Op-level counters (GEMM calls, conv/pool invocations, workspace traffic)
are recorded in :data:`repro.utils.perf.counters`.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..utils.perf import counters, workspace
from .dtype import get_default_dtype
from .tensor import Tensor, ensure_tensor, is_grad_enabled

__all__ = [
    "im2col",
    "col2im",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "one_hot",
]

IntOrPair = Union[int, Tuple[int, int]]


def _pair(value: IntOrPair) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"expected a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    return (size + 2 * padding - kernel) // stride + 1


# --------------------------------------------------------------------------- #
# im2col / col2im
# --------------------------------------------------------------------------- #
def _pad_images(images: np.ndarray, ph: int, pw: int,
                scratch_tag: Optional[str] = None) -> np.ndarray:
    """Zero-pad the spatial dims, optionally into a reusable workspace.

    The padded array is transient scratch: every caller fully consumes it
    before returning, so it is safe to hand out a cached buffer.
    """
    if ph == 0 and pw == 0:
        return images
    n, c, h, w = images.shape
    if scratch_tag is None:
        return np.pad(images, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    padded = workspace(scratch_tag, (n, c, h + 2 * ph, w + 2 * pw), images.dtype)
    padded.fill(0.0)
    padded[:, :, ph:ph + h, pw:pw + w] = images
    return padded


def _strided_windows(padded: np.ndarray, kh: int, kw: int, sh: int, sw: int) -> np.ndarray:
    """``(N, C, out_h, out_w, kh, kw)`` zero-copy view of all pooling/conv windows."""
    windows = sliding_window_view(padded, (kh, kw), axis=(2, 3))
    return windows[:, :, ::sh, ::sw]


def _gather_patches(padded: np.ndarray, out: np.ndarray, sh: int, sw: int) -> np.ndarray:
    """Fill ``out`` (``(N, oh, ow, C, kh, kw)``) with convolution patches.

    Writing the patch-major layout directly — one vectorised slice
    assignment per kernel offset — is the contiguous-reshape fast path:
    ``out.reshape(N*oh*ow, C*kh*kw)`` is then a zero-copy view, where the
    seed implementation paid a second transpose-reshape copy.
    """
    _, oh, ow, _, kh, kw = out.shape
    for i in range(kh):
        i_end = i + sh * oh
        for j in range(kw):
            j_end = j + sw * ow
            out[:, :, :, :, i, j] = padded[:, :, i:i_end:sh, j:j_end:sw].transpose(0, 2, 3, 1)
    return out


def _gather_windows(padded: np.ndarray, out: np.ndarray, sh: int, sw: int) -> np.ndarray:
    """Fill ``out`` (``(N, C, oh, ow, kh, kw)``) with pooling windows."""
    _, _, oh, ow, kh, kw = out.shape
    for i in range(kh):
        i_end = i + sh * oh
        for j in range(kw):
            j_end = j + sw * ow
            out[:, :, :, :, i, j] = padded[:, :, i:i_end:sh, j:j_end:sw]
    return out


def im2col(
    images: np.ndarray,
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Unfold image patches into columns.

    Parameters
    ----------
    images:
        Array of shape ``(N, C, H, W)``.

    Returns
    -------
    Array of shape ``(N, C, kh, kw, out_h, out_w)``.
    """
    n, c, h, w = images.shape
    kh, kw = kernel_size
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)

    padded = _pad_images(images, ph, pw)
    cols = np.empty((n, c, kh, kw, out_h, out_w), dtype=images.dtype)
    for i in range(kh):
        i_end = i + sh * out_h
        for j in range(kw):
            j_end = j + sw * out_w
            cols[:, :, i, j, :, :] = padded[:, :, i:i_end:sh, j:j_end:sw]
    return cols


def col2im(
    cols: np.ndarray,
    image_shape: Tuple[int, int, int, int],
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Fold columns produced by :func:`im2col` back into images (adjoint op)."""
    n, c, h, w = image_shape
    kh, kw = kernel_size
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)

    if sh == kh and sw == kw and ph == 0 and pw == 0:
        # Non-overlapping windows (the paper's MaxPooling2D case): every
        # image pixel receives at most one contribution, so the strided
        # read-modify-write ``+=`` accumulation collapses to pure slice
        # assignments — each pixel written exactly once, no zero-init of
        # the covered region and no add pass.
        counters.add("col2im_fast_path")
        if out_h * kh == h and out_w * kw == w:
            image = np.empty((n, c, h, w), dtype=cols.dtype)
        else:
            # Remainder rows/columns are never covered by a window.
            image = np.zeros((n, c, h, w), dtype=cols.dtype)
        for i in range(kh):
            i_end = i + kh * out_h
            for j in range(kw):
                j_end = j + kw * out_w
                image[:, :, i:i_end:kh, j:j_end:kw] = cols[:, :, i, j, :, :]
        return image

    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    for i in range(kh):
        i_end = i + sh * out_h
        for j in range(kw):
            j_end = j + sw * out_w
            padded[:, :, i:i_end:sh, j:j_end:sw] += cols[:, :, i, j, :, :]
    if ph == 0 and pw == 0:
        return padded
    return padded[:, :, ph:ph + h, pw:pw + w]


# --------------------------------------------------------------------------- #
# Convolution
# --------------------------------------------------------------------------- #
def conv2d(
    inputs: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: IntOrPair = 1,
    padding: IntOrPair = 0,
) -> Tensor:
    """2-D convolution over a mini-batch in NCHW layout.

    Parameters
    ----------
    inputs:
        Tensor of shape ``(N, C_in, H, W)``.
    weight:
        Tensor of shape ``(C_out, C_in, kh, kw)``.
    bias:
        Optional tensor of shape ``(C_out,)``.
    """
    inputs = ensure_tensor(inputs)
    weight = ensure_tensor(weight)
    stride = _pair(stride)
    padding = _pair(padding)

    x = inputs.data
    w = weight.data
    n, c_in, h, w_in = x.shape
    c_out, c_in_w, kh, kw = w.shape
    if c_in != c_in_w:
        raise ValueError(
            f"conv2d channel mismatch: input has {c_in} channels, weight expects {c_in_w}"
        )

    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w_in, kw, sw, pw)

    parents = (inputs, weight) if bias is None else (inputs, weight, bias)
    requires = is_grad_enabled() and any(p.requires_grad for p in parents)

    counters.add("conv2d_forward")
    padded = _pad_images(x, ph, pw, scratch_tag="conv2d.pad")
    # Single-copy rearrangement into the GEMM operand (N*oh*ow, C*kh*kw):
    # the patches are gathered directly in patch-major order, so the
    # reshape below is a zero-copy view (no second transpose-copy).
    if requires:
        # The backward pass reads cols_matrix (weight gradient GEMM), so
        # it must own its storage — no workspace reuse here.
        patches = np.empty((n, out_h, out_w, c_in, kh, kw), dtype=x.dtype)
    else:
        patches = workspace("conv2d.cols", (n, out_h, out_w, c_in, kh, kw), x.dtype)
    _gather_patches(padded, patches, sh, sw)
    cols_matrix = patches.reshape(n * out_h * out_w, c_in * kh * kw)
    weight_matrix = w.reshape(c_out, -1)

    counters.add("gemm_calls")
    out_matrix = cols_matrix @ weight_matrix.T  # (N*oh*ow, C_out)
    if bias is not None:
        out_matrix += bias.data  # in-place broadcast over the row dimension
    out_data = out_matrix.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)

    out = Tensor(out_data, requires_grad=requires, dtype=out_data.dtype)
    if not requires:
        return out
    out._parents = parents

    def _backward(grad: np.ndarray) -> None:
        counters.add("conv2d_backward")
        grad_matrix = np.ascontiguousarray(grad.transpose(0, 2, 3, 1)).reshape(
            n * out_h * out_w, c_out
        )
        if weight.requires_grad:
            counters.add("gemm_calls")
            grad_weight = (grad_matrix.T @ cols_matrix).reshape(w.shape)
            weight._accumulate(grad_weight, owned=True)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)), owned=True)
        if inputs.requires_grad:
            counters.add("gemm_calls")
            grad_cols_matrix = grad_matrix @ weight_matrix  # (N*oh*ow, C*kh*kw)
            # Fold the patch gradients in their native patch-major layout:
            # each kernel offset reads a near-contiguous slice of the GEMM
            # output and accumulates into an NHWC padded image, avoiding
            # the badly-strided reads a transposed col2im view would incur.
            grad_cols = grad_cols_matrix.reshape(n, out_h, out_w, c_in, kh, kw)
            grad_padded = np.zeros((n, h + 2 * ph, w_in + 2 * pw, c_in), dtype=grad.dtype)
            for i in range(kh):
                i_end = i + sh * out_h
                for j in range(kw):
                    j_end = j + sw * out_w
                    grad_padded[:, i:i_end:sh, j:j_end:sw, :] += grad_cols[:, :, :, :, i, j]
            grad_input = np.ascontiguousarray(
                grad_padded[:, ph:ph + h, pw:pw + w_in, :].transpose(0, 3, 1, 2)
            )
            inputs._accumulate(grad_input, owned=True)

    out._backward = _backward
    return out


# --------------------------------------------------------------------------- #
# Pooling
# --------------------------------------------------------------------------- #
def max_pool2d(inputs: Tensor, kernel_size: IntOrPair = 2, stride: Optional[IntOrPair] = None,
               padding: IntOrPair = 0) -> Tensor:
    """Max pooling over spatial windows in NCHW layout.

    The paper's privacy argument (Fig. 4) hinges on this operation: the
    max-pooled first-block activations no longer reveal the raw image.
    """
    inputs = ensure_tensor(inputs)
    kernel = _pair(kernel_size)
    stride = _pair(stride) if stride is not None else kernel
    padding = _pair(padding)

    x = inputs.data
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)

    counters.add("pool_forward")
    padded = _pad_images(x, ph, pw, scratch_tag="max_pool2d.pad")

    requires = is_grad_enabled() and inputs.requires_grad
    if not requires:
        # Inference fast path: pairwise maximum over the kh*kw strided
        # planes — no window matrix is ever materialised.
        out_data: Optional[np.ndarray] = None
        for i in range(kh):
            i_end = i + sh * out_h
            for j in range(kw):
                j_end = j + sw * out_w
                plane = padded[:, :, i:i_end:sh, j:j_end:sw]
                if out_data is None:
                    out_data = plane.copy()
                else:
                    np.maximum(out_data, plane, out=out_data)
        return Tensor(out_data, dtype=x.dtype)

    # The window matrix is only read during the forward pass (argmax +
    # gather); the backward closure touches just its *shape*, so the
    # buffer can come from the workspace cache.
    scratch = workspace("max_pool2d.cols", (n, c, out_h, out_w, kh, kw), x.dtype)
    _gather_windows(padded, scratch, sh, sw)
    flat = scratch.reshape(n, c, out_h, out_w, kh * kw)
    argmax = flat.argmax(axis=-1)  # (N, C, oh, ow)
    out_data = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]

    out = Tensor(out_data, requires_grad=requires, dtype=out_data.dtype)
    out._parents = (inputs,)

    non_overlapping = (
        sh == kh and sw == kw and ph == 0 and pw == 0
        and out_h * kh == h and out_w * kw == w
    )

    def _backward(grad: np.ndarray) -> None:
        counters.add("pool_backward")
        if non_overlapping:
            # Scatter each window's gradient straight into the image:
            # with stride == kernel every input pixel belongs to exactly
            # one window, so no intermediate window matrix or fold copy
            # is needed.
            grad_image = np.zeros((n, c, h, w), dtype=grad.dtype)
            folded = grad_image.reshape(n, c, out_h, kh, out_w, kw).transpose(0, 1, 2, 4, 3, 5)
            win_i, win_j = np.divmod(argmax, kw)
            n_i, c_i, oh_i, ow_i = np.ogrid[:n, :c, :out_h, :out_w]
            folded[n_i, c_i, oh_i, ow_i, win_i, win_j] = grad
            inputs._accumulate(grad_image, owned=True)
            return
        grad_flat = np.zeros((n, c, out_h, out_w, kh * kw), dtype=grad.dtype)
        np.put_along_axis(grad_flat, argmax[..., None], grad[..., None], axis=-1)
        grad_cols = grad_flat.reshape(n, c, out_h, out_w, kh, kw).transpose(0, 1, 4, 5, 2, 3)
        grad_input = col2im(grad_cols, x.shape, kernel, stride, padding)
        inputs._accumulate(grad_input, owned=True)

    out._backward = _backward
    return out


def avg_pool2d(inputs: Tensor, kernel_size: IntOrPair = 2, stride: Optional[IntOrPair] = None,
               padding: IntOrPair = 0) -> Tensor:
    """Average pooling over spatial windows in NCHW layout."""
    inputs = ensure_tensor(inputs)
    kernel = _pair(kernel_size)
    stride = _pair(stride) if stride is not None else kernel
    padding = _pair(padding)

    x = inputs.data
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)

    counters.add("pool_forward")
    padded = _pad_images(x, ph, pw, scratch_tag="avg_pool2d.pad")
    windows = _strided_windows(padded, kh, kw, sh, sw)
    # Mean over the zero-copy view: the only allocation is the output.
    out_data = windows.mean(axis=(4, 5))

    requires = is_grad_enabled() and inputs.requires_grad
    out = Tensor(out_data, requires_grad=requires, dtype=out_data.dtype)
    if not requires:
        return out
    out._parents = (inputs,)

    def _backward(grad: np.ndarray) -> None:
        counters.add("pool_backward")
        grad_cols = np.broadcast_to(
            (grad / (kh * kw)).astype(x.dtype, copy=False)[:, :, None, None, :, :],
            (n, c, kh, kw, out_h, out_w),
        )
        grad_input = col2im(grad_cols, x.shape, kernel, stride, padding)
        inputs._accumulate(grad_input, owned=True)

    out._backward = _backward
    return out


# --------------------------------------------------------------------------- #
# Softmax / losses
# --------------------------------------------------------------------------- #
def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    logits = ensure_tensor(logits)
    shift = logits.data.max(axis=axis, keepdims=True)
    shifted = logits - Tensor(shift, dtype=shift.dtype)
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    logits = ensure_tensor(logits)
    shift = logits.data.max(axis=axis, keepdims=True)
    shifted = logits - Tensor(shift, dtype=shift.dtype)
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def one_hot(labels: np.ndarray, num_classes: int, dtype=None) -> np.ndarray:
    """Convert integer labels of shape ``(N,)`` to a one-hot matrix ``(N, K)``.

    The matrix is created in ``dtype`` (default: the global dtype policy)
    so that losses never up-cast float32 logits through a float64 mask.
    """
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must lie in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros(
        (labels.shape[0], num_classes),
        dtype=dtype if dtype is not None else get_default_dtype(),
    )
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def nll_loss(log_probs: Tensor, labels: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood of integer ``labels`` under ``log_probs``."""
    log_probs = ensure_tensor(log_probs)
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    num_classes = log_probs.shape[-1]
    encoded = one_hot(labels, num_classes, dtype=log_probs.dtype)
    mask = Tensor(encoded, dtype=encoded.dtype)
    per_sample = -(log_probs * mask).sum(axis=-1)
    return _reduce(per_sample, reduction)


def cross_entropy(logits: Tensor, labels: np.ndarray, reduction: str = "mean") -> Tensor:
    """Softmax cross-entropy between raw ``logits`` and integer ``labels``."""
    return nll_loss(log_softmax(logits, axis=-1), labels, reduction=reduction)


def mse_loss(predictions: Tensor, targets: Tensor, reduction: str = "mean") -> Tensor:
    """Mean squared error between two tensors."""
    predictions = ensure_tensor(predictions)
    targets = ensure_tensor(targets)
    squared = (predictions - targets) * (predictions - targets)
    return _reduce(squared, reduction)


def _reduce(values: Tensor, reduction: str) -> Tensor:
    if reduction == "mean":
        return values.mean()
    if reduction == "sum":
        return values.sum()
    if reduction == "none":
        return values
    raise ValueError(f"unknown reduction {reduction!r}; expected 'mean', 'sum' or 'none'")
