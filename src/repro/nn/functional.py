"""Functional neural-network operations with custom gradients.

These functions complement the primitive operations on :class:`~repro.nn.tensor.Tensor`
with the structured operations needed by the paper's CNN (Fig. 3):
2-D convolution (via ``im2col``), max/average pooling, softmax,
log-softmax and the classification losses.

All functions accept and return :class:`Tensor` objects and register
their own backward closures, so they compose freely with the rest of the
autograd graph.

Hot-path design
---------------
The convolution and pooling paths are the throughput bottleneck of every
split-learning experiment, so they are written to minimise allocations:

* patches are gathered through :func:`numpy.lib.stride_tricks.sliding_window_view`
  (a zero-copy strided view) and rearranged into the GEMM operand with a
  **single** copy, replacing the seed implementation's im2col-loop copy
  followed by a transpose-reshape copy;
* transient buffers (the zero-padded input, the inference-time column
  matrix, the pooling window matrix) come from the shape-keyed
  :mod:`repro.utils.perf` workspace cache instead of fresh allocations.
  Only buffers whose contents are never read by a backward closure after
  the op returns may live in a workspace — see the cache's safety
  contract;
* :func:`col2im` folds non-overlapping windows (stride == kernel, no
  padding — the paper's ``MaxPooling2D`` case) via a reshape instead of
  the strided ``+=`` scatter loop;
* when gradients are disabled (``evaluate``/``predict``), pooling reduces
  directly over the strided window view and convolution reuses a cached
  column workspace, so steady-state inference performs no large
  allocations beyond its outputs;
* every GEMM goes through the pluggable backend in :mod:`repro.backend`
  (``conv2d``'s forward product fuses the bias into the GEMM epilogue,
  :func:`linear` is a single fused affine node, and the blocked backend
  tiles large products with cache-hot epilogues);
* :func:`cross_entropy` fuses the log-softmax into the loss: one pass
  computes the per-sample losses and the backward closure emits
  ``(softmax - one_hot) * scale`` directly, with no intermediate graph
  nodes;
* unpadded ``max_pool2d`` training reduces with pairwise maxima (no
  window matrix or argmax) and recomputes the winner mask in backward.

Op-level counters (GEMM calls, conv/pool invocations, workspace traffic)
are recorded in :data:`repro.utils.perf.counters`.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..backend import get_backend
from ..utils.perf import counters, workspace
from .dtype import get_default_dtype
from .tensor import Tensor, ensure_tensor, is_grad_enabled

__all__ = [
    "im2col",
    "col2im",
    "conv2d",
    "linear",
    "max_pool2d",
    "avg_pool2d",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "one_hot",
]

IntOrPair = Union[int, Tuple[int, int]]


def _pair(value: IntOrPair) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"expected a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    return (size + 2 * padding - kernel) // stride + 1


# --------------------------------------------------------------------------- #
# im2col / col2im
# --------------------------------------------------------------------------- #
def _pad_images(images: np.ndarray, ph: int, pw: int,
                scratch_tag: Optional[str] = None) -> np.ndarray:
    """Zero-pad the spatial dims, optionally into a reusable workspace.

    The padded array is transient scratch: every caller fully consumes it
    before returning, so it is safe to hand out a cached buffer.
    """
    if ph == 0 and pw == 0:
        return images
    n, c, h, w = images.shape
    if scratch_tag is None:
        return np.pad(images, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    padded = workspace(scratch_tag, (n, c, h + 2 * ph, w + 2 * pw), images.dtype)
    # Zero only the border stripes: the interior is overwritten below, so
    # a full fill would redundantly touch most of the buffer twice.
    if ph:
        padded[:, :, :ph, :] = 0.0
        padded[:, :, ph + h:, :] = 0.0
    if pw:
        padded[:, :, ph:ph + h, :pw] = 0.0
        padded[:, :, ph:ph + h, pw + w:] = 0.0
    padded[:, :, ph:ph + h, pw:pw + w] = images
    return padded


def _strided_windows(padded: np.ndarray, kh: int, kw: int, sh: int, sw: int) -> np.ndarray:
    """``(N, C, out_h, out_w, kh, kw)`` zero-copy view of all pooling/conv windows."""
    windows = sliding_window_view(padded, (kh, kw), axis=(2, 3))
    return windows[:, :, ::sh, ::sw]


def _gather_patches_direct(x: np.ndarray, out: np.ndarray, ph: int, pw: int) -> np.ndarray:
    """Stride-1 patch gather straight from the *unpadded* input.

    Rather than materialising a zero-padded copy of ``x`` and gathering
    from it, each kernel offset copies its clipped in-bounds window and
    zeroes only the thin boundary strips the padding would have
    contributed — one full write plus one full read of the image less
    than the pad-then-gather path.
    """
    _, _, h, w = x.shape
    _, oh, ow, kh, kw, _ = out.shape
    for i in range(kh):
        di = i - ph
        r0, r1 = max(0, -di), min(oh, h - di)
        for j in range(kw):
            dj = j - pw
            c0, c1 = max(0, -dj), min(ow, w - dj)
            view = out[:, :, :, i, j, :]
            if r0 > 0:
                view[:, :r0, :, :] = 0.0
            if r1 < oh:
                view[:, r1:, :, :] = 0.0
            if c0 > 0:
                view[:, r0:r1, :c0, :] = 0.0
            if c1 < ow:
                view[:, r0:r1, c1:, :] = 0.0
            view[:, r0:r1, c0:c1, :] = (
                x[:, :, r0 + di:r1 + di, c0 + dj:c1 + dj].transpose(0, 2, 3, 1)
            )
    return out


def _gather_patches(padded: np.ndarray, out: np.ndarray, sh: int, sw: int) -> np.ndarray:
    """Fill ``out`` (``(N, oh, ow, kh, kw, C)``) with convolution patches.

    Writing the patch-major layout directly — one vectorised slice
    assignment per kernel offset — is the contiguous-reshape fast path:
    ``out.reshape(N*oh*ow, kh*kw*C)`` is then a zero-copy view, where the
    seed implementation paid a second transpose-reshape copy.  Keeping
    the channel axis *last* makes every slice assignment write
    contiguous ``C``-sized chunks instead of single strided elements.
    """
    _, oh, ow, kh, kw, _ = out.shape
    for i in range(kh):
        i_end = i + sh * oh
        for j in range(kw):
            j_end = j + sw * ow
            out[:, :, :, i, j, :] = padded[:, :, i:i_end:sh, j:j_end:sw].transpose(0, 2, 3, 1)
    return out


def _gather_windows(padded: np.ndarray, out: np.ndarray, sh: int, sw: int) -> np.ndarray:
    """Fill ``out`` (``(N, C, oh, ow, kh, kw)``) with pooling windows."""
    _, _, oh, ow, kh, kw = out.shape
    for i in range(kh):
        i_end = i + sh * oh
        for j in range(kw):
            j_end = j + sw * ow
            out[:, :, :, :, i, j] = padded[:, :, i:i_end:sh, j:j_end:sw]
    return out


def im2col(
    images: np.ndarray,
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Unfold image patches into columns.

    Parameters
    ----------
    images:
        Array of shape ``(N, C, H, W)``.

    Returns
    -------
    Array of shape ``(N, C, kh, kw, out_h, out_w)``.
    """
    n, c, h, w = images.shape
    kh, kw = kernel_size
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)

    padded = _pad_images(images, ph, pw)
    cols = np.empty((n, c, kh, kw, out_h, out_w), dtype=images.dtype)
    for i in range(kh):
        i_end = i + sh * out_h
        for j in range(kw):
            j_end = j + sw * out_w
            cols[:, :, i, j, :, :] = padded[:, :, i:i_end:sh, j:j_end:sw]
    return cols


def col2im(
    cols: np.ndarray,
    image_shape: Tuple[int, int, int, int],
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Fold columns produced by :func:`im2col` back into images (adjoint op)."""
    n, c, h, w = image_shape
    kh, kw = kernel_size
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)

    if sh == kh and sw == kw and ph == 0 and pw == 0:
        # Non-overlapping windows (the paper's MaxPooling2D case): every
        # image pixel receives at most one contribution, so the strided
        # read-modify-write ``+=`` accumulation collapses to pure slice
        # assignments — each pixel written exactly once, no zero-init of
        # the covered region and no add pass.
        counters.add("col2im_fast_path")
        if out_h * kh == h and out_w * kw == w:
            image = np.empty((n, c, h, w), dtype=cols.dtype)
        else:
            # Remainder rows/columns are never covered by a window.
            image = np.zeros((n, c, h, w), dtype=cols.dtype)
        for i in range(kh):
            i_end = i + kh * out_h
            for j in range(kw):
                j_end = j + kw * out_w
                image[:, :, i:i_end:kh, j:j_end:kw] = cols[:, :, i, j, :, :]
        return image

    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    for i in range(kh):
        i_end = i + sh * out_h
        for j in range(kw):
            j_end = j + sw * out_w
            padded[:, :, i:i_end:sh, j:j_end:sw] += cols[:, :, i, j, :, :]
    if ph == 0 and pw == 0:
        return padded
    return padded[:, :, ph:ph + h, pw:pw + w]


# --------------------------------------------------------------------------- #
# Convolution
# --------------------------------------------------------------------------- #
def conv2d(
    inputs: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: IntOrPair = 1,
    padding: IntOrPair = 0,
    activation: Optional[str] = None,
) -> Tensor:
    """2-D convolution over a mini-batch in NCHW layout.

    Parameters
    ----------
    inputs:
        Tensor of shape ``(N, C_in, H, W)``.
    weight:
        Tensor of shape ``(C_out, C_in, kh, kw)``.
    bias:
        Optional tensor of shape ``(C_out,)``.
    activation:
        Optional elementwise epilogue (currently ``"relu"``).  In
        inference mode it is fused into the backend's GEMM epilogue
        (applied per tile, no separate pass); in training mode it is
        appended as a regular autograd node so gradients stay exact.
    """
    inputs = ensure_tensor(inputs)
    weight = ensure_tensor(weight)
    stride = _pair(stride)
    padding = _pair(padding)

    x = inputs.data
    w = weight.data
    n, c_in, h, w_in = x.shape
    c_out, c_in_w, kh, kw = w.shape
    if c_in != c_in_w:
        raise ValueError(
            f"conv2d channel mismatch: input has {c_in} channels, weight expects {c_in_w}"
        )

    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w_in, kw, sw, pw)

    parents = (inputs, weight) if bias is None else (inputs, weight, bias)
    requires = is_grad_enabled() and any(p.requires_grad for p in parents)

    counters.add("conv2d_forward")
    backend = get_backend()
    # Single-copy rearrangement into the GEMM operand (N*oh*ow, C*kh*kw):
    # the patches are gathered directly in patch-major order, so the
    # reshape below is a zero-copy view (no second transpose-copy).
    if requires:
        # The backward pass reads cols_matrix (weight gradient GEMM), so
        # it must own its storage — no workspace reuse here.
        patches = np.empty((n, out_h, out_w, kh, kw, c_in), dtype=x.dtype)
    else:
        patches = workspace("conv2d.cols", (n, out_h, out_w, kh, kw, c_in), x.dtype)
    if sh == 1 and sw == 1:
        # Stride-1 (the paper's convs): clip per offset instead of
        # materialising a zero-padded copy of the input.
        _gather_patches_direct(x, patches, ph, pw)
    else:
        padded = _pad_images(x, ph, pw, scratch_tag="conv2d.pad")
        _gather_patches(padded, patches, sh, sw)
    cols_matrix = patches.reshape(n * out_h * out_w, kh * kw * c_in)
    # Weight rearranged to match the (kh, kw, C) patch order; the copy is
    # kernel-sized (tiny) and shared by forward and backward.
    weight_matrix = np.ascontiguousarray(w.transpose(0, 2, 3, 1)).reshape(c_out, -1)

    if activation is not None and activation != "relu":
        raise ValueError(f"conv2d supports activation='relu' or None, got {activation!r}")
    # The bias is fused into the GEMM epilogue (per-tile on the blocked
    # backend) instead of a second full pass over the output; in
    # inference mode the activation rides the same epilogue.
    out_matrix = backend.gemm(
        cols_matrix, weight_matrix.T,
        bias=bias.data if bias is not None else None,
        activation=activation if not requires else None,
    )  # (N*oh*ow, C_out)
    out_data = out_matrix.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)

    out = Tensor(out_data, requires_grad=requires, dtype=out_data.dtype)
    if not requires:
        return out
    out._parents = parents

    def _backward(grad: np.ndarray) -> None:
        counters.add("conv2d_backward")
        grad_matrix = np.ascontiguousarray(grad.transpose(0, 2, 3, 1)).reshape(
            n * out_h * out_w, c_out
        )
        if weight.requires_grad:
            grad_weight = np.ascontiguousarray(
                backend.gemm(grad_matrix.T, cols_matrix)
                .reshape(c_out, kh, kw, c_in)
                .transpose(0, 3, 1, 2)
            )
            weight._accumulate(grad_weight, owned=True)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)), owned=True)
        if inputs.requires_grad:
            # The patch-gradient matrix is transient scratch — it is fully
            # folded into grad_padded below before the closure returns —
            # so the GEMM writes into a workspace-cached buffer.
            grad_cols_matrix = backend.gemm(
                grad_matrix, weight_matrix,
                out=workspace("conv2d.grad_cols",
                              (n * out_h * out_w, kh * kw * c_in), grad.dtype),
            )  # (N*oh*ow, kh*kw*C)
            # Fold the patch gradients in their native patch-major layout:
            # each kernel offset reads contiguous C-sized chunks of the
            # GEMM output and accumulates into an NHWC padded image,
            # avoiding the badly-strided reads a transposed col2im view
            # would incur.
            grad_cols = grad_cols_matrix.reshape(n, out_h, out_w, kh, kw, c_in)
            padded_shape = (n, h + 2 * ph, w_in + 2 * pw, c_in)
            if sh == 1 and sw == 1:
                # Stride-1 fast path: offset (0, 0) covers all but the
                # trailing kh-1 rows / kw-1 cols, so assign it into
                # uninitialized memory (zeroing only those strips) and
                # skip both the full zero fill and one accumulation pass.
                grad_padded = np.empty(padded_shape, dtype=grad.dtype)
                if kh > 1:
                    grad_padded[:, out_h:, :, :] = 0.0
                if kw > 1:
                    grad_padded[:, :out_h, out_w:, :] = 0.0
                grad_padded[:, :out_h, :out_w, :] = grad_cols[:, :, :, 0, 0, :]
                offsets = [(i, j) for i in range(kh) for j in range(kw)][1:]
            else:
                grad_padded = np.zeros(padded_shape, dtype=grad.dtype)
                offsets = [(i, j) for i in range(kh) for j in range(kw)]
            for i, j in offsets:
                i_end = i + sh * out_h
                j_end = j + sw * out_w
                grad_padded[:, i:i_end:sh, j:j_end:sw, :] += grad_cols[:, :, :, i, j, :]
            grad_input = np.ascontiguousarray(
                grad_padded[:, ph:ph + h, pw:pw + w_in, :].transpose(0, 3, 1, 2)
            )
            inputs._accumulate(grad_input, owned=True)

    out._backward = _backward
    if activation is not None:
        # Training mode: the epilogue becomes a regular graph node.
        return out.relu()
    return out


# --------------------------------------------------------------------------- #
# Dense / linear
# --------------------------------------------------------------------------- #
def linear(inputs: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``inputs @ weight + bias`` as one fused graph node.

    The bias add rides the GEMM epilogue (per-tile on the blocked
    backend) instead of being a separate broadcast-add node, so the
    forward pass is a single backend call and the backward pass is two
    GEMMs plus a column reduction.
    """
    inputs = ensure_tensor(inputs)
    weight = ensure_tensor(weight)
    if inputs.ndim != 2 or weight.ndim != 2:
        raise ValueError(
            f"linear expects 2-D operands, got {inputs.shape} @ {weight.shape}"
        )
    x = inputs.data
    w = weight.data
    parents = (inputs, weight) if bias is None else (inputs, weight, bias)
    requires = is_grad_enabled() and any(p.requires_grad for p in parents)
    backend = get_backend()
    counters.add("linear_forward")
    out_data = backend.gemm(x, w, bias=bias.data if bias is not None else None)

    out = Tensor(out_data, requires_grad=requires, dtype=out_data.dtype)
    if not requires:
        return out
    out._parents = parents

    def _backward(grad: np.ndarray) -> None:
        if inputs.requires_grad:
            inputs._accumulate(backend.gemm(grad, w.T), owned=True)
        if weight.requires_grad:
            weight._accumulate(backend.gemm(x.T, grad), owned=True)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=0), owned=True)

    out._backward = _backward
    return out


# --------------------------------------------------------------------------- #
# Pooling
# --------------------------------------------------------------------------- #
def _pairwise_max(images: np.ndarray, kh: int, kw: int, sh: int, sw: int,
                  out_h: int, out_w: int) -> np.ndarray:
    """Window maximum as pairwise maxima over the kh*kw strided planes."""
    planes = [
        images[:, :, i:i + sh * out_h:sh, j:j + sw * out_w:sw]
        for i in range(kh)
        for j in range(kw)
    ]
    if len(planes) == 1:
        return planes[0].copy()
    out = np.maximum(planes[0], planes[1])
    for plane in planes[2:]:
        np.maximum(out, plane, out=out)
    return out


def max_pool2d(inputs: Tensor, kernel_size: IntOrPair = 2, stride: Optional[IntOrPair] = None,
               padding: IntOrPair = 0) -> Tensor:
    """Max pooling over spatial windows in NCHW layout.

    The paper's privacy argument (Fig. 4) hinges on this operation: the
    max-pooled first-block activations no longer reveal the raw image.
    """
    inputs = ensure_tensor(inputs)
    kernel = _pair(kernel_size)
    stride = _pair(stride) if stride is not None else kernel
    padding = _pair(padding)

    x = inputs.data
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)

    counters.add("pool_forward")
    padded = _pad_images(x, ph, pw, scratch_tag="max_pool2d.pad")

    requires = is_grad_enabled() and inputs.requires_grad
    if not requires:
        # Inference fast path: pairwise maximum over the kh*kw strided
        # planes — no window matrix is ever materialised.
        out_data = _pairwise_max(padded, kh, kw, sh, sw, out_h, out_w)
        return Tensor(out_data, dtype=x.dtype)

    if ph == 0 and pw == 0:
        # Training fast path for unpadded pooling (the paper's
        # MaxPooling2D case): reduce with pairwise maxima over the kh*kw
        # strided planes — no window matrix, no argmax, no gather — and
        # let the backward pass recompute the winners by comparing each
        # plane against the pooled output.  Ties resolve to the first
        # (i, j) offset, exactly matching ``argmax`` order.
        counters.add("max_pool_fused")
        out_data = _pairwise_max(x, kh, kw, sh, sw, out_h, out_w)
        out = Tensor(out_data, requires_grad=requires, dtype=out_data.dtype)
        out._parents = (inputs,)

        def _backward_fused(grad: np.ndarray) -> None:
            counters.add("pool_backward")
            grad_image = np.zeros((n, c, h, w), dtype=grad.dtype)
            # Bool scratch is transient within this closure, so it comes
            # from the workspace cache (no per-step allocations).
            equal = workspace("max_pool2d.equal", out_data.shape, np.bool_)
            winner = workspace("max_pool2d.winner", out_data.shape, np.bool_)
            assigned = workspace("max_pool2d.assigned", out_data.shape, np.bool_)
            assigned.fill(False)
            # With stride >= kernel every image cell belongs to at most
            # one window offset, so the masked gradient can be written
            # straight into the image instead of accumulated.
            disjoint = sh >= kh and sw >= kw
            for i in range(kh):
                i_end = i + sh * out_h
                for j in range(kw):
                    j_end = j + sw * out_w
                    np.equal(x[:, :, i:i_end:sh, j:j_end:sw], out_data, out=equal)
                    np.greater(equal, assigned, out=winner)  # equal & ~assigned
                    target = grad_image[:, :, i:i_end:sh, j:j_end:sw]
                    if disjoint:
                        np.multiply(grad, winner, out=target)
                    else:
                        target += grad * winner
                    if (i, j) != (kh - 1, kw - 1):
                        np.logical_or(assigned, equal, out=assigned)
            inputs._accumulate(grad_image, owned=True)

        out._backward = _backward_fused
        return out

    # The window matrix is only read during the forward pass (argmax +
    # gather); the backward closure touches just its *shape*, so the
    # buffer can come from the workspace cache.
    scratch = workspace("max_pool2d.cols", (n, c, out_h, out_w, kh, kw), x.dtype)
    _gather_windows(padded, scratch, sh, sw)
    flat = scratch.reshape(n, c, out_h, out_w, kh * kw)
    argmax = flat.argmax(axis=-1)  # (N, C, oh, ow)
    out_data = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]

    out = Tensor(out_data, requires_grad=requires, dtype=out_data.dtype)
    out._parents = (inputs,)

    non_overlapping = (
        sh == kh and sw == kw and ph == 0 and pw == 0
        and out_h * kh == h and out_w * kw == w
    )

    def _backward(grad: np.ndarray) -> None:
        counters.add("pool_backward")
        if non_overlapping:
            # Scatter each window's gradient straight into the image:
            # with stride == kernel every input pixel belongs to exactly
            # one window, so no intermediate window matrix or fold copy
            # is needed.
            grad_image = np.zeros((n, c, h, w), dtype=grad.dtype)
            folded = grad_image.reshape(n, c, out_h, kh, out_w, kw).transpose(0, 1, 2, 4, 3, 5)
            win_i, win_j = np.divmod(argmax, kw)
            n_i, c_i, oh_i, ow_i = np.ogrid[:n, :c, :out_h, :out_w]
            folded[n_i, c_i, oh_i, ow_i, win_i, win_j] = grad
            inputs._accumulate(grad_image, owned=True)
            return
        grad_flat = np.zeros((n, c, out_h, out_w, kh * kw), dtype=grad.dtype)
        np.put_along_axis(grad_flat, argmax[..., None], grad[..., None], axis=-1)
        grad_cols = grad_flat.reshape(n, c, out_h, out_w, kh, kw).transpose(0, 1, 4, 5, 2, 3)
        grad_input = col2im(grad_cols, x.shape, kernel, stride, padding)
        inputs._accumulate(grad_input, owned=True)

    out._backward = _backward
    return out


def avg_pool2d(inputs: Tensor, kernel_size: IntOrPair = 2, stride: Optional[IntOrPair] = None,
               padding: IntOrPair = 0) -> Tensor:
    """Average pooling over spatial windows in NCHW layout."""
    inputs = ensure_tensor(inputs)
    kernel = _pair(kernel_size)
    stride = _pair(stride) if stride is not None else kernel
    padding = _pair(padding)

    x = inputs.data
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)

    counters.add("pool_forward")
    padded = _pad_images(x, ph, pw, scratch_tag="avg_pool2d.pad")
    windows = _strided_windows(padded, kh, kw, sh, sw)
    # Mean over the zero-copy view: the only allocation is the output.
    out_data = windows.mean(axis=(4, 5))

    requires = is_grad_enabled() and inputs.requires_grad
    out = Tensor(out_data, requires_grad=requires, dtype=out_data.dtype)
    if not requires:
        return out
    out._parents = (inputs,)

    def _backward(grad: np.ndarray) -> None:
        counters.add("pool_backward")
        grad_cols = np.broadcast_to(
            (grad / (kh * kw)).astype(x.dtype, copy=False)[:, :, None, None, :, :],
            (n, c, kh, kw, out_h, out_w),
        )
        grad_input = col2im(grad_cols, x.shape, kernel, stride, padding)
        inputs._accumulate(grad_input, owned=True)

    out._backward = _backward
    return out


# --------------------------------------------------------------------------- #
# Softmax / losses
# --------------------------------------------------------------------------- #
def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    logits = ensure_tensor(logits)
    shift = logits.data.max(axis=axis, keepdims=True)
    shifted = logits - Tensor(shift, dtype=shift.dtype)
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    logits = ensure_tensor(logits)
    shift = logits.data.max(axis=axis, keepdims=True)
    shifted = logits - Tensor(shift, dtype=shift.dtype)
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def _validate_labels(labels: np.ndarray, num_classes: int) -> np.ndarray:
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must lie in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    return labels


def one_hot(labels: np.ndarray, num_classes: int, dtype=None,
            out: Optional[np.ndarray] = None) -> np.ndarray:
    """Convert integer labels of shape ``(N,)`` to a one-hot matrix ``(N, K)``.

    The encoding is a direct scatter — zero the destination, then write
    the label positions — rather than any row-gather of an identity
    matrix.  Passing ``out=`` scatters into that buffer (e.g. a
    workspace array) instead of allocating; otherwise the matrix is
    created in ``dtype`` (default: the global dtype policy) so that
    losses never up-cast float32 logits through a float64 mask.
    """
    labels = _validate_labels(labels, num_classes)
    if out is not None:
        if out.shape != (labels.shape[0], num_classes):
            raise ValueError(
                f"out has shape {out.shape}, expected {(labels.shape[0], num_classes)}"
            )
        encoded = out
        encoded.fill(0.0)
    else:
        encoded = np.zeros(
            (labels.shape[0], num_classes),
            dtype=dtype if dtype is not None else get_default_dtype(),
        )
    encoded[np.arange(labels.shape[0], dtype=np.intp), labels] = 1.0
    return encoded


def nll_loss(log_probs: Tensor, labels: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood of integer ``labels`` under ``log_probs``.

    In inference mode the one-hot mask scatters into a workspace buffer
    (nothing holds it after the op); in training mode the mask must stay
    alive for the multiply's backward closure, so it owns its storage.
    """
    log_probs = ensure_tensor(log_probs)
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    num_classes = log_probs.shape[-1]
    if is_grad_enabled() and log_probs.requires_grad:
        encoded = one_hot(labels, num_classes, dtype=log_probs.dtype)
    else:
        encoded = one_hot(
            labels, num_classes,
            out=workspace("nll_loss.one_hot", (labels.shape[0], num_classes),
                          log_probs.dtype),
        )
    mask = Tensor(encoded, dtype=encoded.dtype)
    per_sample = -(log_probs * mask).sum(axis=-1)
    return _reduce(per_sample, reduction)


def cross_entropy(logits: Tensor, labels: np.ndarray, reduction: str = "mean") -> Tensor:
    """Softmax cross-entropy between raw ``logits`` and integer ``labels``.

    The log-softmax is **fused into the loss**: one NumPy pass computes
    the shifted exponentials and per-sample losses, and the backward
    closure emits the classic ``(softmax - one_hot) * scale`` gradient
    directly — no separate softmax materialisation, no intermediate
    graph nodes.  Non-2-D logits fall back to the composed
    ``nll_loss(log_softmax(...))`` reference path.
    """
    logits = ensure_tensor(logits)
    if logits.ndim != 2:
        return nll_loss(log_softmax(logits, axis=-1), labels, reduction=reduction)
    x = logits.data
    num_samples, num_classes = x.shape
    labels = _validate_labels(labels, num_classes)
    if labels.shape[0] != num_samples:
        raise ValueError(
            f"batch mismatch: {num_samples} logit rows vs {labels.shape[0]} labels"
        )
    counters.add("cross_entropy_fused")
    requires = is_grad_enabled() and logits.requires_grad
    rows = np.arange(num_samples, dtype=np.intp)

    shift = x.max(axis=1, keepdims=True)
    if requires:
        # The backward closure reads the probabilities, so they own
        # their storage; inference scatters into a workspace instead.
        probs = np.empty_like(x)
    else:
        probs = workspace("cross_entropy.probs", x.shape, x.dtype)
    np.subtract(x, shift, out=probs)
    np.exp(probs, out=probs)
    sum_exp = probs.sum(axis=1, keepdims=True)                  # (N, 1)
    per_sample = np.log(sum_exp[:, 0]) - (x[rows, labels] - shift[:, 0])
    if requires:
        probs /= sum_exp                                        # softmax(x)

    if reduction == "none":
        out_data = per_sample
    elif reduction == "mean":
        out_data = np.asarray(per_sample.mean())
    elif reduction == "sum":
        out_data = np.asarray(per_sample.sum())
    else:
        raise ValueError(
            f"unknown reduction {reduction!r}; expected 'mean', 'sum' or 'none'"
        )
    out = Tensor(out_data, requires_grad=requires, dtype=out_data.dtype)
    if not requires:
        return out
    out._parents = (logits,)

    def _backward(grad: np.ndarray) -> None:
        if reduction == "none":
            scale = np.asarray(grad).reshape(num_samples, 1)
        elif reduction == "mean":
            scale = np.asarray(grad) / num_samples
        else:
            scale = np.asarray(grad)
        grad_logits = probs * scale
        if reduction == "none":
            grad_logits[rows, labels] -= scale[:, 0]
        else:
            grad_logits[rows, labels] -= scale
        logits._accumulate(grad_logits, owned=True)

    out._backward = _backward
    return out


def mse_loss(predictions: Tensor, targets: Tensor, reduction: str = "mean") -> Tensor:
    """Mean squared error between two tensors."""
    predictions = ensure_tensor(predictions)
    targets = ensure_tensor(targets)
    squared = (predictions - targets) * (predictions - targets)
    return _reduce(squared, reduction)


def _reduce(values: Tensor, reduction: str) -> Tensor:
    if reduction == "mean":
        return values.mean()
    if reduction == "sum":
        return values.sum()
    if reduction == "none":
        return values
    raise ValueError(f"unknown reduction {reduction!r}; expected 'mean', 'sum' or 'none'")
