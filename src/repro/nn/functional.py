"""Functional neural-network operations with custom gradients.

These functions complement the primitive operations on :class:`~repro.nn.tensor.Tensor`
with the structured operations needed by the paper's CNN (Fig. 3):
2-D convolution (via ``im2col``), max/average pooling, softmax,
log-softmax and the classification losses.

All functions accept and return :class:`Tensor` objects and register
their own backward closures, so they compose freely with the rest of the
autograd graph.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from .tensor import Tensor, ensure_tensor, is_grad_enabled

__all__ = [
    "im2col",
    "col2im",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "one_hot",
]

IntOrPair = Union[int, Tuple[int, int]]


def _pair(value: IntOrPair) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"expected a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    return (size + 2 * padding - kernel) // stride + 1


# --------------------------------------------------------------------------- #
# im2col / col2im
# --------------------------------------------------------------------------- #
def im2col(
    images: np.ndarray,
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Unfold image patches into columns.

    Parameters
    ----------
    images:
        Array of shape ``(N, C, H, W)``.

    Returns
    -------
    Array of shape ``(N, C, kh, kw, out_h, out_w)``.
    """
    n, c, h, w = images.shape
    kh, kw = kernel_size
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)

    padded = np.pad(images, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    cols = np.empty((n, c, kh, kw, out_h, out_w), dtype=images.dtype)
    for i in range(kh):
        i_end = i + sh * out_h
        for j in range(kw):
            j_end = j + sw * out_w
            cols[:, :, i, j, :, :] = padded[:, :, i:i_end:sh, j:j_end:sw]
    return cols


def col2im(
    cols: np.ndarray,
    image_shape: Tuple[int, int, int, int],
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Fold columns produced by :func:`im2col` back into images (adjoint op)."""
    n, c, h, w = image_shape
    kh, kw = kernel_size
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)

    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    for i in range(kh):
        i_end = i + sh * out_h
        for j in range(kw):
            j_end = j + sw * out_w
            padded[:, :, i:i_end:sh, j:j_end:sw] += cols[:, :, i, j, :, :]
    if ph == 0 and pw == 0:
        return padded
    return padded[:, :, ph:ph + h, pw:pw + w]


# --------------------------------------------------------------------------- #
# Convolution
# --------------------------------------------------------------------------- #
def conv2d(
    inputs: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: IntOrPair = 1,
    padding: IntOrPair = 0,
) -> Tensor:
    """2-D convolution over a mini-batch in NCHW layout.

    Parameters
    ----------
    inputs:
        Tensor of shape ``(N, C_in, H, W)``.
    weight:
        Tensor of shape ``(C_out, C_in, kh, kw)``.
    bias:
        Optional tensor of shape ``(C_out,)``.
    """
    inputs = ensure_tensor(inputs)
    weight = ensure_tensor(weight)
    stride = _pair(stride)
    padding = _pair(padding)

    x = inputs.data
    w = weight.data
    n, c_in, h, w_in = x.shape
    c_out, c_in_w, kh, kw = w.shape
    if c_in != c_in_w:
        raise ValueError(
            f"conv2d channel mismatch: input has {c_in} channels, weight expects {c_in_w}"
        )

    out_h = conv_output_size(h, kh, stride[0], padding[0])
    out_w = conv_output_size(w_in, kw, stride[1], padding[1])

    cols = im2col(x, (kh, kw), stride, padding)  # (N, C, kh, kw, oh, ow)
    cols_matrix = cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, -1)
    weight_matrix = w.reshape(c_out, -1)

    out_matrix = cols_matrix @ weight_matrix.T  # (N*oh*ow, C_out)
    out_data = out_matrix.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, -1, 1, 1)

    parents = (inputs, weight) if bias is None else (inputs, weight, bias)
    requires = is_grad_enabled() and any(p.requires_grad for p in parents)
    out = Tensor(out_data, requires_grad=requires, dtype=out_data.dtype)
    if not requires:
        return out
    out._parents = parents

    def _backward(grad: np.ndarray) -> None:
        grad_matrix = grad.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, c_out)
        if weight.requires_grad:
            grad_weight = (grad_matrix.T @ cols_matrix).reshape(w.shape)
            weight._accumulate(grad_weight)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if inputs.requires_grad:
            grad_cols_matrix = grad_matrix @ weight_matrix  # (N*oh*ow, C*kh*kw)
            grad_cols = grad_cols_matrix.reshape(n, out_h, out_w, c_in, kh, kw)
            grad_cols = grad_cols.transpose(0, 3, 4, 5, 1, 2)
            grad_input = col2im(grad_cols, x.shape, (kh, kw), stride, padding)
            inputs._accumulate(grad_input)

    out._backward = _backward
    return out


# --------------------------------------------------------------------------- #
# Pooling
# --------------------------------------------------------------------------- #
def max_pool2d(inputs: Tensor, kernel_size: IntOrPair = 2, stride: Optional[IntOrPair] = None,
               padding: IntOrPair = 0) -> Tensor:
    """Max pooling over spatial windows in NCHW layout.

    The paper's privacy argument (Fig. 4) hinges on this operation: the
    max-pooled first-block activations no longer reveal the raw image.
    """
    inputs = ensure_tensor(inputs)
    kernel = _pair(kernel_size)
    stride = _pair(stride) if stride is not None else kernel
    padding = _pair(padding)

    x = inputs.data
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride[0], padding[0])
    out_w = conv_output_size(w, kw, stride[1], padding[1])

    cols = im2col(x, kernel, stride, padding)  # (N, C, kh, kw, oh, ow)
    cols_flat = cols.reshape(n, c, kh * kw, out_h, out_w)
    argmax = cols_flat.argmax(axis=2)  # (N, C, oh, ow)
    out_data = np.take_along_axis(cols_flat, argmax[:, :, None, :, :], axis=2).squeeze(2)

    requires = is_grad_enabled() and inputs.requires_grad
    out = Tensor(out_data, requires_grad=requires, dtype=out_data.dtype)
    if not requires:
        return out
    out._parents = (inputs,)

    def _backward(grad: np.ndarray) -> None:
        grad_cols_flat = np.zeros_like(cols_flat)
        np.put_along_axis(grad_cols_flat, argmax[:, :, None, :, :], grad[:, :, None, :, :], axis=2)
        grad_cols = grad_cols_flat.reshape(n, c, kh, kw, out_h, out_w)
        grad_input = col2im(grad_cols, x.shape, kernel, stride, padding)
        inputs._accumulate(grad_input)

    out._backward = _backward
    return out


def avg_pool2d(inputs: Tensor, kernel_size: IntOrPair = 2, stride: Optional[IntOrPair] = None,
               padding: IntOrPair = 0) -> Tensor:
    """Average pooling over spatial windows in NCHW layout."""
    inputs = ensure_tensor(inputs)
    kernel = _pair(kernel_size)
    stride = _pair(stride) if stride is not None else kernel
    padding = _pair(padding)

    x = inputs.data
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride[0], padding[0])
    out_w = conv_output_size(w, kw, stride[1], padding[1])

    cols = im2col(x, kernel, stride, padding)
    out_data = cols.mean(axis=(2, 3))

    requires = is_grad_enabled() and inputs.requires_grad
    out = Tensor(out_data, requires_grad=requires, dtype=out_data.dtype)
    if not requires:
        return out
    out._parents = (inputs,)

    def _backward(grad: np.ndarray) -> None:
        grad_cols = np.broadcast_to(
            grad[:, :, None, None, :, :] / (kh * kw), (n, c, kh, kw, out_h, out_w)
        ).astype(x.dtype)
        grad_input = col2im(grad_cols, x.shape, kernel, stride, padding)
        inputs._accumulate(grad_input)

    out._backward = _backward
    return out


# --------------------------------------------------------------------------- #
# Softmax / losses
# --------------------------------------------------------------------------- #
def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    logits = ensure_tensor(logits)
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    logits = ensure_tensor(logits)
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Convert integer labels of shape ``(N,)`` to a one-hot matrix ``(N, K)``."""
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must lie in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], num_classes))
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def nll_loss(log_probs: Tensor, labels: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood of integer ``labels`` under ``log_probs``."""
    log_probs = ensure_tensor(log_probs)
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    num_classes = log_probs.shape[-1]
    mask = Tensor(one_hot(labels, num_classes))
    per_sample = -(log_probs * mask).sum(axis=-1)
    return _reduce(per_sample, reduction)


def cross_entropy(logits: Tensor, labels: np.ndarray, reduction: str = "mean") -> Tensor:
    """Softmax cross-entropy between raw ``logits`` and integer ``labels``."""
    return nll_loss(log_softmax(logits, axis=-1), labels, reduction=reduction)


def mse_loss(predictions: Tensor, targets: Tensor, reduction: str = "mean") -> Tensor:
    """Mean squared error between two tensors."""
    predictions = ensure_tensor(predictions)
    targets = ensure_tensor(targets)
    squared = (predictions - targets) * (predictions - targets)
    return _reduce(squared, reduction)


def _reduce(values: Tensor, reduction: str) -> Tensor:
    if reduction == "mean":
        return values.mean()
    if reduction == "sum":
        return values.sum()
    if reduction == "none":
        return values
    raise ValueError(f"unknown reduction {reduction!r}; expected 'mean', 'sum' or 'none'")
