"""Loss functions as modules.

The split-learning server computes the loss on its side of the cut; these
classes wrap the functional losses so that the server can be configured
with a loss object (``CrossEntropyLoss`` for the paper's CIFAR-10-style
classification, ``MSELoss`` for regression-style workloads).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from . import functional as F
from .layers.base import Module
from .tensor import Tensor, ensure_tensor

__all__ = ["Loss", "CrossEntropyLoss", "NLLLoss", "MSELoss", "L1Loss", "get_loss"]


class Loss(Module):
    """Base class for losses.

    Parameters
    ----------
    reduction:
        ``"mean"``, ``"sum"`` or ``"none"``.
    """

    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        if reduction not in {"mean", "sum", "none"}:
            raise ValueError(f"unknown reduction {reduction!r}")
        self.reduction = reduction

    def extra_repr(self) -> str:
        return f"reduction={self.reduction}"


class CrossEntropyLoss(Loss):
    """Softmax cross-entropy over raw logits and integer class labels."""

    def forward(self, logits: Tensor, labels: Union[np.ndarray, Tensor]) -> Tensor:
        labels = labels.data if isinstance(labels, Tensor) else np.asarray(labels)
        return F.cross_entropy(logits, labels, reduction=self.reduction)


class NLLLoss(Loss):
    """Negative log-likelihood over log-probabilities and integer labels."""

    def forward(self, log_probs: Tensor, labels: Union[np.ndarray, Tensor]) -> Tensor:
        labels = labels.data if isinstance(labels, Tensor) else np.asarray(labels)
        return F.nll_loss(log_probs, labels, reduction=self.reduction)


class MSELoss(Loss):
    """Mean squared error."""

    def forward(self, predictions: Tensor, targets: Union[np.ndarray, Tensor]) -> Tensor:
        return F.mse_loss(predictions, ensure_tensor(targets), reduction=self.reduction)


class L1Loss(Loss):
    """Mean absolute error."""

    def forward(self, predictions: Tensor, targets: Union[np.ndarray, Tensor]) -> Tensor:
        difference = (predictions - ensure_tensor(targets)).abs()
        return F._reduce(difference, self.reduction)


_LOSSES = {
    "cross_entropy": CrossEntropyLoss,
    "nll": NLLLoss,
    "mse": MSELoss,
    "l1": L1Loss,
}


def get_loss(name: str, reduction: str = "mean") -> Loss:
    """Instantiate a loss by name (``cross_entropy``, ``nll``, ``mse``, ``l1``)."""
    try:
        return _LOSSES[name](reduction=reduction)
    except KeyError:
        known = ", ".join(sorted(_LOSSES))
        raise KeyError(f"unknown loss {name!r}; known losses: {known}") from None
