"""Saving and loading model state.

State dictionaries are stored as ``.npz`` archives so that a trained
split configuration (end-system segments plus the server segment) can be
checkpointed and restored without pickling arbitrary objects.

Dtype policy: arrays are written with the dtype they carry in memory, and
:meth:`repro.nn.layers.base.Module.load_state_dict` casts restored values
to the dtype of the live parameters — so a checkpoint written under a
float64 precision run loads cleanly into a float32-policy model and vice
versa.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from .layers.base import Module

__all__ = ["save_state_dict", "load_state_dict", "save_module", "load_module", "parameter_summary"]

PathLike = Union[str, Path]

# np.savez cannot store keys containing '/' reliably across platforms and
# some of our qualified names contain '.' which is fine, but the 'buffer::'
# prefix needs escaping because ':' is legal; we keep keys verbatim and rely
# on an accompanying manifest to restore exact names.
_MANIFEST_KEY = "__manifest__"


def save_state_dict(state: Dict[str, np.ndarray], path: PathLike) -> Path:
    """Write a state dictionary to ``path`` as a compressed ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    keys = list(state.keys())
    arrays = {f"array_{index}": np.asarray(value) for index, value in enumerate(state.values())}
    manifest = json.dumps(keys)
    np.savez_compressed(path, **arrays, **{_MANIFEST_KEY: np.frombuffer(manifest.encode(), dtype=np.uint8)})
    return path


def load_state_dict(path: PathLike) -> Dict[str, np.ndarray]:
    """Read a state dictionary previously written by :func:`save_state_dict`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no checkpoint at {path}")
    with np.load(path) as archive:
        manifest_bytes = archive[_MANIFEST_KEY].tobytes()
        keys = json.loads(manifest_bytes.decode())
        return {key: archive[f"array_{index}"] for index, key in enumerate(keys)}


def save_module(module: Module, path: PathLike) -> Path:
    """Checkpoint a module's parameters and buffers."""
    return save_state_dict(module.state_dict(), path)


def load_module(module: Module, path: PathLike, strict: bool = True) -> Module:
    """Restore a module in place from a checkpoint written by :func:`save_module`."""
    module.load_state_dict(load_state_dict(path), strict=strict)
    return module


def parameter_summary(module: Module) -> str:
    """Human-readable table of parameter names, shapes and counts."""
    rows = []
    total = 0
    for name, parameter in module.named_parameters():
        count = parameter.size
        total += count
        rows.append(f"{name:<40s} {str(parameter.shape):<20s} {count:>12,d}")
    rows.append("-" * 74)
    rows.append(f"{'total':<40s} {'':<20s} {total:>12,d}")
    return "\n".join(rows)
