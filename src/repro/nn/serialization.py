"""Saving and loading model state.

State dictionaries are stored as ``.npz`` archives so that a trained
split configuration (end-system segments plus the server segment) can be
checkpointed and restored without pickling arbitrary objects.

Dtype policy: arrays are written with the dtype they carry in memory, and
:meth:`repro.nn.layers.base.Module.load_state_dict` casts restored values
to the dtype of the live parameters — so a checkpoint written under a
float64 precision run loads cleanly into a float32-policy model and vice
versa.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from .layers.base import Module
from .optim import Optimizer

__all__ = [
    "save_state_dict",
    "load_state_dict",
    "save_module",
    "load_module",
    "parameter_summary",
    "flatten_optimizer_state",
    "unflatten_optimizer_state",
    "save_optimizer",
    "load_optimizer",
    "pack_rng_state",
    "unpack_rng_state",
    "restore_rng_state",
]

PathLike = Union[str, Path]

# np.savez cannot store keys containing '/' reliably across platforms and
# some of our qualified names contain '.' which is fine, but the 'buffer::'
# prefix needs escaping because ':' is legal; we keep keys verbatim and rely
# on an accompanying manifest to restore exact names.
_MANIFEST_KEY = "__manifest__"


def save_state_dict(state: Dict[str, np.ndarray], path: PathLike) -> Path:
    """Write a state dictionary to ``path`` as a compressed ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    keys = list(state.keys())
    arrays = {f"array_{index}": np.asarray(value) for index, value in enumerate(state.values())}
    manifest = json.dumps(keys)
    # Write through an open handle so numpy honors the exact path — a bare
    # path argument gets ``.npz`` appended unless it already ends with it,
    # which would break temp-then-rename writers using ``*.tmp`` names.
    with open(path, "wb") as handle:
        np.savez_compressed(
            handle, **arrays,
            **{_MANIFEST_KEY: np.frombuffer(manifest.encode(), dtype=np.uint8)},
        )
    return path


def load_state_dict(path: PathLike) -> Dict[str, np.ndarray]:
    """Read a state dictionary previously written by :func:`save_state_dict`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no checkpoint at {path}")
    with np.load(path) as archive:
        manifest_bytes = archive[_MANIFEST_KEY].tobytes()
        keys = json.loads(manifest_bytes.decode())
        return {key: archive[f"array_{index}"] for index, key in enumerate(keys)}


def save_module(module: Module, path: PathLike) -> Path:
    """Checkpoint a module's parameters and buffers."""
    return save_state_dict(module.state_dict(), path)


def load_module(module: Module, path: PathLike, strict: bool = True) -> Module:
    """Restore a module in place from a checkpoint written by :func:`save_module`."""
    module.load_state_dict(load_state_dict(path), strict=strict)
    return module


# --------------------------------------------------------------------------- #
# Optimizer state and RNG streams through the same npz path
# --------------------------------------------------------------------------- #
# An optimizer state dict is nested ({"lr", "step_count", "slots": {name:
# [array-or-None, ...]}}) and a NumPy Generator's position is a JSON-able
# dict of (arbitrarily large) integers; neither fits the flat
# str->ndarray shape save_state_dict expects.  The flatteners below map
# both onto flat keys — slot buffers as "slot::{name}::{index}" arrays,
# everything non-array as a JSON blob stored the same way the manifest
# is (uint8 bytes) — so checkpoints reuse one archive format end to end.

_OPTIMIZER_META_KEY = "__optimizer__"


def _json_to_array(value: object) -> np.ndarray:
    return np.frombuffer(json.dumps(value).encode(), dtype=np.uint8)


def _array_to_json(array: np.ndarray) -> object:
    return json.loads(np.asarray(array, dtype=np.uint8).tobytes().decode())


def flatten_optimizer_state(state: Dict[str, object]) -> Dict[str, np.ndarray]:
    """Map a nested optimizer state dict onto flat ``str -> ndarray`` keys.

    ``None`` slot entries are simply absent from the flat view; the JSON
    meta blob records each slot's length so :func:`unflatten_optimizer_state`
    can put the holes back.
    """
    slots: Dict[str, list] = state.get("slots", {}) or {}
    meta = {
        "lr": float(state["lr"]),
        "step_count": int(state["step_count"]),
        "slot_lengths": {name: len(entries) for name, entries in slots.items()},
    }
    flat: Dict[str, np.ndarray] = {_OPTIMIZER_META_KEY: _json_to_array(meta)}
    for name, entries in slots.items():
        for index, entry in enumerate(entries):
            if entry is not None:
                flat[f"slot::{name}::{index}"] = np.asarray(entry)
    return flat


def unflatten_optimizer_state(flat: Dict[str, np.ndarray]) -> Dict[str, object]:
    """Inverse of :func:`flatten_optimizer_state`."""
    meta = _array_to_json(flat[_OPTIMIZER_META_KEY])
    slots: Dict[str, list] = {}
    for name, length in meta["slot_lengths"].items():
        slots[name] = [flat.get(f"slot::{name}::{index}") for index in range(length)]
    return {"lr": meta["lr"], "step_count": meta["step_count"], "slots": slots}


def save_optimizer(optimizer: Union[Optimizer, Dict[str, object]], path: PathLike) -> Path:
    """Checkpoint an optimizer (or a state dict it produced) as an npz archive."""
    state = optimizer.state_dict() if isinstance(optimizer, Optimizer) else optimizer
    return save_state_dict(flatten_optimizer_state(state), path)


def load_optimizer(optimizer: Optimizer, path: PathLike, strict: bool = True) -> Optimizer:
    """Restore an optimizer in place from :func:`save_optimizer` output.

    Dtype handling matches module checkpoints: the optimizer's
    ``load_state_dict`` casts every restored slot buffer to its live
    parameter's dtype, so cross-precision restores work both ways.
    """
    state = unflatten_optimizer_state(load_state_dict(path))
    optimizer.load_state_dict(state, strict=strict)
    return optimizer


def pack_rng_state(rng: Union[np.random.Generator, Dict[str, object]]) -> np.ndarray:
    """Capture a NumPy generator's exact stream position as a uint8 array.

    The bit-generator state is a JSON-able dict (PCG64 carries 128-bit
    integers, which Python's JSON handles natively), stored as bytes the
    same way the archive manifest is — so RNG streams ride the npz path
    alongside weights.
    """
    state = rng.bit_generator.state if isinstance(rng, np.random.Generator) else rng
    return _json_to_array(state)


def unpack_rng_state(array: np.ndarray) -> Dict[str, object]:
    """Decode :func:`pack_rng_state` output back into a bit-generator state dict."""
    return _array_to_json(array)


def restore_rng_state(rng: np.random.Generator, packed: Optional[np.ndarray]) -> np.random.Generator:
    """Rewind ``rng`` to a captured stream position (no-op on ``None``)."""
    if packed is not None:
        rng.bit_generator.state = unpack_rng_state(packed)
    return rng


def parameter_summary(module: Module) -> str:
    """Human-readable table of parameter names, shapes and counts."""
    rows = []
    total = 0
    for name, parameter in module.named_parameters():
        count = parameter.size
        total += count
        rows.append(f"{name:<40s} {str(parameter.shape):<20s} {count:>12,d}")
    rows.append("-" * 74)
    rows.append(f"{'total':<40s} {'':<20s} {total:>12,d}")
    return "\n".join(rows)
