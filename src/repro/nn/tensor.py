"""Reverse-mode automatic differentiation over NumPy arrays.

This module implements the :class:`Tensor` class, a thin wrapper around a
``numpy.ndarray`` that records the computation graph as operations are
applied and can back-propagate gradients through it with
:meth:`Tensor.backward`.

The design follows the usual define-by-run autograd recipe:

* every operation produces a new :class:`Tensor` whose ``_parents`` point at
  the operand tensors and whose ``_backward`` closure knows how to push the
  output gradient back onto the parents;
* :meth:`Tensor.backward` topologically sorts the graph reachable from the
  output and runs the closures in reverse order, accumulating into
  ``Tensor.grad``;
* broadcasting is handled by :func:`unbroadcast`, which sums gradients over
  the broadcast dimensions so that a parent's gradient always has the
  parent's shape.

Only the operations needed by the split-learning stack (dense layers,
convolutions, pooling, activations, losses) are implemented, but the set is
general enough to express arbitrary feed-forward networks.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from .dtype import get_default_dtype

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "unbroadcast", "ensure_tensor"]

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

# Global autograd switch, toggled by the ``no_grad`` context manager.
_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables gradient tracking.

    Used during evaluation and when an end-system's activations must be
    detached before being shipped to the centralized server (the server
    never sees the client-side graph).

    Example
    -------
    >>> with no_grad():
    ...     y = model(x)
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def is_grad_enabled() -> bool:
    """Return ``True`` when operations record the autograd graph."""
    return _GRAD_ENABLED


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    NumPy broadcasting may have expanded a parent of shape ``shape`` to the
    output shape; the gradient flowing back must be summed over every axis
    that was broadcast.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def ensure_tensor(value: ArrayLike) -> "Tensor":
    """Coerce ``value`` into a :class:`Tensor` (no copy if already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    array = np.asarray(value, dtype=dtype if dtype is not None else get_default_dtype())
    return array


class Tensor:
    """A NumPy-backed tensor with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts.  When ``dtype`` is ``None``
        (the default) the array is coerced to the global dtype policy
        (:func:`repro.nn.dtype.get_default_dtype`, float32 out of the
        box); pass an explicit dtype to opt out.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        dtype=None,
        name: Optional[str] = None,
    ) -> None:
        self.data: np.ndarray = _as_array(data, dtype=dtype)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a scalar tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph.

        This is exactly the operation an end-system performs before
        shipping smashed activations to the server: the server receives a
        leaf tensor and never observes the client-side graph.
        """
        return Tensor(self.data, requires_grad=False, dtype=self.data.dtype)

    def clone(self) -> "Tensor":
        """Return a copy that participates in the graph (identity op)."""
        out = self._make_output(self.data.copy(), (self,))

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad)

        if out.requires_grad:
            out._backward = _backward
        return out

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    def _make_output(self, data: np.ndarray, parents: Tuple["Tensor", ...]) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, dtype=data.dtype)
        if requires:
            out._parents = parents
        return out

    def _accumulate(self, grad: np.ndarray, owned: bool = False) -> None:
        """Add ``grad`` into :attr:`grad`.

        ``owned=True`` is a backward-closure fast path: it asserts that
        ``grad`` is a freshly allocated array no one else references, so
        on first accumulation it can be stored directly instead of
        copied, and subsequent accumulations can run in place.  Closures
        that hand the *same* array to several parents (e.g. ``__add__``)
        must keep the default ``owned=False``.
        """
        if not self.requires_grad:
            return
        if not isinstance(grad, np.ndarray) or grad.dtype != self.data.dtype:
            converted = np.asarray(grad, dtype=self.data.dtype)
            owned = owned or converted is not grad
            grad = converted
        if grad.shape != self.data.shape:
            grad = unbroadcast(grad, self.data.shape)
            owned = True  # unbroadcast reduced/reshaped into a new array
        if self.grad is None:
            self.grad = grad if owned and grad.flags.writeable else grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ``1.0`` for scalar outputs (the usual loss case).
            In split learning the server passes the gradient of the loss
            with respect to the smashed activations back to the
            end-system, which calls ``activation.backward(grad)`` here.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient is only valid "
                    f"for scalar tensors, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = _as_array(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).astype(self.data.dtype)

        self._accumulate(grad)

        # Nodes are visited children-before-parents, so by the time a node
        # is processed its ``grad`` holds the sum of every downstream path.
        for node in self._topological_order():
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def _topological_order(self) -> list:
        """Return nodes reachable from ``self`` in reverse topological order."""
        visited: set[int] = set()
        order: list[Tensor] = []

        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        order.reverse()
        return order

    # ------------------------------------------------------------------ #
    # Arithmetic ops
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = ensure_tensor(other)
        out = self._make_output(self.data + other.data, (self, other))

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        if out.requires_grad:
            out._backward = _backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = self._make_output(-self.data, (self,))

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(-grad, owned=True)

        if out.requires_grad:
            out._backward = _backward
        return out

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = ensure_tensor(other)
        out = self._make_output(self.data - other.data, (self, other))

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(-grad)

        if out.requires_grad:
            out._backward = _backward
        return out

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return ensure_tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = ensure_tensor(other)
        out = self._make_output(self.data * other.data, (self, other))

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data, owned=True)
            other._accumulate(grad * self.data, owned=True)

        if out.requires_grad:
            out._backward = _backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = ensure_tensor(other)
        out = self._make_output(self.data / other.data, (self, other))

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data, owned=True)
            other._accumulate(-grad * self.data / (other.data ** 2), owned=True)

        if out.requires_grad:
            out._backward = _backward
        return out

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return ensure_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out = self._make_output(self.data ** exponent, (self,))

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1), owned=True)

        if out.requires_grad:
            out._backward = _backward
        return out

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: ArrayLike) -> "Tensor":
        """Matrix product (via the active compute backend)."""
        from ..backend import get_backend

        other = ensure_tensor(other)
        backend = get_backend()
        out = self._make_output(backend.gemm(self.data, other.data), (self, other))

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(
                    backend.gemm(grad, np.swapaxes(other.data, -1, -2)), owned=True
                )
            if other.requires_grad:
                other._accumulate(
                    backend.gemm(np.swapaxes(self.data, -1, -2), grad), owned=True
                )

        if out.requires_grad:
            out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        out = self._make_output(np.asarray(out_data), (self,))

        def _backward(grad: np.ndarray) -> None:
            grad_expanded = _expand_reduction_grad(grad, self.data.shape, axis, keepdims)
            self._accumulate(grad_expanded)

        if out.requires_grad:
            out._backward = _backward
        return out

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.mean(axis=axis, keepdims=keepdims)
        out = self._make_output(np.asarray(out_data), (self,))
        count = self.data.size if axis is None else _axis_count(self.data.shape, axis)

        def _backward(grad: np.ndarray) -> None:
            grad_expanded = _expand_reduction_grad(grad, self.data.shape, axis, keepdims)
            self._accumulate(grad_expanded / count, owned=True)

        if out.requires_grad:
            out._backward = _backward
        return out

    def var(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        """Biased (population) variance, matching BatchNorm's convention."""
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        squared = centered * centered
        return squared.mean(axis=axis, keepdims=keepdims)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = self._make_output(np.asarray(out_data), (self,))

        def _backward(grad: np.ndarray) -> None:
            grad_expanded = _expand_reduction_grad(grad, self.data.shape, axis, keepdims)
            max_expanded = _expand_reduction_values(out.data, self.data.shape, axis, keepdims)
            mask = (self.data == max_expanded).astype(self.data.dtype)
            # Split ties evenly so the gradient check stays exact.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(grad_expanded * mask / counts, owned=True)

        if out.requires_grad:
            out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # Elementwise nonlinearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        out = self._make_output(out_data, (self,))

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data, owned=True)

        if out.requires_grad:
            out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out = self._make_output(np.log(self.data), (self,))

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data, owned=True)

        if out.requires_grad:
            out._backward = _backward
        return out

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)
        out = self._make_output(out_data, (self,))

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / out_data, owned=True)

        if out.requires_grad:
            out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        from ..backend import get_backend
        from ..utils.perf import workspace

        # One clamping pass via the backend; the winner mask is
        # recovered in backward from the output (out > 0 iff data > 0).
        out_data = get_backend().elementwise("relu", self.data)
        out = self._make_output(out_data, (self,))

        def _backward(grad: np.ndarray) -> None:
            mask = workspace("relu.mask", out_data.shape, np.bool_)
            np.greater(out_data, 0, out=mask)
            self._accumulate(grad * mask, owned=True)

        if out.requires_grad:
            out._backward = _backward
        return out

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, negative_slope * self.data)
        out = self._make_output(out_data, (self,))

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.where(mask, 1.0, negative_slope), owned=True)

        if out.requires_grad:
            out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        out = self._make_output(out_data, (self,))

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data), owned=True)

        if out.requires_grad:
            out._backward = _backward
        return out

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        out = self._make_output(out_data, (self,))

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2), owned=True)

        if out.requires_grad:
            out._backward = _backward
        return out

    def clip(self, minimum: Optional[float] = None, maximum: Optional[float] = None) -> "Tensor":
        out_data = np.clip(self.data, minimum, maximum)
        out = self._make_output(out_data, (self,))
        mask = np.ones_like(self.data)
        if minimum is not None:
            mask = mask * (self.data >= minimum)
        if maximum is not None:
            mask = mask * (self.data <= maximum)

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask, owned=True)

        if out.requires_grad:
            out._backward = _backward
        return out

    def abs(self) -> "Tensor":
        out = self._make_output(np.abs(self.data), (self,))
        sign = np.sign(self.data)

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign, owned=True)

        if out.requires_grad:
            out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original_shape = self.data.shape
        out = self._make_output(self.data.reshape(shape), (self,))

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original_shape))

        if out.requires_grad:
            out._backward = _backward
        return out

    def flatten_batch(self) -> "Tensor":
        """Flatten every dimension after the batch dimension."""
        batch = self.data.shape[0]
        return self.reshape(batch, -1)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)
        out = self._make_output(self.data.transpose(axes), (self,))

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        if out.requires_grad:
            out._backward = _backward
        return out

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out = self._make_output(self.data[index], (self,))

        def _backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full, owned=True)

        if out.requires_grad:
            out._backward = _backward
        return out

    def pad(self, pad_width: Sequence[Tuple[int, int]]) -> "Tensor":
        """Zero-pad the tensor; ``pad_width`` follows ``numpy.pad`` syntax."""
        pad_width = tuple(tuple(p) for p in pad_width)
        out = self._make_output(np.pad(self.data, pad_width), (self,))
        slices = tuple(
            slice(before, before + dim) for (before, _), dim in zip(pad_width, self.data.shape)
        )

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad[slices])

        if out.requires_grad:
            out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # Comparisons (no gradient; return plain arrays)
    # ------------------------------------------------------------------ #
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False, dtype=None) -> "Tensor":
        dtype = dtype if dtype is not None else get_default_dtype()
        return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad, dtype=dtype)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False, dtype=None) -> "Tensor":
        dtype = dtype if dtype is not None else get_default_dtype()
        return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad, dtype=dtype)

    @staticmethod
    def randn(*shape: int, rng: Optional[np.random.Generator] = None,
              requires_grad: bool = False, dtype=None) -> "Tensor":
        rng = rng or np.random.default_rng()  # repro-lint: ignore[RL002] -- seeded-rng callers are the simulated path; bare default is interactive convenience
        dtype = dtype if dtype is not None else get_default_dtype()
        return Tensor(rng.standard_normal(shape).astype(dtype), requires_grad=requires_grad, dtype=dtype)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        """Stack tensors along a new axis with gradient support."""
        tensors = list(tensors)
        data = np.stack([t.data for t in tensors], axis=axis)
        requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
        out = Tensor(data, requires_grad=requires, dtype=data.dtype)
        if not requires:
            return out
        out._parents = tuple(tensors)

        def _backward(grad: np.ndarray) -> None:
            pieces = np.split(grad, len(tensors), axis=axis)
            for tensor, piece in zip(tensors, pieces):
                tensor._accumulate(np.squeeze(piece, axis=axis))

        if out.requires_grad:
            out._backward = _backward
        return out

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        """Concatenate tensors along an existing axis with gradient support.

        This is the server-side operation that merges smashed activations
        arriving from multiple end-systems into one training batch.
        """
        tensors = list(tensors)
        data = np.concatenate([t.data for t in tensors], axis=axis)
        requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
        out = Tensor(data, requires_grad=requires, dtype=data.dtype)
        if not requires:
            return out
        out._parents = tuple(tensors)
        sizes = [t.data.shape[axis] for t in tensors]
        boundaries = np.cumsum(sizes)[:-1]

        def _backward(grad: np.ndarray) -> None:
            pieces = np.split(grad, boundaries, axis=axis)
            for tensor, piece in zip(tensors, pieces):
                tensor._accumulate(piece)

        if out.requires_grad:
            out._backward = _backward
        return out


def _axis_count(shape: Tuple[int, ...], axis: Union[int, Tuple[int, ...]]) -> int:
    if isinstance(axis, int):
        axis = (axis,)
    count = 1
    for ax in axis:
        count *= shape[ax]
    return count


def _expand_reduction_grad(
    grad: np.ndarray,
    original_shape: Tuple[int, ...],
    axis: Optional[Union[int, Tuple[int, ...]]],
    keepdims: bool,
) -> np.ndarray:
    """Broadcast the gradient of a reduction back to the operand's shape.

    Returns a read-only broadcast *view* — consumers either combine it
    into a fresh array (mean/max backwards) or let ``_accumulate`` copy
    it (sum backward), so no eager copy is needed here.
    """
    grad = np.asarray(grad)
    if axis is None:
        return np.broadcast_to(grad, original_shape)
    axes = (axis,) if isinstance(axis, int) else tuple(axis)
    axes = tuple(a % len(original_shape) for a in axes)
    if not keepdims:
        for ax in sorted(axes):
            grad = np.expand_dims(grad, ax)
    return np.broadcast_to(grad, original_shape)


def _expand_reduction_values(
    values: np.ndarray,
    original_shape: Tuple[int, ...],
    axis: Optional[Union[int, Tuple[int, ...]]],
    keepdims: bool,
) -> np.ndarray:
    return _expand_reduction_grad(values, original_shape, axis, keepdims)
