"""2-D convolution layer (NCHW layout)."""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from .. import functional as F
from .. import init as initializers
from ..dtype import get_default_dtype
from ..tensor import Tensor
from .base import Module, Parameter

__all__ = ["Conv2D"]

IntOrPair = Union[int, Tuple[int, int]]


class Conv2D(Module):
    """2-D convolution over mini-batches of images.

    This is the ``Conv2D`` block of the paper's Fig.-3 CNN.  With
    ``padding="same"`` and ``stride=1`` the spatial size is preserved,
    matching the Keras-style architecture the paper describes (each block's
    spatial reduction comes from the following MaxPooling2D layer).

    Parameters
    ----------
    in_channels / out_channels:
        Channel counts; the paper uses 3→16→32→64→128→256.
    kernel_size:
        Spatial kernel size (default 3).
    stride:
        Convolution stride (default 1).
    padding:
        Integer padding, or ``"same"`` to preserve spatial size for odd
        kernels with stride 1, or ``"valid"`` for no padding.
    activation:
        Optional fused epilogue (``"relu"``).  Equivalent to following
        the layer with ``ReLU()``, but in inference mode the clamp is
        applied inside the backend's GEMM epilogue while each output
        tile is cache-hot instead of as a separate pass.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: IntOrPair = 3,
        stride: IntOrPair = 1,
        padding: Union[int, Tuple[int, int], str] = "same",
        bias: bool = True,
        weight_init: str = "he_normal",
        activation: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("channel counts must be positive")
        if activation not in (None, "relu"):
            raise ValueError(f"activation must be 'relu' or None, got {activation!r}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = F._pair(kernel_size)
        self.stride = F._pair(stride)
        self.padding = self._resolve_padding(padding)
        self.activation = activation

        weight_fn = initializers.get_initializer(weight_init)
        weight_shape = (out_channels, in_channels, *self.kernel_size)
        self.weight = Parameter(weight_fn(weight_shape, rng), name="weight")
        if bias:
            self.bias: Optional[Parameter] = Parameter(
                np.zeros(out_channels, dtype=get_default_dtype()), name="bias"
            )
        else:
            self.bias = None

    def _resolve_padding(self, padding: Union[int, Tuple[int, int], str]) -> Tuple[int, int]:
        if isinstance(padding, str):
            mode = padding.lower()
            if mode == "same":
                if self.stride != (1, 1):
                    raise ValueError("padding='same' requires stride=1")
                kh, kw = self.kernel_size
                if kh % 2 == 0 or kw % 2 == 0:
                    raise ValueError("padding='same' requires odd kernel sizes")
                return kh // 2, kw // 2
            if mode == "valid":
                return 0, 0
            raise ValueError(f"unknown padding mode {padding!r}")
        return F._pair(padding)

    def forward(self, inputs: Tensor) -> Tensor:
        if inputs.ndim != 4:
            raise ValueError(
                f"Conv2D expects 4-D input (N, C, H, W), got shape {inputs.shape}"
            )
        if inputs.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2D expects {self.in_channels} input channels, got {inputs.shape[1]}"
            )
        return F.conv2d(inputs, self.weight, self.bias, stride=self.stride,
                        padding=self.padding, activation=self.activation)

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        """Return the ``(C, H, W)`` output shape for a ``(C, H, W)`` input."""
        _, h, w = input_shape
        out_h = F.conv_output_size(h, self.kernel_size[0], self.stride[0], self.padding[0])
        out_w = F.conv_output_size(w, self.kernel_size[1], self.stride[1], self.padding[1])
        return self.out_channels, out_h, out_w

    def extra_repr(self) -> str:
        base = (
            f"in_channels={self.in_channels}, out_channels={self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding}"
        )
        if self.activation is not None:
            base += f", activation={self.activation!r}"
        return base
