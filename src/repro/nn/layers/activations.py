"""Activation layers."""

from __future__ import annotations

from .. import functional as F
from ..tensor import Tensor
from .base import Module

__all__ = ["ReLU", "LeakyReLU", "Sigmoid", "Tanh", "Softmax"]


class ReLU(Module):
    """Rectified linear unit, ``max(x, 0)``."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.relu()


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        if negative_slope < 0:
            raise ValueError("negative_slope must be non-negative")
        self.negative_slope = negative_slope

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.leaky_relu(self.negative_slope)

    def extra_repr(self) -> str:
        return f"negative_slope={self.negative_slope}"


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.sigmoid()


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.tanh()


class Softmax(Module):
    """Softmax along a configurable axis (default: last)."""

    def __init__(self, axis: int = -1) -> None:
        super().__init__()
        self.axis = axis

    def forward(self, inputs: Tensor) -> Tensor:
        return F.softmax(inputs, axis=self.axis)

    def extra_repr(self) -> str:
        return f"axis={self.axis}"
