"""Shape-manipulation layers."""

from __future__ import annotations

from typing import Tuple

from ..tensor import Tensor
from .base import Module

__all__ = ["Flatten", "Reshape"]


class Flatten(Module):
    """Flatten all dimensions after the batch dimension.

    Sits between the last MaxPooling2D block and the first Dense layer of
    the paper's CNN.
    """

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.flatten_batch()


class Reshape(Module):
    """Reshape each sample to ``target_shape`` (batch dimension preserved)."""

    def __init__(self, target_shape: Tuple[int, ...]) -> None:
        super().__init__()
        self.target_shape = tuple(int(dim) for dim in target_shape)

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.reshape(inputs.shape[0], *self.target_shape)

    def extra_repr(self) -> str:
        return f"target_shape={self.target_shape}"
