"""Container modules: Sequential composition and named slicing.

Split learning is, at its heart, *slicing a Sequential model in two*: the
end-system keeps ``model[:cut]`` and the centralized server keeps
``model[cut:]``.  :class:`Sequential` therefore supports integer indexing,
slicing (returning a new ``Sequential`` that shares the same parameter
objects) and layer-name lookup, which :mod:`repro.core.split` builds on.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from ..tensor import Tensor
from .base import Module

__all__ = ["Sequential"]


class Sequential(Module):
    """Chain of modules applied in order.

    Parameters
    ----------
    layers:
        Either a sequence of modules, or a sequence of ``(name, module)``
        pairs when stable layer names are needed (the Fig.-3 CNN builder
        names its blocks ``L1_conv``, ``L1_pool``, ... so that split points
        can be expressed as "everything up to and including ``L2_pool``").
    """

    def __init__(self, layers: Sequence[Union[Module, Tuple[str, Module]]] = ()) -> None:
        super().__init__()
        self._layer_names: List[str] = []
        for index, item in enumerate(layers):
            if isinstance(item, tuple):
                name, module = item
            else:
                name, module = f"layer{index}", item
            self.append(module, name=name)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def append(self, module: Module, name: Optional[str] = None) -> "Sequential":
        """Append a module, optionally under an explicit name."""
        if not isinstance(module, Module):
            raise TypeError(f"expected Module, got {type(module).__name__}")
        name = name if name is not None else f"layer{len(self._layer_names)}"
        if name in self._modules:
            raise ValueError(f"duplicate layer name {name!r}")
        self._layer_names.append(name)
        self.register_module(name, module)
        return self

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def layer_names(self) -> List[str]:
        """Names of the layers in application order."""
        return list(self._layer_names)

    def __len__(self) -> int:
        return len(self._layer_names)

    def __iter__(self) -> Iterator[Module]:
        for name in self._layer_names:
            yield self._modules[name]

    def named_layers(self) -> Iterator[Tuple[str, Module]]:
        """Yield ``(name, module)`` pairs in application order."""
        for name in self._layer_names:
            yield name, self._modules[name]

    def index_of(self, name: str) -> int:
        """Return the position of the layer called ``name``.

        Raises
        ------
        KeyError
            If no layer has that name.
        """
        try:
            return self._layer_names.index(name)
        except ValueError:
            raise KeyError(
                f"no layer named {name!r}; available layers: {self._layer_names}"
            ) from None

    def __getitem__(self, index: Union[int, slice, str]) -> Union[Module, "Sequential"]:
        if isinstance(index, str):
            return self._modules[index]
        if isinstance(index, slice):
            names = self._layer_names[index]
            return Sequential([(name, self._modules[name]) for name in names])
        return self._modules[self._layer_names[index]]

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs
        for name in self._layer_names:
            output = self._modules[name](output)
        return output

    def forward_collect(self, inputs: Tensor) -> "OrderedDict[str, Tensor]":
        """Run the forward pass and return every intermediate activation.

        Used by the privacy analysis (Fig. 4) to capture the activation
        after each named layer without re-running the network.
        """
        activations: "OrderedDict[str, Tensor]" = OrderedDict()
        output = inputs
        for name in self._layer_names:
            output = self._modules[name](output)
            activations[name] = output
        return activations

    def split_at(self, cut: Union[int, str]) -> Tuple["Sequential", "Sequential"]:
        """Split into ``(head, tail)`` sub-models sharing parameters.

        Parameters
        ----------
        cut:
            Either an integer index (number of layers in the head) or a
            layer name; when a name is given the head contains every layer
            up to *and including* that layer.
        """
        if isinstance(cut, str):
            cut_index = self.index_of(cut) + 1
        else:
            cut_index = int(cut)
        if not 0 <= cut_index <= len(self):
            raise ValueError(
                f"cut index {cut_index} out of range for a {len(self)}-layer model"
            )
        return self[:cut_index], self[cut_index:]
