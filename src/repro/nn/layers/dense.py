"""Fully-connected (dense) layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import functional as F
from .. import init as initializers
from ..dtype import get_default_dtype
from ..tensor import Tensor
from .base import Module, Parameter

__all__ = ["Dense"]


class Dense(Module):
    """Affine transformation ``y = x @ W + b``.

    The paper's CNN ends in two dense layers (512 units and a 10-unit
    output layer); both live on the centralized server for every split
    configuration evaluated in Table I.

    Parameters
    ----------
    in_features:
        Size of the input feature dimension.
    out_features:
        Size of the output feature dimension.
    bias:
        Whether to learn an additive bias (default ``True``).
    weight_init:
        Name of an initializer from :mod:`repro.nn.init`.
    rng:
        Optional NumPy generator for reproducible initialization.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        weight_init: str = "he_normal",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"Dense dimensions must be positive, got {in_features}x{out_features}"
            )
        self.in_features = in_features
        self.out_features = out_features
        weight_fn = initializers.get_initializer(weight_init)
        self.weight = Parameter(weight_fn((in_features, out_features), rng), name="weight")
        if bias:
            self.bias: Optional[Parameter] = Parameter(
                np.zeros(out_features, dtype=get_default_dtype()), name="bias"
            )
        else:
            self.bias = None

    def forward(self, inputs: Tensor) -> Tensor:
        if inputs.ndim != 2:
            raise ValueError(
                f"Dense expects 2-D input (batch, features), got shape {inputs.shape}"
            )
        if inputs.shape[1] != self.in_features:
            raise ValueError(
                f"Dense expects {self.in_features} input features, got {inputs.shape[1]}"
            )
        # One fused affine node: the bias rides the GEMM epilogue of the
        # active backend instead of a separate broadcast-add node.
        return F.linear(inputs, self.weight, self.bias)

    def extra_repr(self) -> str:
        return f"in_features={self.in_features}, out_features={self.out_features}, bias={self.bias is not None}"
