"""Neural-network layers for the NumPy substrate."""

from .activations import LeakyReLU, ReLU, Sigmoid, Softmax, Tanh
from .base import Module, Parameter
from .container import Sequential
from .conv import Conv2D
from .dense import Dense
from .pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from .regularization import BatchNorm1D, BatchNorm2D, Dropout
from .reshape import Flatten, Reshape

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "Dropout",
    "BatchNorm1D",
    "BatchNorm2D",
    "Flatten",
    "Reshape",
]
