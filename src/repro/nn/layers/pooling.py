"""Spatial pooling layers (NCHW layout)."""

from __future__ import annotations

from typing import Optional, Tuple, Union

from .. import functional as F
from ..tensor import Tensor
from .base import Module

__all__ = ["MaxPool2D", "AvgPool2D", "GlobalAvgPool2D"]

IntOrPair = Union[int, Tuple[int, int]]


class MaxPool2D(Module):
    """Max pooling; the ``MaxPooling2D`` block of the paper's Fig.-3 CNN.

    Beyond its usual role of spatial down-sampling, the paper's privacy
    argument (Fig. 4) rests on this layer: the max-pooled output of the
    first block no longer exposes the raw training image, so shipping it to
    the centralized server preserves data privacy.
    """

    def __init__(self, kernel_size: IntOrPair = 2, stride: Optional[IntOrPair] = None,
                 padding: IntOrPair = 0) -> None:
        super().__init__()
        self.kernel_size = F._pair(kernel_size)
        self.stride = F._pair(stride) if stride is not None else self.kernel_size
        self.padding = F._pair(padding)

    def forward(self, inputs: Tensor) -> Tensor:
        if inputs.ndim != 4:
            raise ValueError(
                f"MaxPool2D expects 4-D input (N, C, H, W), got shape {inputs.shape}"
            )
        return F.max_pool2d(inputs, self.kernel_size, self.stride, self.padding)

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        """Return the ``(C, H, W)`` output shape for a ``(C, H, W)`` input."""
        c, h, w = input_shape
        out_h = F.conv_output_size(h, self.kernel_size[0], self.stride[0], self.padding[0])
        out_w = F.conv_output_size(w, self.kernel_size[1], self.stride[1], self.padding[1])
        return c, out_h, out_w

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding}"


class AvgPool2D(Module):
    """Average pooling over spatial windows."""

    def __init__(self, kernel_size: IntOrPair = 2, stride: Optional[IntOrPair] = None,
                 padding: IntOrPair = 0) -> None:
        super().__init__()
        self.kernel_size = F._pair(kernel_size)
        self.stride = F._pair(stride) if stride is not None else self.kernel_size
        self.padding = F._pair(padding)

    def forward(self, inputs: Tensor) -> Tensor:
        if inputs.ndim != 4:
            raise ValueError(
                f"AvgPool2D expects 4-D input (N, C, H, W), got shape {inputs.shape}"
            )
        return F.avg_pool2d(inputs, self.kernel_size, self.stride, self.padding)

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        """Return the ``(C, H, W)`` output shape for a ``(C, H, W)`` input."""
        c, h, w = input_shape
        out_h = F.conv_output_size(h, self.kernel_size[0], self.stride[0], self.padding[0])
        out_w = F.conv_output_size(w, self.kernel_size[1], self.stride[1], self.padding[1])
        return c, out_h, out_w

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding}"


class GlobalAvgPool2D(Module):
    """Average over all spatial positions, producing a ``(N, C)`` tensor."""

    def forward(self, inputs: Tensor) -> Tensor:
        if inputs.ndim != 4:
            raise ValueError(
                f"GlobalAvgPool2D expects 4-D input (N, C, H, W), got shape {inputs.shape}"
            )
        return inputs.mean(axis=(2, 3))
