"""Regularization layers: dropout and batch normalization."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..dtype import get_default_dtype
from ..tensor import Tensor
from .base import Module, Parameter

__all__ = ["Dropout", "BatchNorm2D", "BatchNorm1D"]


class Dropout(Module):
    """Inverted dropout.

    During training each element is zeroed with probability ``p`` and the
    survivors are scaled by ``1/(1-p)`` so the expected activation is
    unchanged; during evaluation the layer is the identity.
    """

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()  # repro-lint: ignore[RL002] -- seeded-rng callers are the simulated path; bare default is interactive convenience

    def forward(self, inputs: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return inputs
        keep = 1.0 - self.p
        mask = (self._rng.random(inputs.shape) < keep).astype(inputs.dtype) / keep
        return inputs * Tensor(mask)

    def extra_repr(self) -> str:
        return f"p={self.p}"


class _BatchNormBase(Module):
    """Shared implementation of 1-D and 2-D batch normalization."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        if not 0.0 < momentum <= 1.0:
            raise ValueError("momentum must be in (0, 1]")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features, dtype=get_default_dtype()), name="gamma")
        self.beta = Parameter(np.zeros(num_features, dtype=get_default_dtype()), name="beta")
        self.register_buffer("running_mean", np.zeros(num_features, dtype=get_default_dtype()))
        self.register_buffer("running_var", np.ones(num_features, dtype=get_default_dtype()))

    @property
    def running_mean(self) -> np.ndarray:
        return self._buffers["running_mean"]

    @property
    def running_var(self) -> np.ndarray:
        return self._buffers["running_var"]

    def _normalize(self, inputs: Tensor, axes, shape) -> Tensor:
        if self.training:
            batch_mean = inputs.data.mean(axis=axes)
            batch_var = inputs.data.var(axis=axes)
            self._buffers["running_mean"] = (
                (1 - self.momentum) * self._buffers["running_mean"] + self.momentum * batch_mean
            )
            self._buffers["running_var"] = (
                (1 - self.momentum) * self._buffers["running_var"] + self.momentum * batch_var
            )
            mean = inputs.mean(axis=axes, keepdims=True)
            var = inputs.var(axis=axes, keepdims=True)
        else:
            mean = Tensor(self._buffers["running_mean"].reshape(shape))
            var = Tensor(self._buffers["running_var"].reshape(shape))
        normalized = (inputs - mean) / (var + self.eps).sqrt()
        return normalized * self.gamma.reshape(*shape) + self.beta.reshape(*shape)

    def extra_repr(self) -> str:
        return f"num_features={self.num_features}, momentum={self.momentum}, eps={self.eps}"


class BatchNorm2D(_BatchNormBase):
    """Batch normalization over ``(N, C, H, W)`` inputs, per channel."""

    def forward(self, inputs: Tensor) -> Tensor:
        if inputs.ndim != 4:
            raise ValueError(
                f"BatchNorm2D expects 4-D input (N, C, H, W), got shape {inputs.shape}"
            )
        if inputs.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm2D expects {self.num_features} channels, got {inputs.shape[1]}"
            )
        return self._normalize(inputs, axes=(0, 2, 3), shape=(1, self.num_features, 1, 1))


class BatchNorm1D(_BatchNormBase):
    """Batch normalization over ``(N, F)`` inputs, per feature."""

    def forward(self, inputs: Tensor) -> Tensor:
        if inputs.ndim != 2:
            raise ValueError(
                f"BatchNorm1D expects 2-D input (N, F), got shape {inputs.shape}"
            )
        if inputs.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm1D expects {self.num_features} features, got {inputs.shape[1]}"
            )
        return self._normalize(inputs, axes=(0,), shape=(1, self.num_features))
