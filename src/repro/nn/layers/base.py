"""Module and Parameter abstractions for the neural-network substrate.

A :class:`Module` is a container of :class:`Parameter` objects and child
modules, with the familiar ``forward`` / ``__call__`` protocol, recursive
parameter enumeration, train/eval mode switching and state-dict
serialization.  Split learning relies heavily on this abstraction: an
end-system holds a module made of the first ``L_i`` blocks while the
centralized server holds a module made of the remaining blocks, and both
enumerate and update their own parameters independently.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor that is a trainable parameter of a module.

    Parameters always require gradients; optimizers discover them through
    :meth:`Module.parameters`.
    """

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.shape}, name={self.name!r})"


class Module:
    """Base class for every layer and model in the substrate."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training: bool = True

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register_parameter(self, name: str, parameter: Parameter) -> None:
        """Register a trainable parameter under ``name``."""
        if not isinstance(parameter, Parameter):
            raise TypeError(f"expected Parameter, got {type(parameter).__name__}")
        parameter.name = parameter.name or name
        self._parameters[name] = parameter

    def register_module(self, name: str, module: "Module") -> None:
        """Register a child module under ``name``."""
        if not isinstance(module, Module):
            raise TypeError(f"expected Module, got {type(module).__name__}")
        self._modules[name] = module

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable persistent array (e.g. BatchNorm stats).

        Buffers follow the global dtype policy so that e.g. BatchNorm
        running statistics do not silently promote float32 activations.
        """
        from ..dtype import get_default_dtype

        self._buffers[name] = np.asarray(value, dtype=get_default_dtype())

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            # Ensure registries exist even if a subclass forgot super().__init__.
            if "_parameters" not in self.__dict__:
                raise RuntimeError(
                    "Module.__init__() must be called before assigning parameters"
                )
            self._parameters[name] = value
            value.name = value.name or name
        elif isinstance(value, Module):
            if "_modules" not in self.__dict__:
                raise RuntimeError(
                    "Module.__init__() must be called before assigning submodules"
                )
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    # Forward protocol
    # ------------------------------------------------------------------ #
    def forward(self, *inputs: Tensor) -> Tensor:
        raise NotImplementedError(
            f"{type(self).__name__} must implement forward()"
        )

    def __call__(self, *inputs: Tensor) -> Tensor:
        return self.forward(*inputs)

    # ------------------------------------------------------------------ #
    # Parameter / module traversal
    # ------------------------------------------------------------------ #
    def parameters(self) -> List[Parameter]:
        """Return all trainable parameters of this module and its children."""
        return [parameter for _, parameter in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs recursively."""
        for name, parameter in self._parameters.items():
            yield prefix + name, parameter
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(qualified_name, buffer)`` pairs recursively."""
        for name, buffer in self._buffers.items():
            yield prefix + name, buffer
        for child_name, child in self._modules.items():
            yield from child.named_buffers(prefix=f"{prefix}{child_name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants depth-first."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def children(self) -> Iterator["Module"]:
        """Yield immediate child modules."""
        yield from self._modules.values()

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return sum(parameter.size for parameter in self.parameters())

    # ------------------------------------------------------------------ #
    # Mode switching / gradient management
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        """Set the module (recursively) to training or evaluation mode."""
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        """Set the module (recursively) to evaluation mode."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping of parameter and buffer arrays (copies)."""
        state: Dict[str, np.ndarray] = {}
        for name, parameter in self.named_parameters():
            state[name] = parameter.data.copy()
        for name, buffer in self.named_buffers():
            state[f"buffer::{name}"] = buffer.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter and buffer values from :meth:`state_dict` output."""
        own_parameters = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        missing: List[str] = []
        for name, parameter in own_parameters.items():
            if name not in state:
                missing.append(name)
                continue
            value = np.asarray(state[name])
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for parameter {name!r}: "
                    f"expected {parameter.data.shape}, got {value.shape}"
                )
            parameter.data = value.astype(parameter.data.dtype).copy()
        for name in own_buffers:
            key = f"buffer::{name}"
            if key in state:
                self._assign_buffer(name, np.asarray(state[key]))
            elif strict:
                missing.append(key)
        unexpected = [
            key for key in state
            if key not in own_parameters and not (
                key.startswith("buffer::") and key[len("buffer::"):] in own_buffers
            )
        ]
        if strict and (missing or unexpected):
            raise KeyError(
                f"state_dict mismatch: missing={missing}, unexpected={unexpected}"
            )

    def _assign_buffer(self, qualified_name: str, value: np.ndarray) -> None:
        parts = qualified_name.split(".")
        module: Module = self
        for part in parts[:-1]:
            module = module._modules[part]
        existing = module._buffers.get(parts[-1])
        dtype = existing.dtype if existing is not None else value.dtype
        module._buffers[parts[-1]] = value.astype(dtype).copy()

    # ------------------------------------------------------------------ #
    # Representation
    # ------------------------------------------------------------------ #
    def extra_repr(self) -> str:
        """Extra information appended to the module's repr line."""
        return ""

    def __repr__(self) -> str:
        lines = [f"{type(self).__name__}({self.extra_repr()}"]
        for name, child in self._modules.items():
            child_repr = repr(child).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child_repr}")
        if len(lines) == 1:
            return lines[0] + ")"
        lines.append(")")
        return "\n".join(lines)
