"""Figure 4 — what the server can see of the raw training images.

The paper's Fig. 4 shows three image captures for one CIFAR-10 sample:

* (a) the original image,
* (b) the activation after the ``Conv2D`` of block ``L1`` — blurred but
  "may be recognized", and
* (c) the activation after the complete ``L1`` block (Conv2D +
  MaxPooling2D) — which "can definitely hide original images".

This experiment quantifies that visual argument.  For the raw input and
for every layer of the end-system segment it reports

* the pixel correlation between the rendered activation (channel mean,
  the direct analogue of the figure) and the original image, and
* the quality (NMSE / PSNR / SSIM) a ridge-regression inversion attack
  achieves when reconstructing the original images from the activations.

The expected shape is monotone: the post-pooling activation leaks
markedly less than the pre-pooling activation, which leaks less than the
input itself.
"""

from __future__ import annotations

from typing import Dict, Optional


from ..core.config import TrainingConfig
from ..core.privacy import leakage_report
from ..core.split import SplitSpec
from ..core.trainer import SpatioTemporalTrainer
from ..utils.logging import get_logger
from .base import ExperimentResult, WorkloadSpec, build_workload

__all__ = ["run_figure4", "PAPER_FIGURE4"]

logger = get_logger("experiments.figure4")

#: The paper's qualitative claims for Fig. 4, for reference in reports.
PAPER_FIGURE4: Dict[str, str] = {
    "input": "original image (fully visible)",
    "L1_conv": "blurred but may be recognized",
    "L1_pool": "definitely hides the original image",
}


def run_figure4(
    workload: Optional[WorkloadSpec] = None,
    client_blocks: int = 1,
    num_probe_images: int = 200,
    train_first: bool = True,
    attack_ridge: float = 1e-3,
) -> ExperimentResult:
    """Reproduce Fig. 4 as a per-layer leakage table.

    Parameters
    ----------
    client_blocks:
        How many blocks the probed end-system holds (1 reproduces the
        figure; larger values extend it to deeper cuts).
    num_probe_images:
        How many raw images are pushed through the client segment for the
        correlation / reconstruction analysis.
    train_first:
        When ``True`` the split model is briefly trained before probing,
        so the activations come from realistic (not randomly initialized)
        filters; disable for a faster, initialization-only probe.
    """
    workload = workload if workload is not None else WorkloadSpec.laptop()
    if client_blocks < 1:
        raise ValueError("figure 4 requires at least one client block")
    pieces = build_workload(workload)
    architecture = pieces["architecture"]
    spec = SplitSpec(architecture, client_blocks=client_blocks)

    config = TrainingConfig(
        epochs=max(1, workload.epochs // 3),
        batch_size=workload.batch_size,
        seed=workload.seed,
        server_batching=False,
    )
    trainer = SpatioTemporalTrainer(
        spec, pieces["parts"], config, train_transform=pieces["normalize"]
    )
    if train_first:
        trainer.train(test_dataset=None)

    # Probe the first end-system's segment with raw (un-normalized) images:
    # Fig. 4 is about what crosses the wire, and the wire carries the
    # activations of whatever the client feeds its own layers.
    images, _ = pieces["test"].arrays()
    probe = images[: min(num_probe_images, images.shape[0])]
    probe_normalized = pieces["normalize"](probe)
    report = leakage_report(
        trainer.end_systems[0].model, probe_normalized, ridge=attack_ridge
    )
    # Correlation/reconstruction targets are the original [0,1] images, so
    # re-express the metrics against the raw probe for interpretability.
    raw_report = leakage_report(trainer.end_systems[0].model, probe, ridge=attack_ridge)

    result = ExperimentResult(
        name="Figure 4 — privacy of smashed activations (leakage per layer)",
        headers=[
            "layer",
            "activation_shape",
            "pixel_correlation",
            "reconstruction_nmse",
            "reconstruction_psnr_db",
            "reconstruction_ssim",
            "paper_observation",
        ],
        paper_reference={"figure": "4", "observations": dict(PAPER_FIGURE4)},
        metadata={
            "workload": workload.__dict__.copy(),
            "client_blocks": client_blocks,
            "trained": train_first,
            "num_probe_images": int(probe.shape[0]),
        },
    )
    for entry in raw_report:
        result.add_row([
            entry.layer,
            "x".join(str(dim) for dim in entry.activation_shape),
            entry.correlation,
            entry.reconstruction_nmse,
            entry.reconstruction_psnr,
            entry.reconstruction_ssim,
            PAPER_FIGURE4.get(entry.layer, ""),
        ])
        logger.info(
            "figure4 layer=%s correlation=%.3f nmse=%.3f",
            entry.layer, entry.correlation, entry.reconstruction_nmse,
        )
    return result
