"""Table I — accuracy vs. number of layers at the end-systems.

The paper's Table I reports test accuracy of the Fig.-3 CNN on CIFAR-10
as the blocks held by the end-systems grow:

==========================================  =========
Layers at end-systems                        Accuracy
==========================================  =========
Nothing (All layers are in the server)       71.09 %
L1                                           68.18 %
L1, L2                                       67.92 %
L1, L2, L3                                   66.00 %
L1, L2, L3, L4                               65.66 %
==========================================  =========

The claim is that the degradation is small (2.91 % for the privacy-
preserving L1 cut, 5.43 % in the worst case) and grows with the number of
client-side blocks — the tradeoff discussed in Section II.  This module
re-runs that sweep on the synthetic CIFAR-10-like workload and reports the
same rows, plus the degradation relative to the centralized row.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.config import TrainingConfig
from ..core.split import SplitSpec
from ..core.trainer import SpatioTemporalTrainer
from ..utils.logging import get_logger
from .base import ExperimentResult, WorkloadSpec, build_workload

__all__ = ["PAPER_TABLE1", "run_table1"]

logger = get_logger("experiments.table1")

#: Accuracy values reported in the paper's Table I, keyed by client blocks.
PAPER_TABLE1: Dict[int, float] = {
    0: 71.09,
    1: 68.18,
    2: 67.92,
    3: 66.00,
    4: 65.66,
}


def run_table1(
    workload: Optional[WorkloadSpec] = None,
    client_block_range: Optional[List[int]] = None,
    queue_policy: str = "fifo",
) -> ExperimentResult:
    """Reproduce Table I: sweep the cut depth and measure test accuracy.

    Parameters
    ----------
    workload:
        Dataset / architecture / budget description; defaults to the
        laptop-scale workload.
    client_block_range:
        Which cuts to evaluate.  Defaults to ``0 .. num_blocks - 1`` (the
        paper stops one block short of moving the entire feature extractor
        to the end-systems).
    """
    workload = workload if workload is not None else WorkloadSpec.laptop()
    pieces = build_workload(workload)
    architecture = pieces["architecture"]
    if client_block_range is None:
        client_block_range = list(range(architecture.num_blocks))

    result = ExperimentResult(
        name="Table I — accuracy vs. layers at end-systems",
        headers=[
            "layers_at_end_systems",
            "client_blocks",
            "accuracy_pct",
            "degradation_pct",
            "paper_accuracy_pct",
            "uplink_megabytes",
            "simulated_time_s",
        ],
        paper_reference={"table": "I", "values_pct": dict(PAPER_TABLE1)},
        metadata={
            "workload": workload.__dict__.copy(),
            "queue_policy": queue_policy,
            "architecture": architecture.describe(),
        },
    )

    baseline_accuracy: Optional[float] = None
    for client_blocks in client_block_range:
        spec = SplitSpec(architecture, client_blocks=client_blocks)
        config = TrainingConfig(
            epochs=workload.epochs,
            batch_size=workload.batch_size,
            queue_policy=queue_policy,
            seed=workload.seed,
            # Table I reproduces the paper's per-message server updates;
            # batched draining changes the step count per epoch.
            server_batching=False,
        )
        trainer = SpatioTemporalTrainer(
            spec, pieces["parts"], config, train_transform=pieces["normalize"]
        )
        history = trainer.train(test_dataset=pieces["test"], evaluate_every=10 ** 6)
        accuracy_pct = 100.0 * (history.final_test_accuracy or 0.0)
        if baseline_accuracy is None:
            baseline_accuracy = accuracy_pct
        degradation = baseline_accuracy - accuracy_pct
        logger.info("table1 cut=%d accuracy=%.2f%%", client_blocks, accuracy_pct)
        result.add_row([
            spec.label,
            client_blocks,
            accuracy_pct,
            degradation,
            PAPER_TABLE1.get(client_blocks, float("nan")),
            history.traffic.get("uplink_megabytes", 0.0),
            history.total_simulated_time,
        ])
    return result
