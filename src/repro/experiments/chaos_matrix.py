"""Chaos matrix: fault regimes x reliable delivery.

The DSN paper claims a *dependable* split-learning platform, and the
PR 5/6 cluster already survives shard crashes.  This experiment turns on
the PR 8 chaos plane — deterministic, seeded injection of link loss,
message corruption/duplication/reordering, link flaps, hub-to-hub
partitions and stragglers — and asks the matching question for the
*network* half of dependability: how much does the reliability layer
(sequence-numbered transfers with ack/timeout/backoff retries,
idempotent dedup, quorum-degraded sync) actually buy under each fault
regime?

The sweep is a matrix of fault regime x ``reliable_delivery``:

* ``clean`` — fault-free control; the reliability-on row must match the
  off row to the last gradient.  Loss-absorbing retries and give-ups
  read zero here; with an ack timeout below the far clients' RTT the
  sender still emits *spurious* retransmissions (the first copy was
  merely late), which the idempotent receiver absorbs — the ``deduped``
  column prices exactly that overhead;
* ``lossy`` — plain i.i.d. link loss (the paper's lossy-network story);
* ``chaos`` — link loss plus per-message corruption, duplication and
  reordering at the transport;
* ``churn`` — a scripted timeline of link flaps, a hub-to-hub partition
  and a straggling shard, with quorum-degraded sync allowed to proceed
  without the straggler.

Reported per cell: transport losses, retransmissions, abandoned
transfers (``gave_up``), duplicates absorbed, chaos counters, degraded
vs. abandoned syncs, client drop notifications, final accuracy and
simulated completion time.  Every cell also re-asserts the extended
drop-accounting balance — the leak-freedom contract is part of the
experiment, not just the test suite.

Expected shape: under ``lossy``/``chaos`` the reliability layer converts
transport drops into retries (fewer notifications, better accuracy, a
little extra simulated time); under ``churn`` quorum sync keeps rounds
moving while the partition holds.  Identical seeds mean the off/on pairs
face byte-identical fault streams.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..core.config import TrainingConfig
from ..core.split import SplitSpec
from ..core.trainer import SpatioTemporalTrainer
from ..obs.invariants import assert_drop_balance
from ..simnet.topology import multi_hub_star_topology
from ..utils.logging import get_logger
from .base import ExperimentResult, WorkloadSpec, build_workload

__all__ = ["run_chaos_matrix", "DEFAULT_REGIMES"]

logger = get_logger("experiments.chaos_matrix")

#: Fault regimes swept by default.  Each value is a dict of
#: ``TrainingConfig`` overrides plus the pseudo-knob ``link_drop`` that
#: parameterises the topology's physical loss probability.
DEFAULT_REGIMES: Dict[str, Dict[str, object]] = {
    "clean": {},
    "lossy": {"link_drop": 0.15},
    "chaos": {
        "link_drop": 0.1,
        "chaos_corrupt_probability": 0.05,
        "chaos_duplicate_probability": 0.05,
        "chaos_reorder_probability": 0.1,
    },
    "churn": {
        "link_drop": 0.05,
        "server_step_time_s": 0.004,
        "sync_quorum": 0.5,
        "sync_timeout_s": 0.05,
        # The schedule is phrased in simulated seconds; the tiny
        # workloads finish in well under a second, so the faults land
        # mid-run.
        "chaos_schedule": [
            ("flap", 0.01, 0.02, 0),
            ("partition", 0.03, 0.03, 0, 1),
            ("straggler", 0.02, 0.05, 1, 4.0),
            ("flap", 0.08, 0.01, 1),
        ],
    },
}


def run_chaos_matrix(
    workload: Optional[WorkloadSpec] = None,
    regimes: Optional[Dict[str, Dict[str, object]]] = None,
    reliability_values: Sequence[bool] = (False, True),
    num_servers: int = 2,
    retry_timeout_s: float = 0.01,
    retry_max: int = 3,
    client_blocks: int = 1,
    near_latency_s: float = 0.002,
    far_latency_s: float = 0.05,
    inter_server_latency_s: float = 0.005,
    obs_dir: Optional[str] = None,
    obs_flush_every_s: float = 0.02,
    obs_trace_sample_rate: float = 1.0,
) -> ExperimentResult:
    """Sweep fault regime x reliable delivery on a sharded star.

    Training runs synchronously with ``"average"`` sync so the quorum
    path is admissible.  The same workload seed drives both halves of
    each regime pair, so the reliability layer is evaluated against the
    exact fault stream its control row suffered.

    With ``obs_dir`` set every cell trains with the ``repro.obs`` plane
    on and exports ``<obs_dir>/<regime>_<on|off>/metrics.jsonl`` plus
    ``trace.json`` — the JSONL round-trips through ``python -m repro.obs
    report`` (which re-checks the drop balance from the export alone).
    """
    workload = workload if workload is not None else WorkloadSpec.laptop(
        num_end_systems=16, num_samples=640, epochs=2, batch_size=16,
    )
    regimes = regimes if regimes is not None else DEFAULT_REGIMES
    pieces = build_workload(workload)
    spec = SplitSpec(pieces["architecture"], client_blocks=client_blocks)
    latencies = list(np.linspace(near_latency_s, far_latency_s,
                                 workload.num_end_systems))

    result = ExperimentResult(
        name="Chaos matrix — fault regimes x reliable delivery "
             f"({workload.num_end_systems}-client star, {num_servers} shards)",
        headers=[
            "regime",
            "reliable",
            "dropped",
            "retried",
            "gave_up",
            "deduped",
            "corrupted",
            "duplicated",
            "reordered",
            "chaos_events",
            "quorum_syncs",
            "sync_timeouts",
            "notified",
            "train_accuracy_pct",
            "test_accuracy_pct",
            "simulated_time_s",
        ],
        paper_reference={
            "figure": "dependability claim (title/Sec. I) — lossy-network extension",
            "claim": "training must survive an unreliable network, not just "
                     "unreliable servers; retries, dedup and quorum sync are "
                     "the transport-side half of the dependability story",
        },
        metadata={
            "workload": workload.__dict__.copy(),
            "regimes": {name: dict(overrides)
                        for name, overrides in regimes.items()},
            "reliability_values": [bool(v) for v in reliability_values],
            "num_servers": num_servers,
            "retry_timeout_s": retry_timeout_s,
            "retry_max": retry_max,
            "latency_range_s": [near_latency_s, far_latency_s],
            "inter_server_latency_s": inter_server_latency_s,
        },
    )

    for regime_name, overrides in regimes.items():
        overrides = dict(overrides)
        link_drop = float(overrides.pop("link_drop", 0.0))
        for reliable in reliability_values:
            topology = multi_hub_star_topology(
                workload.num_end_systems,
                num_servers,
                assigner="latency_aware",
                latencies_s=latencies,
                drop_probability=link_drop,
                inter_server_latency_s=inter_server_latency_s,
                seed=workload.seed,
            )
            obs_knobs: Dict[str, object] = {}
            if obs_dir is not None:
                cell = f"{regime_name}_{'on' if reliable else 'off'}"
                obs_knobs = {
                    "obs_enabled": True,
                    "obs_flush_every_s": obs_flush_every_s,
                    "obs_trace_sample_rate": obs_trace_sample_rate,
                    "obs_dir": f"{obs_dir}/{cell}",
                }
            config = TrainingConfig(
                epochs=workload.epochs,
                batch_size=workload.batch_size,
                num_servers=num_servers,
                shard_assigner="latency_aware",
                server_sync_every=1,
                server_sync_mode="average",
                reliable_delivery=bool(reliable),
                retry_timeout_s=retry_timeout_s,
                retry_max=retry_max,
                seed=workload.seed,
                **obs_knobs,
                **overrides,
            )
            trainer = SpatioTemporalTrainer(
                spec, pieces["parts"], config, topology=topology,
                train_transform=pieces["normalize"],
            )
            history = trainer.train(pieces["test"],
                                    evaluate_every=workload.epochs)
            # The leak-freedom contract is part of the experiment, not
            # just the test suite (see repro.obs.invariants).
            assert_drop_balance(trainer)
            log = trainer.transport.log
            stats = trainer.engine.stats
            notified = sum(es.drops_notified for es in trainer.end_systems)
            logger.info(
                "chaos regime=%s reliable=%s dropped=%d retried=%d "
                "gave_up=%d deduped=%d chaos_events=%d acc=%.4f "
                "sim_time=%.3fs",
                regime_name, reliable, log.dropped_messages,
                log.retried_messages, stats.gave_up, stats.deduped,
                stats.chaos_events, history.final_train_accuracy,
                history.total_simulated_time,
            )
            result.add_row([
                regime_name,
                "on" if reliable else "off",
                log.dropped_messages,
                log.retried_messages,
                stats.gave_up,
                stats.deduped,
                log.corrupted_messages,
                log.duplicated_messages,
                log.reordered_messages,
                stats.chaos_events,
                stats.quorum_syncs,
                stats.sync_timeouts,
                notified,
                100.0 * history.final_train_accuracy,
                100.0 * (history.final_test_accuracy or 0.0),
                history.total_simulated_time,
            ])
    return result
