"""Registry mapping experiment names to their runners.

The registry is what the CLI (``repro-experiments``) and the benchmark
harness iterate over; adding a new experiment means registering its
runner here with the paper artefact it reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .base import ExperimentResult, WorkloadSpec
from .baselines_comparison import run_baselines_comparison
from .chaos_matrix import run_chaos_matrix
from .clients_sweep import run_clients_sweep
from .compression import run_compression
from .figure4 import run_figure4
from .queue_congestion import run_queue_congestion
from .server_failover import run_server_failover
from .server_sharding import run_server_sharding
from .staleness import run_staleness
from .table1 import run_table1

__all__ = ["ExperimentEntry", "REGISTRY", "list_experiments", "get_experiment", "run_experiment"]


@dataclass(frozen=True)
class ExperimentEntry:
    """One registered experiment."""

    name: str
    paper_artifact: str
    description: str
    runner: Callable[..., ExperimentResult]


REGISTRY: Dict[str, ExperimentEntry] = {
    "table1": ExperimentEntry(
        name="table1",
        paper_artifact="Table I",
        description="Test accuracy vs. number of CNN blocks held by the end-systems.",
        runner=run_table1,
    ),
    "figure4": ExperimentEntry(
        name="figure4",
        paper_artifact="Figure 4",
        description="Privacy of smashed activations: per-layer leakage and reconstruction attack.",
        runner=run_figure4,
    ),
    "staleness": ExperimentEntry(
        name="staleness",
        paper_artifact="Figure 2 (queue discussion)",
        description="Queue scheduling ablation under heterogeneous geo-distributed latencies.",
        runner=run_staleness,
    ),
    "clients_sweep": ExperimentEntry(
        name="clients_sweep",
        paper_artifact="Multiple end-systems claim",
        description="Accuracy vs. number of end-systems at a fixed cut.",
        runner=run_clients_sweep,
    ),
    "baselines": ExperimentEntry(
        name="baselines",
        paper_artifact="Section I positioning",
        description="Spatio-temporal split learning vs. centralized, sequential split and FedAvg.",
        runner=run_baselines_comparison,
    ),
    "queue_congestion": ExperimentEntry(
        name="queue_congestion",
        paper_artifact="Figure 2 (bounded queue)",
        description="Bounded scheduling queues under a 100+ client star: capacity x backpressure x policy.",
        runner=run_queue_congestion,
    ),
    "server_sharding": ExperimentEntry(
        name="server_sharding",
        paper_artifact="Fig. 2 architecture (scaling extension)",
        description="Sharded multi-server deployment: accuracy and completion time "
                    "vs. shard count under a 100+ client heterogeneous star.",
        runner=run_server_sharding,
    ),
    "server_failover": ExperimentEntry(
        name="server_failover",
        paper_artifact="Dependability claim (Sec. I) — failover extension",
        description="Shard failover under churn: MTBF x checkpoint interval x "
                    "failover policy x sync mode on a sharded heterogeneous "
                    "star, reporting achieved RPO vs. checkpoint overhead.",
        runner=run_server_failover,
    ),
    "chaos_matrix": ExperimentEntry(
        name="chaos_matrix",
        paper_artifact="Dependability claim (Sec. I) — lossy-network extension",
        description="Fault regimes (loss, corruption, duplication, reordering, "
                    "flaps, partitions, stragglers) x reliable delivery on a "
                    "sharded star, with the drop-accounting balance enforced "
                    "per cell.",
        runner=run_chaos_matrix,
    ),
    "compression": ExperimentEntry(
        name="compression",
        paper_artifact="Extension (future work)",
        description="Accuracy / traffic / leakage trade-off of compressing or noising the smashed activations.",
        runner=run_compression,
    ),
}


def list_experiments() -> List[ExperimentEntry]:
    """All registered experiments in a stable order."""
    return [REGISTRY[name] for name in sorted(REGISTRY)]


def get_experiment(name: str) -> ExperimentEntry:
    """Look up one experiment by name."""
    try:
        return REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown experiment {name!r}; known experiments: {known}") from None


def run_experiment(name: str, workload: Optional[WorkloadSpec] = None,
                   **kwargs) -> ExperimentResult:
    """Run a registered experiment, optionally overriding its workload."""
    entry = get_experiment(name)
    if workload is not None:
        kwargs["workload"] = workload
    return entry.runner(**kwargs)
