"""Ablation — spatio-temporal split learning vs. the standard alternatives.

The paper frames split learning as the privacy-preserving member of the
federated-learning family.  This experiment puts the proposed framework
side by side with the three natural comparators on the *same* data
partition and training budget:

* **centralized** — all data pooled on the server (non-private upper
  bound; Table I row 1),
* **sequential split** — classic single-client split learning where the
  institutions take turns with one shared client segment (Vepakomma et
  al.),
* **fedavg** — federated averaging, where every client trains a complete
  local model copy and the server averages weights,
* **spatio-temporal** — the paper's proposal.

Reported per method: test accuracy, whether raw data leaves the clients,
the number of parameters a client must host, and the uplink traffic.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence


from ..baselines.centralized import CentralizedTrainer
from ..baselines.fedavg import FedAvgTrainer
from ..baselines.vanilla_split import SequentialSplitTrainer
from ..core.config import TrainingConfig
from ..core.split import SplitSpec
from ..core.trainer import SpatioTemporalTrainer
from ..simnet.link import payload_bytes
from ..utils.logging import get_logger
from .base import ExperimentResult, WorkloadSpec, build_workload

__all__ = ["run_baselines_comparison"]

logger = get_logger("experiments.baselines")


def _client_parameters(spec: SplitSpec) -> int:
    """Parameters a single end-system must host under a given method."""
    return spec.build_client_segment(seed=0).num_parameters()


def run_baselines_comparison(
    workload: Optional[WorkloadSpec] = None,
    client_blocks: int = 1,
    methods: Sequence[str] = ("centralized", "sequential_split", "fedavg", "spatio_temporal"),
    fedavg_local_epochs: int = 1,
) -> ExperimentResult:
    """Compare training paradigms on the same partitioned workload."""
    workload = workload if workload is not None else WorkloadSpec.laptop()
    pieces = build_workload(workload)
    architecture = pieces["architecture"]
    spec = SplitSpec(architecture, client_blocks=client_blocks)
    full_model_parameters = architecture.build(seed=0).num_parameters()

    result = ExperimentResult(
        name="Baseline comparison — centralized vs. split variants vs. FedAvg",
        headers=[
            "method",
            "accuracy_pct",
            "raw_data_leaves_client",
            "client_parameters",
            "uplink_megabytes",
        ],
        paper_reference={
            "claim": "split learning attains near-centralized accuracy without sharing raw data",
        },
        metadata={
            "workload": workload.__dict__.copy(),
            "client_blocks": client_blocks,
            "full_model_parameters": full_model_parameters,
        },
    )

    normalize = pieces["normalize"]
    test = pieces["test"]
    parts = pieces["parts"]
    train = pieces["train"]

    runners: Dict[str, object] = {}

    if "centralized" in methods:
        trainer = CentralizedTrainer(architecture.build(seed=workload.seed))
        history = trainer.fit(
            train, test_dataset=test, epochs=workload.epochs,
            batch_size=workload.batch_size, transform=normalize, seed=workload.seed,
        )
        images, _ = train.arrays()
        uplink_mb = payload_bytes(images) / 1e6  # raw data upload, once
        result.add_row([
            "centralized",
            100.0 * (history.final_test_accuracy or 0.0),
            "yes",
            0,
            uplink_mb,
        ])
        runners["centralized"] = trainer

    if "sequential_split" in methods:
        trainer = SequentialSplitTrainer(
            spec, parts, batch_size=workload.batch_size, seed=workload.seed,
            transform=normalize,
        )
        history = trainer.fit(test_dataset=test, epochs=workload.epochs)
        channels, height, width = spec.smashed_shape
        # Every batch uploads its smashed activations once per epoch visit.
        samples = sum(len(part) for part in parts)
        uplink_mb = samples * workload.epochs * channels * height * width * 8 / 1e6
        result.add_row([
            "sequential_split",
            100.0 * (history.final_test_accuracy or 0.0),
            "no",
            _client_parameters(spec),
            uplink_mb,
        ])
        runners["sequential_split"] = trainer

    if "fedavg" in methods:
        trainer = FedAvgTrainer(
            architecture, parts, local_epochs=fedavg_local_epochs,
            batch_size=workload.batch_size, seed=workload.seed, transform=normalize,
        )
        history = trainer.fit(test_dataset=test, rounds=workload.epochs)
        # Each round every client uploads a full model copy.
        uplink_mb = workload.epochs * len(parts) * full_model_parameters * 8 / 1e6
        result.add_row([
            "fedavg",
            100.0 * (history.final_test_accuracy or 0.0),
            "no",
            full_model_parameters,
            uplink_mb,
        ])
        runners["fedavg"] = trainer

    if "spatio_temporal" in methods:
        config = TrainingConfig(
            epochs=workload.epochs, batch_size=workload.batch_size, seed=workload.seed,
            # Match the paper's per-message server updates so the accuracy
            # comparison against the sequential baselines stays apples-to-apples.
            server_batching=False,
        )
        trainer = SpatioTemporalTrainer(spec, parts, config, train_transform=normalize)
        history = trainer.train(test_dataset=test, evaluate_every=10 ** 6)
        result.add_row([
            "spatio_temporal",
            100.0 * (history.final_test_accuracy or 0.0),
            "no",
            _client_parameters(spec),
            history.traffic.get("uplink_megabytes", 0.0),
        ])
        runners["spatio_temporal"] = trainer

    for row in result.rows:
        logger.info("baselines method=%s accuracy=%.2f%%", row[0], row[1])
    result.metadata["runners"] = sorted(runners)
    return result
