"""Server-sharding scaling sweep: accuracy and wall-clock vs. shard count.

The ROADMAP's north star is serving heavy traffic from very many
end-systems; the single central server the paper assumes is the obvious
bottleneck.  This experiment runs the same 100+ client heterogeneous
star workload against 1, 2 and 4 server shards
(:mod:`repro.cluster`), with clients assigned per shard by a pluggable
strategy and the shards kept consistent by sample-weighted full
averaging every round.

Reported per shard count: the client balance, final training and test
accuracy, the simulated completion time, the host wall-clock time, the
mean queue wait, and what the consistency protocol costs —
synchronization events and inter-server traffic volume.

Expected shape: accuracy degrades only mildly with shard count (periodic
averaging is FedAvg-grade consistency), and the *mean queue wait*
collapses under latency-aware sharding — a near shard's messages stop
queueing behind far-away arrivals at the round barrier, so its updates
apply fresh.  The simulated completion time stays pinned to the slowest
latency band (every client still contributes the same number of rounds;
sharding isolates stragglers, it does not remove them), and sync
traffic grows as S*(S-1) snapshots per sync.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.config import TrainingConfig
from ..core.split import SplitSpec
from ..core.trainer import SpatioTemporalTrainer
from ..simnet.topology import multi_hub_star_topology
from ..utils.logging import get_logger
from .base import ExperimentResult, WorkloadSpec, build_workload

__all__ = ["run_server_sharding"]

logger = get_logger("experiments.server_sharding")

DEFAULT_SHARD_COUNTS = (1, 2, 4)


def _spread_latencies(num_end_systems: int, near_s: float, far_s: float):
    """Evenly spread one-way latencies from a nearby to a far-away client."""
    return list(np.linspace(near_s, far_s, num_end_systems))


def run_server_sharding(
    workload: Optional[WorkloadSpec] = None,
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    shard_assigner: str = "latency_aware",
    server_sync_every: int = 1,
    server_sync_mode: str = "average",
    client_blocks: int = 1,
    near_latency_s: float = 0.002,
    far_latency_s: float = 0.12,
    inter_server_latency_s: float = 0.005,
) -> ExperimentResult:
    """Sweep the shard count under a heterogeneous-latency star.

    Training runs in synchronous mode (the Table-I regime) so the round
    barrier makes the straggler effect visible: with one server every
    round waits for the farthest client, while latency-aware shards wait
    only for their own band.
    """
    workload = workload if workload is not None else WorkloadSpec.laptop(
        num_end_systems=100, num_samples=2000, epochs=2, batch_size=16,
    )
    pieces = build_workload(workload)
    spec = SplitSpec(pieces["architecture"], client_blocks=client_blocks)
    latencies = _spread_latencies(workload.num_end_systems, near_latency_s, far_latency_s)

    result = ExperimentResult(
        name="Server sharding — accuracy and completion time vs. shard count "
             f"under a {workload.num_end_systems}-client star",
        headers=[
            "num_servers",
            "assigner",
            "clients_per_shard",
            "train_accuracy_pct",
            "test_accuracy_pct",
            "simulated_time_s",
            "wall_time_s",
            "weight_syncs",
            "sync_megabytes",
            "mean_queue_wait_ms",
        ],
        paper_reference={
            "figure": "architecture (Fig. 2) — scaling extension",
            "claim": "one centralized server absorbs every end-system's "
                     "activations; sharding with periodic weight sync is the "
                     "horizontal path past that bottleneck",
        },
        metadata={
            "workload": workload.__dict__.copy(),
            "shard_counts": list(shard_counts),
            "shard_assigner": shard_assigner,
            "server_sync_every": server_sync_every,
            "server_sync_mode": server_sync_mode,
            "client_blocks": client_blocks,
            "latency_range_s": [near_latency_s, far_latency_s],
            "inter_server_latency_s": inter_server_latency_s,
        },
    )

    for num_servers in shard_counts:
        topology = multi_hub_star_topology(
            workload.num_end_systems,
            num_servers,
            assigner=shard_assigner,
            latencies_s=latencies,
            inter_server_latency_s=inter_server_latency_s,
            seed=workload.seed,
        )
        config = TrainingConfig(
            epochs=workload.epochs,
            batch_size=workload.batch_size,
            num_servers=num_servers,
            shard_assigner=shard_assigner,
            server_sync_every=server_sync_every,
            server_sync_mode=server_sync_mode,
            seed=workload.seed,
        )
        trainer = SpatioTemporalTrainer(
            spec, pieces["parts"], config, topology=topology,
            train_transform=pieces["normalize"],
        )
        history = trainer.train(pieces["test"], evaluate_every=workload.epochs)
        wall_time = sum(record.wall_time_s for record in history.records)
        balance = "/".join(str(count) for count in trainer.cluster.clients_per_shard())
        logger.info(
            "sharding servers=%d balance=%s train_acc=%.4f sim_time=%.2fs syncs=%d",
            num_servers, balance, history.final_train_accuracy,
            history.total_simulated_time, trainer.engine.stats.weight_syncs,
        )
        result.add_row([
            num_servers,
            shard_assigner,
            balance,
            100.0 * history.final_train_accuracy,
            100.0 * (history.final_test_accuracy or 0.0),
            history.total_simulated_time,
            wall_time,
            trainer.engine.stats.weight_syncs,
            history.traffic["sync_megabytes"],
            1e3 * history.queue_stats["mean_waiting_time_s"],
        ])
    return result
