"""Queue-scheduling ablation (the paper's Fig. 2 discussion).

Section II of the paper argues that, because end-systems are
geo-distributed, "the parameters from the end-system can arrive at the
server lately or sparsely.  Then, the learning performance can be biased
due to the differences of arrivals from end-systems.  Thus, parameter
scheduling is required".  The paper defines the queue but does not
evaluate it; this ablation does.

Setup: end-systems with strongly heterogeneous uplink latencies train in
*asynchronous* mode, where the server processes activations as they
arrive and a client only sends its next batch once the previous gradient
has returned.  We sweep the queue's scheduling policy and report

* Jain's fairness index over per-end-system processed samples (1.0 means
  every end-system contributed equally — no bias),
* the mean queueing delay,
* the spread (max - min) of per-end-system test accuracy, and
* the overall test accuracy.

Expected shape: FIFO lets nearby end-systems dominate (lower fairness),
while staleness-aware / weighted-fair scheduling restores balance at a
small cost in waiting time.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.config import TrainingConfig
from ..core.split import SplitSpec
from ..core.trainer import SpatioTemporalTrainer
from ..simnet.topology import star_topology
from ..utils.logging import get_logger
from .base import ExperimentResult, WorkloadSpec, build_workload

__all__ = ["run_staleness"]

logger = get_logger("experiments.staleness")

#: Default heterogeneous one-way latencies: one nearby, one regional,
#: one intercontinental end-system plus an extremely remote one.
DEFAULT_LATENCIES_S = (0.002, 0.020, 0.080, 0.200)


def run_staleness(
    workload: Optional[WorkloadSpec] = None,
    policies: Sequence[str] = ("fifo", "round_robin", "staleness", "weighted_fair"),
    latencies_s: Sequence[float] = DEFAULT_LATENCIES_S,
    client_blocks: int = 1,
    max_in_flight: int = 2,
    server_step_time_s: float = 0.02,
    simulated_budget_s: Optional[float] = None,
) -> ExperimentResult:
    """Compare queue scheduling policies under heterogeneous latencies.

    Training runs in asynchronous mode for a fixed *simulated time budget*
    (not a fixed number of passes): within that window a nearby end-system
    can ship many more batches than a remote one, so the scheduling policy
    determines how the server's limited throughput is divided — which is
    exactly the bias the paper's queue discussion is about.
    """
    workload = workload if workload is not None else WorkloadSpec.laptop(
        num_end_systems=len(DEFAULT_LATENCIES_S), partition="dirichlet",
        partition_kwargs={"alpha": 0.5},
    )
    if workload.num_end_systems != len(latencies_s):
        raise ValueError(
            f"workload has {workload.num_end_systems} end-systems but "
            f"{len(latencies_s)} latencies were given"
        )
    pieces = build_workload(workload)
    architecture = pieces["architecture"]
    spec = SplitSpec(architecture, client_blocks=client_blocks)
    if simulated_budget_s is None:
        # Budget sized so the server could process roughly `epochs` passes
        # over the data if it were never starved: batches/pass * step time.
        total_batches_per_pass = sum(
            max(1, len(part) // workload.batch_size) for part in pieces["parts"]
        )
        simulated_budget_s = workload.epochs * total_batches_per_pass * server_step_time_s

    result = ExperimentResult(
        name="Queue scheduling ablation — arrival bias under heterogeneous latency",
        headers=[
            "policy",
            "fairness_index",
            "accuracy_pct",
            "accuracy_spread_pct",
            "mean_queue_wait_ms",
            "updates_fast_client",
            "updates_slow_client",
            "simulated_time_s",
        ],
        paper_reference={
            "figure": "2",
            "claim": "parameter scheduling is required to avoid bias from late/sparse arrivals",
        },
        metadata={
            "workload": workload.__dict__.copy(),
            "latencies_s": list(latencies_s),
            "client_blocks": client_blocks,
            "max_in_flight": max_in_flight,
            "server_step_time_s": server_step_time_s,
            "simulated_budget_s": simulated_budget_s,
        },
    )

    for policy in policies:
        topology = star_topology(
            workload.num_end_systems,
            latencies_s=latencies_s,
            jitter_std_s=0.002,
            seed=workload.seed,
        )
        config = TrainingConfig(
            epochs=workload.epochs,
            batch_size=workload.batch_size,
            queue_policy=policy,
            mode="asynchronous",
            max_in_flight=max_in_flight,
            server_step_time_s=server_step_time_s,
            seed=workload.seed,
            # The staleness ablation studies per-message queue contention;
            # batched draining would collapse the contention it measures.
            server_batching=False,
        )
        trainer = SpatioTemporalTrainer(
            spec, pieces["parts"], config, topology=topology,
            train_transform=pieces["normalize"],
        )
        history = trainer.train_time_budget(simulated_budget_s, test_dataset=pieces["test"])
        per_system = history.per_system_accuracy or {}
        accuracies = list(per_system.values())
        spread = (max(accuracies) - min(accuracies)) * 100.0 if accuracies else 0.0
        updates = trainer.per_system_update_counts()
        fastest = int(np.argmin(latencies_s))
        slowest = int(np.argmax(latencies_s))
        logger.info(
            "staleness policy=%s fairness=%.3f accuracy=%.2f%%",
            policy, history.queue_stats.get("fairness_index", 1.0),
            100.0 * (history.final_test_accuracy or 0.0),
        )
        result.add_row([
            policy,
            history.queue_stats.get("fairness_index", 1.0),
            100.0 * (history.final_test_accuracy or 0.0),
            spread,
            1e3 * history.queue_stats.get("mean_waiting_time_s", 0.0),
            updates.get(fastest, 0),
            updates.get(slowest, 0),
            history.total_simulated_time,
        ])
    return result
