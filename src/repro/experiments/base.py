"""Shared plumbing for the experiment harness.

Every experiment (one per paper table/figure plus the ablations) follows
the same recipe: build a workload (dataset + partition + architecture),
run one or more training configurations, and emit a table of rows in the
same layout the paper uses.  :class:`ExperimentResult` is that table plus
metadata; :class:`WorkloadSpec` is the workload description with two
presets — ``"paper"`` (the full Fig.-3 CNN on 32x32 images) and
``"laptop"`` (a scaled-down but structurally identical configuration that
finishes in seconds and is used by the test-suite and the default
benchmark runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


from ..api.jobspec import JobWorkload
from ..api.runtime import build_workload as _materialize_workload
from ..core.models import CNNArchitecture, paper_cnn_architecture, tiny_cnn_architecture
from ..utils.tables import format_table

__all__ = ["WorkloadSpec", "ExperimentResult", "build_workload"]


@dataclass
class WorkloadSpec:
    """Description of the dataset / partition / architecture an experiment uses.

    Parameters
    ----------
    scale:
        ``"paper"`` for the full Fig.-3 configuration (5 blocks, 32x32
        images) or ``"laptop"`` for the scaled-down configuration used by
        tests and quick benchmark runs.
    num_samples:
        Total synthetic dataset size (train + test).
    num_end_systems:
        Number of end-systems M the data is partitioned across.
    partition:
        Partitioner name (``iid``, ``dirichlet``, ``label_shard``,
        ``quantity_skew``).
    partition_kwargs:
        Extra arguments for the partitioner (e.g. ``{"alpha": 0.3}``).
    epochs / batch_size:
        Training budget shared by every configuration in the experiment.
    seed:
        Master seed.
    """

    scale: str = "laptop"
    num_samples: int = 1200
    num_end_systems: int = 4
    partition: str = "iid"
    partition_kwargs: Dict[str, float] = field(default_factory=dict)
    test_fraction: float = 0.25
    epochs: int = 6
    batch_size: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.scale not in {"paper", "laptop"}:
            raise ValueError(f"scale must be 'paper' or 'laptop', got {self.scale!r}")
        if self.num_end_systems <= 0:
            raise ValueError("num_end_systems must be positive")
        if self.num_samples < 10 * self.num_end_systems:
            raise ValueError("num_samples is too small for the requested number of end-systems")

    @property
    def image_size(self) -> int:
        """Input image side length for this scale."""
        return 32 if self.scale == "paper" else 16

    def architecture(self) -> CNNArchitecture:
        """CNN architecture matching the scale."""
        if self.scale == "paper":
            return paper_cnn_architecture()
        return tiny_cnn_architecture(image_size=self.image_size, num_blocks=3,
                                     base_filters=8, dense_units=64)

    @classmethod
    def paper(cls, **overrides) -> "WorkloadSpec":
        """The full-size workload (minutes of compute on a laptop)."""
        defaults = dict(scale="paper", num_samples=6000, epochs=15, batch_size=64)
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def laptop(cls, **overrides) -> "WorkloadSpec":
        """The quick workload used by tests and default benchmark runs."""
        return cls(**overrides)

    def to_job_workload(self, client_blocks: int = 1) -> JobWorkload:
        """The public-API equivalent of this workload description.

        ``epochs`` and ``batch_size`` live on the experiment side (they
        belong to ``TrainingConfig`` in the public schema); everything
        else maps one-to-one onto :class:`repro.api.JobWorkload`.
        """
        return JobWorkload(
            scale=self.scale,
            num_samples=self.num_samples,
            num_end_systems=self.num_end_systems,
            partition=self.partition,
            partition_kwargs=dict(self.partition_kwargs),
            test_fraction=self.test_fraction,
            client_blocks=client_blocks,
            seed=self.seed,
        )


def build_workload(spec: WorkloadSpec) -> Dict[str, object]:
    """Materialize a workload: dataset splits, per-end-system shards and transforms.

    Compatibility shim over :func:`repro.api.build_workload` — the single
    materialization implementation now lives in the public API so the
    experiment harness, the run-server worker and direct-Python users all
    build bit-identical deployments from the same description.  Returns
    the historical dictionary shape with keys ``train``, ``test``,
    ``parts`` (list of per-end-system subsets), ``architecture`` and
    ``normalize``.
    """
    pieces = _materialize_workload(spec.to_job_workload())
    return {
        "dataset": pieces.dataset,
        "train": pieces.train,
        "test": pieces.test,
        "parts": pieces.parts,
        "architecture": pieces.architecture,
        "normalize": pieces.normalize,
    }


@dataclass
class ExperimentResult:
    """Tabular output of one experiment, in the paper's row layout."""

    name: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    paper_reference: Optional[Dict[str, object]] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def add_row(self, row: Sequence[object]) -> None:
        """Append one result row (must match ``headers`` in length)."""
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells but the experiment defines "
                f"{len(self.headers)} headers"
            )
        self.rows.append(list(row))

    def to_table(self, float_format: str = "{:.2f}") -> str:
        """Render the result as an aligned plain-text table."""
        return format_table(self.headers, self.rows, float_format=float_format,
                            title=self.name)

    def column(self, header: str) -> List[object]:
        """Extract one column by header name."""
        try:
            index = list(self.headers).index(header)
        except ValueError:
            raise KeyError(f"no column named {header!r}; headers: {list(self.headers)}") from None
        return [row[index] for row in self.rows]

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation of the full result."""
        return {
            "name": self.name,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "paper_reference": self.paper_reference,
            "metadata": self.metadata,
        }
