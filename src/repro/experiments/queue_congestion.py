"""Queue-congestion sweep: bounded queues under a 100+ client star.

The paper's parameter-scheduling queue only matters once it can fill up:
with hundreds of geo-distributed end-systems racing one server, the
queue's capacity and its overflow behaviour decide how much work is shed,
who gets starved and what that costs in accuracy.  This experiment sweeps

* **queue capacity** (including unbounded as the reference),
* **backpressure policy** — ``"drop"`` (overflowing arrivals are shed and
  the client is NACKed) vs ``"block"`` (admission control defers sends
  until the queue has room), and
* **scheduling policy** — who the server serves first once the queue is
  contended,

under a heterogeneous-latency star with (by default) 100 end-systems
training in asynchronous mode.  Reported per configuration: processed and
dropped message counts, deferred (blocked) sends, Jain's fairness index
over processed samples, mean queue wait, the mean queue-drop NACK delay
(the client learns of an overflow one *downlink delay* after it happens,
so far-away clients waste longer holding doomed activations), training
accuracy and the simulated completion time.  Leak detection is built in: a configuration
row is only emitted after asserting that no end-system is left holding a
pending activation, which is precisely the bug the bounded-queue path
used to have.

Expected shape: small capacities with ``drop`` shed a large fraction of
far-away clients' traffic (fairness falls with FIFO, less so with fair
policies), while ``block`` keeps every sample at the cost of simulated
time; unbounded queues reproduce the lossless baseline.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import TrainingConfig
from ..core.split import SplitSpec
from ..core.trainer import SpatioTemporalTrainer
from ..simnet.topology import star_topology
from ..utils.logging import get_logger
from .base import ExperimentResult, WorkloadSpec, build_workload

__all__ = ["run_queue_congestion"]

logger = get_logger("experiments.queue_congestion")

#: Queue capacities swept by default; ``None`` is the unbounded reference.
DEFAULT_CAPACITIES: Tuple[Optional[int], ...] = (4, 16, None)


def _spread_latencies(num_end_systems: int, near_s: float, far_s: float) -> List[float]:
    """Evenly spread one-way latencies from a nearby to a far-away client."""
    return list(np.linspace(near_s, far_s, num_end_systems))


def run_queue_congestion(
    workload: Optional[WorkloadSpec] = None,
    capacities: Sequence[Optional[int]] = DEFAULT_CAPACITIES,
    backpressures: Sequence[str] = ("drop", "block"),
    policies: Sequence[str] = ("fifo", "round_robin"),
    client_blocks: int = 1,
    max_in_flight: int = 1,
    server_step_time_s: float = 0.004,
    near_latency_s: float = 0.002,
    far_latency_s: float = 0.12,
) -> ExperimentResult:
    """Sweep queue capacity × backpressure × scheduling under congestion.

    Training runs in asynchronous mode for one pass over every client's
    local shard, with per-message server steps (``server_batching=False``)
    so queue occupancy actually builds up while the server is busy.
    Unbounded capacity is only paired with the ``"drop"`` label (the two
    backpressure policies are indistinguishable without a bound).
    """
    workload = workload if workload is not None else WorkloadSpec.laptop(
        num_end_systems=100, num_samples=2000, epochs=1, batch_size=16,
    )
    pieces = build_workload(workload)
    architecture = pieces["architecture"]
    spec = SplitSpec(architecture, client_blocks=client_blocks)
    latencies = _spread_latencies(workload.num_end_systems, near_latency_s, far_latency_s)

    result = ExperimentResult(
        name="Queue congestion — bounded scheduling queues under a "
             f"{workload.num_end_systems}-client star",
        headers=[
            "capacity",
            "backpressure",
            "policy",
            "processed_batches",
            "queue_dropped",
            "link_dropped",
            "blocked_sends",
            "fairness_index",
            "mean_queue_wait_ms",
            "mean_nack_delay_ms",
            "train_accuracy_pct",
            "simulated_time_s",
        ],
        paper_reference={
            "figure": "2 (queue discussion)",
            "claim": "a queue data structure needs to be defined to absorb "
                     "late/sparse arrivals from geo-distributed end-systems",
        },
        metadata={
            "workload": workload.__dict__.copy(),
            "capacities": [capacity for capacity in capacities],
            "backpressures": list(backpressures),
            "policies": list(policies),
            "client_blocks": client_blocks,
            "max_in_flight": max_in_flight,
            "server_step_time_s": server_step_time_s,
            "latency_range_s": [near_latency_s, far_latency_s],
        },
    )

    for policy in policies:
        for capacity in capacities:
            # Without a bound the backpressure policy is moot: run once.
            sweep_backpressures = backpressures if capacity is not None else ("drop",)
            for backpressure in sweep_backpressures:
                topology = star_topology(
                    workload.num_end_systems,
                    latencies_s=latencies,
                    seed=workload.seed,
                )
                config = TrainingConfig(
                    epochs=1,
                    batch_size=workload.batch_size,
                    queue_policy=policy,
                    max_queue_size=capacity,
                    queue_backpressure=backpressure,
                    mode="asynchronous",
                    max_in_flight=max_in_flight,
                    server_step_time_s=server_step_time_s,
                    seed=workload.seed,
                    # Per-message steps let the queue actually fill while
                    # the server is busy; batched draining would empty it
                    # every step and hide the contention being measured.
                    server_batching=False,
                )
                trainer = SpatioTemporalTrainer(
                    spec, pieces["parts"], config, topology=topology,
                    train_transform=pieces["normalize"],
                )
                history = trainer.train()
                leaked = sum(
                    end_system.pending_batches for end_system in trainer.end_systems
                )
                if leaked:
                    raise AssertionError(
                        f"{leaked} pending activations leaked under capacity="
                        f"{capacity} backpressure={backpressure!r} policy={policy!r}"
                    )
                queue_dropped = history.queue_stats["dropped"]
                logger.info(
                    "congestion policy=%s capacity=%s backpressure=%s dropped=%d "
                    "blocked=%d fairness=%.3f",
                    policy, capacity, backpressure, queue_dropped,
                    history.queue_stats["blocked_sends"],
                    history.queue_stats["fairness_index"],
                )
                result.add_row([
                    "unbounded" if capacity is None else capacity,
                    backpressure,
                    policy,
                    trainer.server.batches_processed,
                    queue_dropped,
                    history.traffic["dropped_messages"],
                    history.queue_stats["blocked_sends"],
                    history.queue_stats["fairness_index"],
                    1e3 * history.queue_stats["mean_waiting_time_s"],
                    1e3 * history.queue_stats["mean_nack_delay_s"],
                    100.0 * history.final_train_accuracy,
                    history.total_simulated_time,
                ])
    return result
