"""Ablation — accuracy vs. number of end-systems M.

The paper's headline claim is that *multiple* end-systems can share one
centralized server ("multiple end-systems are not considered in split
learning research contributions, yet") while keeping near-optimal
accuracy.  This sweep fixes the cut (L1 by default, the paper's main
privacy-preserving configuration) and varies the number of end-systems
the same total dataset is partitioned across.

Because the total data volume is constant, the server segment always sees
the same number of samples; what changes is that each end-system's local
first block is trained on a ``1/M`` fraction of the data.  The expected
shape is a slow decline in accuracy as M grows — the spatial analogue of
Table I's depth tradeoff.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from ..core.config import TrainingConfig
from ..core.split import SplitSpec
from ..core.trainer import SpatioTemporalTrainer
from ..utils.logging import get_logger
from .base import ExperimentResult, WorkloadSpec, build_workload

__all__ = ["run_clients_sweep"]

logger = get_logger("experiments.clients_sweep")


def run_clients_sweep(
    workload: Optional[WorkloadSpec] = None,
    num_end_systems: Sequence[int] = (1, 2, 4, 8),
    client_blocks: int = 1,
    queue_policy: str = "fifo",
) -> ExperimentResult:
    """Sweep the number of end-systems at a fixed cut."""
    workload = workload if workload is not None else WorkloadSpec.laptop()
    result = ExperimentResult(
        name="Ablation — accuracy vs. number of end-systems (fixed cut)",
        headers=[
            "num_end_systems",
            "client_blocks",
            "accuracy_pct",
            "mean_per_system_accuracy_pct",
            "min_per_system_accuracy_pct",
            "samples_per_end_system",
            "uplink_megabytes",
        ],
        paper_reference={
            "claim": "multiple end-systems sharing one server retain near-optimal accuracy",
        },
        metadata={
            "workload": workload.__dict__.copy(),
            "client_blocks": client_blocks,
            "queue_policy": queue_policy,
        },
    )

    for count in num_end_systems:
        scaled = replace(workload, num_end_systems=count)
        pieces = build_workload(scaled)
        architecture = pieces["architecture"]
        spec = SplitSpec(architecture, client_blocks=client_blocks)
        config = TrainingConfig(
            epochs=scaled.epochs,
            batch_size=scaled.batch_size,
            queue_policy=queue_policy,
            seed=scaled.seed,
            # Keep the paper's per-message server updates so accuracy is
            # comparable across client counts.
            server_batching=False,
        )
        trainer = SpatioTemporalTrainer(
            spec, pieces["parts"], config, train_transform=pieces["normalize"]
        )
        history = trainer.train(test_dataset=pieces["test"], evaluate_every=10 ** 6)
        per_system = list((history.per_system_accuracy or {}).values())
        accuracy_pct = 100.0 * (history.final_test_accuracy or 0.0)
        logger.info("clients_sweep M=%d accuracy=%.2f%%", count, accuracy_pct)
        result.add_row([
            count,
            client_blocks,
            accuracy_pct,
            100.0 * (sum(per_system) / len(per_system)) if per_system else accuracy_pct,
            100.0 * min(per_system) if per_system else accuracy_pct,
            min(len(part) for part in pieces["parts"]),
            history.traffic.get("uplink_megabytes", 0.0),
        ])
    return result
