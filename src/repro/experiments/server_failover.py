"""Server-failover sweep: dependability under shard churn.

The DSN paper is about *dependable* distributed training, yet its
platform — and the PR 4 cluster that scales it — assumed every server
shard lives forever.  This experiment injects shard crashes into a
sharded deployment and sweeps the four axes that decide how much an
outage costs:

* **failure intensity** — no failures (the control row), then stochastic
  churn at a few MTBF settings (mean exponential up-time per shard, with
  a fixed MTTR);
* **checkpoint interval** — ``None`` (PR 5 behaviour: recovery falls
  back to the last inter-server sync snapshot, or the initial weights
  before the first sync) vs. periodic durable checkpoints, which bound
  the recovery point at the checkpoint cadence in exchange for write
  overhead;
* **failover policy** — ``"rebalance"`` (a dead shard's clients are
  spread over the survivors by the load-aware assigner and failed back
  on recovery) vs. ``"standby"`` (clients park until their home shard
  returns);
* **sync mode** — the blocking ``"average"`` rendezvous (which must skip
  dead shards to avoid hanging) vs. non-blocking ``"staleness"`` gossip.

Reported per configuration: crash/recovery counts, client reassignments,
work shed at crash time (leak-free, via ``notify_drop``), cumulative
shard downtime, the **recovery-point objective** actually achieved
(simulated seconds and samples of shard work lost per crash, split by
which artifact recovery restored from), the checkpoint write overhead
(count and wall-clock spent serializing), final train/test accuracy and
the simulated completion time.

Expected shape: the control rows reproduce the ``server_sharding``
behaviour, and with checkpointing enabled they price its pure overhead
(writes happen, nothing is ever restored).  Under churn, ``rebalance``
trades extra reassignment traffic for steady throughput while
``standby`` loses the dead band's progress for the whole outage; adding
checkpoints shifts recoveries from the sync/initial fallbacks onto the
checkpoint path and shrinks ``rpo_lost_s`` towards the checkpoint
cadence — the dependability claim, quantified.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.config import TrainingConfig
from ..core.split import SplitSpec
from ..core.trainer import SpatioTemporalTrainer
from ..simnet.topology import multi_hub_star_topology
from ..utils.logging import get_logger
from .base import ExperimentResult, WorkloadSpec, build_workload

__all__ = ["run_server_failover"]

logger = get_logger("experiments.server_failover")

#: Mean time between failures settings swept by default; ``None`` is the
#: failure-free control.
DEFAULT_MTBF_S = (None, 0.5, 0.1)

#: Checkpoint cadences swept by default; ``None`` is the PR 5 behaviour
#: (sync-snapshot/initial-weights recovery only, zero write overhead).
DEFAULT_CHECKPOINT_S = (None, 0.02)


def run_server_failover(
    workload: Optional[WorkloadSpec] = None,
    mtbf_values_s: Sequence[Optional[float]] = DEFAULT_MTBF_S,
    mttr_s: float = 0.05,
    checkpoint_every_values_s: Sequence[Optional[float]] = DEFAULT_CHECKPOINT_S,
    failover_policies: Sequence[str] = ("rebalance", "standby"),
    sync_modes: Sequence[str] = ("average", "staleness"),
    num_servers: int = 2,
    shard_assigner: str = "latency_aware",
    server_sync_every: int = 1,
    failover_delay_s: float = 0.002,
    client_blocks: int = 1,
    near_latency_s: float = 0.002,
    far_latency_s: float = 0.08,
    inter_server_latency_s: float = 0.005,
) -> ExperimentResult:
    """Sweep MTBF x checkpoint interval x policy x sync mode on a star.

    Training runs in synchronous mode so both sync modes are admissible;
    the stochastic failure streams derive from the workload seed, so the
    same churn pattern hits every checkpoint/policy/sync-mode combination
    at a given MTBF — the comparison isolates the *response* to failures,
    not the failures themselves.  Checkpointing rows use the in-memory
    store: the overhead of serializing the snapshot is what is being
    measured, not the filesystem underneath it.
    """
    workload = workload if workload is not None else WorkloadSpec.laptop(
        num_end_systems=40, num_samples=1600, epochs=2, batch_size=16,
    )
    pieces = build_workload(workload)
    spec = SplitSpec(pieces["architecture"], client_blocks=client_blocks)
    latencies = list(np.linspace(near_latency_s, far_latency_s,
                                 workload.num_end_systems))

    result = ExperimentResult(
        name="Server failover — dependability under shard churn "
             f"({workload.num_end_systems}-client star, {num_servers} shards)",
        headers=[
            "mtbf_s",
            "policy",
            "sync_mode",
            "ckpt_s",
            "crashes",
            "recoveries",
            "reassigned",
            "shed_msgs",
            "downtime_s",
            "rpo_lost_s",
            "rpo_samples",
            "recovered_from",
            "ckpts",
            "ckpt_wall_ms",
            "train_accuracy_pct",
            "test_accuracy_pct",
            "simulated_time_s",
        ],
        paper_reference={
            "figure": "dependability claim (title/Sec. I) — failover extension",
            "claim": "the platform must keep training through end-system and "
                     "server faults; shard failover with leak-free shedding, "
                     "durable checkpoints and a bounded recovery point is the "
                     "server-side half of that",
        },
        metadata={
            "workload": workload.__dict__.copy(),
            "mtbf_values_s": list(mtbf_values_s),
            "mttr_s": mttr_s,
            "checkpoint_every_values_s": list(checkpoint_every_values_s),
            "failover_policies": list(failover_policies),
            "sync_modes": list(sync_modes),
            "num_servers": num_servers,
            "shard_assigner": shard_assigner,
            "server_sync_every": server_sync_every,
            "failover_delay_s": failover_delay_s,
            "latency_range_s": [near_latency_s, far_latency_s],
            "inter_server_latency_s": inter_server_latency_s,
        },
    )

    for mtbf_s in mtbf_values_s:
        for checkpoint_every_s in checkpoint_every_values_s:
            for sync_mode in sync_modes:
                for policy in failover_policies:
                    if mtbf_s is None and policy != failover_policies[0]:
                        # The failure-free control is policy-independent;
                        # one row per sync mode x checkpoint cadence is
                        # enough (the cadence still matters: it prices
                        # the pure write overhead).
                        continue
                    topology = multi_hub_star_topology(
                        workload.num_end_systems,
                        num_servers,
                        assigner=shard_assigner,
                        latencies_s=latencies,
                        inter_server_latency_s=inter_server_latency_s,
                        seed=workload.seed,
                    )
                    config = TrainingConfig(
                        epochs=workload.epochs,
                        batch_size=workload.batch_size,
                        num_servers=num_servers,
                        shard_assigner=shard_assigner,
                        server_sync_every=server_sync_every,
                        server_sync_mode=sync_mode,
                        failure_mtbf_s=mtbf_s,
                        failure_mttr_s=mttr_s,
                        failover_policy=policy,
                        failover_delay_s=failover_delay_s,
                        checkpoint_every_s=checkpoint_every_s,
                        seed=workload.seed,
                    )
                    trainer = SpatioTemporalTrainer(
                        spec, pieces["parts"], config, topology=topology,
                        train_transform=pieces["normalize"],
                    )
                    history = trainer.train(pieces["test"],
                                            evaluate_every=workload.epochs)
                    stats = trainer.engine.stats
                    # Leak-freedom is part of the experiment's contract:
                    # a crash must never leave a client waiting forever.
                    leaked = sum(es.pending_batches
                                 for es in trainer.end_systems)
                    if leaked:
                        raise AssertionError(
                            f"{leaked} pending activations leaked under "
                            f"churn (mtbf={mtbf_s}, policy={policy}, "
                            f"sync={sync_mode}, ckpt={checkpoint_every_s})"
                        )
                    queue_stats = history.queue_stats
                    downtime = queue_stats.get("total_downtime_s", 0.0)
                    recovered_from = "/".join(str(queue_stats.get(key, 0)) for key in (
                        "recoveries_from_checkpoint",
                        "recoveries_from_sync",
                        "recoveries_from_initial",
                    ))
                    logger.info(
                        "failover mtbf=%s ckpt=%s policy=%s sync=%s "
                        "crashes=%d reassigned=%d rpo=%.4fs acc=%.4f "
                        "sim_time=%.2fs",
                        mtbf_s, checkpoint_every_s, policy, sync_mode,
                        stats.shard_crashes, stats.clients_reassigned,
                        queue_stats.get("rpo_lost_s", 0.0),
                        history.final_train_accuracy,
                        history.total_simulated_time,
                    )
                    result.add_row([
                        mtbf_s if mtbf_s is not None else "inf",
                        policy if mtbf_s is not None else "-",
                        sync_mode,
                        checkpoint_every_s if checkpoint_every_s is not None else "off",
                        stats.shard_crashes,
                        stats.shard_recoveries,
                        stats.clients_reassigned,
                        stats.failover_dropped,
                        downtime,
                        queue_stats.get("rpo_lost_s", 0.0),
                        queue_stats.get("rpo_lost_samples", 0),
                        recovered_from,
                        queue_stats.get("checkpoints_written", 0),
                        1e3 * queue_stats.get("checkpoint_write_wall_s", 0.0),
                        100.0 * history.final_train_accuracy,
                        100.0 * (history.final_test_accuracy or 0.0),
                        history.total_simulated_time,
                    ])
    return result
