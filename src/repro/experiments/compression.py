"""Extension ablation — compressing or perturbing the smashed activations.

The paper ships raw float activations from every end-system to the server.
This ablation (called out as follow-up work in DESIGN.md) asks what happens
to the three quantities the system cares about — accuracy, uplink traffic
and privacy leakage — when the cut-layer traffic is

* quantized to 8 bits (:class:`~repro.core.compression.Uint8Quantizer`),
* sparsified to its top-k entries (:class:`~repro.core.compression.TopKSparsifier`), or
* clipped and noised DP-style (:class:`~repro.core.compression.GaussianNoisePerturbation`),

compared against the paper's uncompressed baseline.

Expected shape: 8-bit quantization is essentially free (large traffic
saving, negligible accuracy change); aggressive sparsification and noise
trade accuracy for traffic/privacy respectively.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..core.compression import ActivationTransform, get_transform
from ..core.config import TrainingConfig
from ..core.end_system import EndSystem
from ..core.privacy import LinearReconstructionAttack
from ..core.server import CentralServer
from ..core.split import SplitSpec
from ..data.loader import DataLoader
from ..nn.metrics import MetricTracker, accuracy
from ..utils.logging import get_logger
from ..utils.rng import SeedSequence
from .base import ExperimentResult, WorkloadSpec, build_workload

__all__ = ["run_compression", "DEFAULT_TRANSFORMS"]

logger = get_logger("experiments.compression")

#: (label, transform factory kwargs) pairs evaluated by default.
DEFAULT_TRANSFORMS: Sequence[Dict] = (
    {"name": "none"},
    {"name": "uint8"},
    {"name": "topk", "keep_fraction": 0.25},
    {"name": "gaussian_noise", "noise_multiplier": 0.25, "clip_norm": 5.0},
)


def _train_with_transform(
    workload: WorkloadSpec,
    pieces: Dict,
    spec: SplitSpec,
    transform: ActivationTransform,
) -> Dict[str, float]:
    """Train one split deployment where every uplink passes through ``transform``."""
    config = TrainingConfig(epochs=workload.epochs, batch_size=workload.batch_size,
                            seed=workload.seed, server_batching=False)
    seeds = SeedSequence(workload.seed)
    normalize = pieces["normalize"]
    end_systems = []
    for system_id, part in enumerate(pieces["parts"]):
        loader = DataLoader(part, batch_size=config.batch_size, shuffle=True,
                            transform=normalize, seed=config.seed + system_id)
        end_systems.append(EndSystem(
            system_id, loader, spec,
            optimizer_kwargs=config.client_optimizer_kwargs,
            seed=int(seeds.generator(f"client-{system_id}").integers(0, 2 ** 31)),
        ))
    server = CentralServer(
        spec, optimizer_kwargs=config.server_optimizer_kwargs,
        seed=int(seeds.generator("server").integers(0, 2 ** 31)),
    )

    uplink_bytes = 0
    tracker = MetricTracker()
    for epoch in range(config.epochs):
        iterators = {system.system_id: system.batches(epoch) for system in end_systems}
        active = set(iterators)
        while active:
            for system in end_systems:
                if system.system_id not in active:
                    continue
                try:
                    images, labels = next(iterators[system.system_id])
                except StopIteration:
                    active.discard(system.system_id)
                    continue
                message = system.forward_batch(images, labels)
                result = transform.apply(message.activations)
                message.activations = result.activations
                uplink_bytes += result.wire_bytes + message.labels.nbytes
                gradient = server.process(message)
                system.apply_gradient(gradient)
                tracker.update({"loss": gradient.loss, "accuracy": gradient.accuracy},
                               count=message.batch_size)

    # Evaluation: mean accuracy over end-system heads, as the trainer does.
    test_images, test_labels = pieces["test"].arrays()
    test_images = normalize(test_images)
    accuracies = []
    for system in end_systems:
        logits = server.predict(system.forward_inference(test_images))
        accuracies.append(accuracy(logits, test_labels))

    # Leakage: how well can a linear adversary invert what actually crossed
    # the wire (i.e. the transformed activations of end-system 0)?
    probe_raw, _ = pieces["test"].arrays()
    probe = probe_raw[:200]
    smashed = transform.apply(end_systems[0].forward_inference(normalize(probe))).activations
    split_index = probe.shape[0] // 2
    attack = LinearReconstructionAttack(ridge=1e-3).fit(smashed[:split_index], probe[:split_index])
    leakage = attack.evaluate(smashed[split_index:], probe[split_index:])

    return {
        "accuracy": float(np.mean(accuracies)),
        "train_accuracy": tracker.averages().get("accuracy", 0.0),
        "uplink_megabytes": uplink_bytes / 1e6,
        "reconstruction_nmse": leakage["reconstruction_nmse"],
    }


def run_compression(
    workload: Optional[WorkloadSpec] = None,
    transforms: Sequence[Dict] = DEFAULT_TRANSFORMS,
    client_blocks: int = 1,
) -> ExperimentResult:
    """Sweep cut-layer transforms and report accuracy / traffic / leakage.

    Runs under the float64 dtype policy: the compression ratios reported
    here (and the paper's uplink accounting) are relative to a 64-bit
    float wire format, so the sweep pins that baseline regardless of the
    library's float32 training default.
    """
    from ..nn.dtype import default_dtype

    with default_dtype(np.float64):
        return _run_compression_sweep(workload, transforms, client_blocks)


def _run_compression_sweep(
    workload: Optional[WorkloadSpec],
    transforms: Sequence[Dict],
    client_blocks: int,
) -> ExperimentResult:
    workload = workload if workload is not None else WorkloadSpec.laptop()
    pieces = build_workload(workload)
    spec = SplitSpec(pieces["architecture"], client_blocks=client_blocks)

    result = ExperimentResult(
        name="Extension — compressing / perturbing the smashed activations",
        headers=[
            "transform",
            "accuracy_pct",
            "uplink_megabytes",
            "uplink_vs_baseline",
            "reconstruction_nmse",
        ],
        paper_reference={
            "claim": "the paper ships raw activations; this ablation explores the "
                     "accuracy / traffic / privacy trade-off of compressing them",
        },
        metadata={"workload": workload.__dict__.copy(), "client_blocks": client_blocks},
    )

    baseline_megabytes: Optional[float] = None
    for transform_spec in transforms:
        kwargs = dict(transform_spec)
        name = kwargs.pop("name")
        transform = get_transform(name, **kwargs)
        metrics = _train_with_transform(workload, pieces, spec, transform)
        if baseline_megabytes is None:
            baseline_megabytes = metrics["uplink_megabytes"]
        label = name if not kwargs else f"{name}({', '.join(f'{k}={v}' for k, v in kwargs.items())})"
        logger.info("compression transform=%s accuracy=%.2f%%", label,
                    100.0 * metrics["accuracy"])
        result.add_row([
            label,
            100.0 * metrics["accuracy"],
            metrics["uplink_megabytes"],
            metrics["uplink_megabytes"] / max(baseline_megabytes, 1e-12),
            metrics["reconstruction_nmse"],
        ])
    return result
