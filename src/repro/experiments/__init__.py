"""Experiment harness: one module per paper table/figure plus ablations."""

from .base import ExperimentResult, WorkloadSpec, build_workload
from .baselines_comparison import run_baselines_comparison
from .chaos_matrix import run_chaos_matrix
from .clients_sweep import run_clients_sweep
from .compression import run_compression
from .figure4 import PAPER_FIGURE4, run_figure4
from .queue_congestion import run_queue_congestion
from .registry import (
    REGISTRY,
    ExperimentEntry,
    get_experiment,
    list_experiments,
    run_experiment,
)
from .server_failover import run_server_failover
from .server_sharding import run_server_sharding
from .staleness import run_staleness
from .table1 import PAPER_TABLE1, run_table1

__all__ = [
    "ExperimentResult",
    "WorkloadSpec",
    "build_workload",
    "run_table1",
    "run_figure4",
    "run_staleness",
    "run_clients_sweep",
    "run_baselines_comparison",
    "run_chaos_matrix",
    "run_compression",
    "run_queue_congestion",
    "run_server_failover",
    "run_server_sharding",
    "PAPER_TABLE1",
    "PAPER_FIGURE4",
    "REGISTRY",
    "ExperimentEntry",
    "list_experiments",
    "get_experiment",
    "run_experiment",
]
