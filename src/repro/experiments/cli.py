"""Command-line entry point: ``repro-experiments``.

Examples
--------
List everything that can be reproduced::

    repro-experiments list

Reproduce Table I on its canonical workload (each experiment defines its
own default — the congestion and sharding sweeps use a 100+ client
star; pass any workload flag to override)::

    repro-experiments run table1

Reproduce Table I at the paper's full scale (minutes, not seconds)::

    repro-experiments run table1 --scale paper

Run every experiment and write the tables to a directory::

    repro-experiments run-all --output-dir results/

Drive a run-server (``python -m repro.server``) over the public job API::

    repro-experiments job submit --name demo --wait
    repro-experiments job metrics job-0001-demo
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from dataclasses import replace
from pathlib import Path
from typing import List, Optional

from ..api import ApiError, JobSpec, RunClient, ServerUnavailable
from ..backend import available_backends, get_backend, set_backend
from ..utils.logging import set_verbosity
from .base import WorkloadSpec
from .registry import get_experiment, list_experiments, run_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of 'Spatio-Temporal Split Learning' (DSN 2021).",
    )
    parser.add_argument("--verbose", "-v", action="store_true", help="enable info-level logging")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    run_parser = subparsers.add_parser("run", help="run a single experiment")
    run_parser.add_argument("experiment", help="experiment name (see 'list')")
    _add_workload_arguments(run_parser)

    run_all_parser = subparsers.add_parser("run-all", help="run every registered experiment")
    _add_workload_arguments(run_all_parser)
    run_all_parser.add_argument(
        "--output-dir", type=Path, default=None,
        help="directory to write per-experiment .txt and .json results into",
    )

    job_parser = subparsers.add_parser(
        "job", help="talk to a run-server over the /v1 job API")
    job_parser.add_argument(
        "--server", default="http://127.0.0.1:8321",
        help="run-server base URL (default: http://127.0.0.1:8321)")
    job_subparsers = job_parser.add_subparsers(dest="job_command", required=True)

    submit_parser = job_subparsers.add_parser(
        "submit", help="submit a training job (JSON spec file or a preset)")
    submit_parser.add_argument(
        "--spec", type=Path, default=None,
        help="JobSpec JSON file (see JobSpec.to_json_dict); omit for the "
             "fast-debug preset")
    submit_parser.add_argument("--name", default="cli-job", help="job name")
    submit_parser.add_argument("--epochs", type=int, default=None,
                               help="override the preset's epoch budget")
    submit_parser.add_argument("--wait", action="store_true",
                               help="block until the job reaches a terminal state")

    for verb, help_text in (
        ("status", "show one job's status record"),
        ("pause", "kill the worker; the job resumes replay-exact later"),
        ("resume", "restart a paused/interrupted/failed job from its checkpoint"),
        ("cancel", "terminally stop a job"),
        ("metrics", "print the job's metrics rows (JSONL)"),
        ("result", "print the finished job's result summary"),
        ("wait", "block until the job reaches a terminal state"),
    ):
        verb_parser = job_subparsers.add_parser(verb, help=help_text)
        verb_parser.add_argument("job_id", help="job identifier (job-NNNN-...)")

    job_subparsers.add_parser("list", help="list every job on the server")
    return parser


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", choices=["laptop", "paper"], default=None,
                        help="workload size: quick laptop run or full paper-scale run "
                             "(default: the experiment's canonical workload for 'run', "
                             "laptop for 'run-all')")
    parser.add_argument("--num-samples", type=int, default=None,
                        help="override the synthetic dataset size")
    parser.add_argument("--end-systems", type=int, default=None,
                        help="override the number of end-systems M")
    parser.add_argument("--epochs", type=int, default=None, help="override the epoch budget")
    parser.add_argument("--batch-size", type=int, default=None, help="override the batch size")
    parser.add_argument("--seed", type=int, default=None,
                        help="master random seed (default: 0)")
    parser.add_argument("--backend", choices=available_backends(), default=None,
                        help="compute backend for the run (default: leave the "
                             f"process default, currently {get_backend().name!r})")
    parser.add_argument("--json", action="store_true", help="print JSON instead of a table")


def _workload_from_args(args: argparse.Namespace,
                        required: bool = True) -> Optional[WorkloadSpec]:
    """Build the workload the CLI flags describe.

    With ``required=False`` (the single-experiment ``run`` command) and
    no workload flag given, returns ``None`` so the experiment runs on
    its **own canonical workload** — e.g. ``queue_congestion`` and
    ``server_sharding`` default to a 100+ client star that a generic
    4-client override would defeat.
    """
    if getattr(args, "backend", None) is not None:
        set_backend(args.backend)
    overridden = (
        args.scale is not None
        or args.num_samples is not None
        or args.end_systems is not None
        or args.epochs is not None
        or args.batch_size is not None
        or args.seed is not None
    )
    if not required and not overridden:
        return None
    factory = WorkloadSpec.paper if args.scale == "paper" else WorkloadSpec.laptop
    overrides = {}
    if args.num_samples is not None:
        overrides["num_samples"] = args.num_samples
    if args.end_systems is not None:
        overrides["num_end_systems"] = args.end_systems
    if args.epochs is not None:
        overrides["epochs"] = args.epochs
    if args.batch_size is not None:
        overrides["batch_size"] = args.batch_size
    overrides["seed"] = args.seed if args.seed is not None else 0
    return factory(**overrides)


def _command_list() -> int:
    for entry in list_experiments():
        print(f"{entry.name:<16s} {entry.paper_artifact:<28s} {entry.description}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    entry = get_experiment(args.experiment)
    workload = _workload_from_args(args, required=False)
    if workload is None:
        result = entry.runner()
    else:
        result = entry.runner(workload=workload)
    if args.json:
        print(json.dumps(result.as_dict(), indent=2, default=str))
    else:
        print(result.to_table())
    return 0


def _command_run_all(args: argparse.Namespace) -> int:
    workload = _workload_from_args(args)
    output_dir: Optional[Path] = args.output_dir
    if output_dir is not None:
        output_dir.mkdir(parents=True, exist_ok=True)
    for entry in list_experiments():
        result = run_experiment(entry.name, workload=workload)
        table = result.to_table()
        print(table)
        print()
        if output_dir is not None:
            (output_dir / f"{entry.name}.txt").write_text(table + "\n")
            (output_dir / f"{entry.name}.json").write_text(
                json.dumps(result.as_dict(), indent=2, default=str) + "\n"
            )
    return 0


def _command_job(args: argparse.Namespace) -> int:
    """Drive a run-server through the :mod:`repro.api` client SDK."""
    client = RunClient(args.server)
    try:
        if args.job_command == "submit":
            if args.spec is not None:
                spec = JobSpec.from_json_dict(
                    json.loads(args.spec.read_text()))
                if args.epochs is not None:
                    spec = replace(
                        spec, config=replace(spec.config, epochs=args.epochs))
            else:
                overrides = {} if args.epochs is None else {"epochs": args.epochs}
                spec = JobSpec.fast_debug(name=args.name, **overrides)
            job_id = client.submit(spec)
            print(job_id)
            if args.wait:
                record = client.wait(job_id)
                print(json.dumps(record, indent=2))
                return 0 if record.get("state") == "completed" else 1
            return 0
        if args.job_command == "list":
            for record in client.jobs():
                print(f"{record['job_id']:<28s} {record['state']:<12s} "
                      f"epochs {record.get('epochs_completed', 0)}"
                      f"/{record.get('epochs_total', '?')}")
            return 0
        if args.job_command == "metrics":
            sys.stdout.write(client.metrics_raw(args.job_id).decode("utf-8"))
            return 0
        if args.job_command == "wait":
            record = client.wait(args.job_id)
            print(json.dumps(record, indent=2))
            return 0 if record.get("state") == "completed" else 1
        action = {
            "status": client.status,
            "pause": client.pause,
            "resume": client.resume,
            "cancel": client.cancel,
            "result": client.result,
        }[args.job_command]
        print(json.dumps(action(args.job_id), indent=2, default=str))
        return 0
    except ServerUnavailable as exc:
        print(f"error: cannot reach run-server at {args.server}: {exc}",
              file=sys.stderr)
        return 1
    except ApiError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (returns a process exit code)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        set_verbosity(logging.INFO)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "run-all":
        return _command_run_all(args)
    if args.command == "job":
        return _command_job(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
