"""``RunClient`` — the small SDK over the run-server's versioned REST API.

Stdlib-only (``urllib``), synchronous, and deliberately thin: every
method maps to one endpoint of :mod:`repro.server`'s ``/v1`` surface.
The experiments CLI's job commands, the server's own tests and the smoke
script all drive the server through this class, so the HTTP contract has
one client-side implementation.

Errors come back as :class:`ApiError` carrying the HTTP status and the
server's structured ``{"error": ...}`` body; connection-level failures
surface as :class:`ServerUnavailable` so callers can distinguish "the
server said no" from "there is no server".
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterable, List, Optional

__all__ = ["ApiError", "ServerUnavailable", "RunClient", "TERMINAL_STATES"]

#: Job states from which no further transition happens on its own.
TERMINAL_STATES = ("completed", "failed", "cancelled")


class ApiError(Exception):
    """The server answered with an error status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServerUnavailable(Exception):
    """No server answered at the configured address."""


class RunClient:
    """Typed client for one run-server instance.

    Parameters
    ----------
    base_url:
        Server address, e.g. ``http://127.0.0.1:8321`` (with or without
        a trailing slash; the ``/v1`` prefix is added here).
    timeout_s:
        Per-request socket timeout.
    """

    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 raw: bool = False) -> Any:
        url = f"{self.base_url}/v1{path}"
        payload = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            url, data=payload, method=method,
            headers={"Content-Type": "application/json"} if payload else {})
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                data = response.read()
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", errors="replace")
            try:
                parsed = json.loads(detail)
                detail = str(parsed.get("error", detail))
            except (json.JSONDecodeError, AttributeError):
                pass
            raise ApiError(exc.code, detail) from exc
        except urllib.error.URLError as exc:
            raise ServerUnavailable(
                f"no run-server reachable at {self.base_url}: {exc.reason}"
            ) from exc
        if raw:
            return data
        return json.loads(data) if data else {}

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def health(self) -> Dict[str, Any]:
        """``GET /v1/healthz`` — server liveness + API version."""
        result = self._request("GET", "/healthz")
        assert isinstance(result, dict)
        return result

    def submit(self, spec: Any) -> str:
        """``POST /v1/jobs`` — submit a JobSpec; returns the job id.

        ``spec`` may be a :class:`~repro.api.jobspec.JobSpec` or an
        already-serialized payload dict.
        """
        payload = spec.to_json_dict() if hasattr(spec, "to_json_dict") else spec
        result = self._request("POST", "/jobs", body=payload)
        return str(result["job_id"])

    def jobs(self) -> List[Dict[str, Any]]:
        """``GET /v1/jobs`` — every known job's status record."""
        result = self._request("GET", "/jobs")
        jobs = result.get("jobs", [])
        assert isinstance(jobs, list)
        return jobs

    def status(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>`` — one job's reconciled status record."""
        result = self._request("GET", f"/jobs/{job_id}")
        assert isinstance(result, dict)
        return result

    def pause(self, job_id: str) -> Dict[str, Any]:
        """``POST /v1/jobs/<id>/pause`` — stop the worker, keep the job."""
        return dict(self._request("POST", f"/jobs/{job_id}/pause"))

    def resume(self, job_id: str) -> Dict[str, Any]:
        """``POST /v1/jobs/<id>/resume`` — restart from the newest checkpoint."""
        return dict(self._request("POST", f"/jobs/{job_id}/resume"))

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """``POST /v1/jobs/<id>/cancel`` — kill the worker, end the job."""
        return dict(self._request("POST", f"/jobs/{job_id}/cancel"))

    def metrics(self, job_id: str, since: int = 0) -> List[Dict[str, Any]]:
        """``GET /v1/jobs/<id>/metrics`` — flushed metric rows.

        ``since`` skips rows already seen (poll with ``since=len(seen)``
        to stream increments).
        """
        result = self._request("GET", f"/jobs/{job_id}/metrics?since={int(since)}")
        rows = result.get("rows", [])
        assert isinstance(rows, list)
        return rows

    def metrics_raw(self, job_id: str) -> bytes:
        """Raw ``metrics.jsonl`` bytes — byte-identical to the run's export."""
        data = self._request("GET", f"/jobs/{job_id}/metrics?raw=1", raw=True)
        assert isinstance(data, bytes)
        return data

    def snapshot(self, job_id: str) -> Dict[str, Any]:
        """Flat ``{series: value}`` view of the newest flushed row."""
        result = self._request("GET", f"/jobs/{job_id}/metrics?snapshot=1")
        snapshot = result.get("snapshot", {})
        assert isinstance(snapshot, dict)
        return snapshot

    def report(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>/report`` — the ``repro.obs report`` payload."""
        return dict(self._request("GET", f"/jobs/{job_id}/report"))

    def result(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>/result`` — final history (finished jobs)."""
        return dict(self._request("GET", f"/jobs/{job_id}/result"))

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def wait(self, job_id: str,
             states: Iterable[str] = TERMINAL_STATES,
             timeout_s: float = 300.0,
             poll_s: float = 0.2) -> Dict[str, Any]:
        """Poll ``status`` until the job reaches one of ``states``.

        Returns the final status record; raises ``TimeoutError`` if the
        deadline passes first.  (``time.monotonic`` — this is host-side
        control-plane timing, not simulation time.)
        """
        wanted = set(states)
        deadline = time.monotonic() + timeout_s
        while True:
            record = self.status(job_id)
            if record.get("state") in wanted:
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record.get('state')!r} after "
                    f"{timeout_s:.0f}s (wanted {sorted(wanted)})")
            time.sleep(poll_s)
