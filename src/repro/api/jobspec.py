"""The versioned public job schema: ``JobSpec`` = workload + config.

A JobSpec is the *complete*, self-contained description of a training
job — everything a worker process needs to rebuild the deployment from
nothing: the synthetic workload (dataset size, partitioning, CNN
architecture scale, split cut) and the full
:class:`~repro.core.config.TrainingConfig`.  It is what ``POST
/v1/jobs`` accepts, what the worker reads back from disk, and what
direct-Python users hand to :func:`repro.api.run_job`.

Three design rules, enforced here:

* **Versioned.**  Every payload carries ``schema_version`` (and the
  nested config carries its own); readers reject versions newer than
  they understand instead of misreading them.
* **Strict.**  Unknown keys are rejected with their names — a typo'd
  knob must fail submission, not silently train with defaults.
* **Round-trip exact.**  ``JobSpec.from_json_dict(spec.to_json_dict())``
  reconstructs an equal spec, through JSON, with every value revalidated
  by the same ``__post_init__`` validators direct construction uses.
  The golden fixture in ``tests/api`` pins the serialized form so any
  schema drift is a reviewed diff.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Mapping, Optional

from ..core.config import TrainingConfig

__all__ = ["JOBSPEC_SCHEMA_VERSION", "JobWorkload", "JobSpec"]

#: Version of the JobSpec JSON schema (the envelope; the nested config
#: payload is versioned independently by ``CONFIG_SCHEMA_VERSION``).
JOBSPEC_SCHEMA_VERSION = 1

#: Workload presets: image side length and architecture knobs per scale.
_SCALES = ("laptop", "paper")


def _reject_unknown_keys(payload: Mapping[str, Any], known: set,
                         what: str) -> None:
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ValueError(
            f"unknown {what} keys: {', '.join(unknown)} "
            "(schema is strict; remove or rename them)"
        )


@dataclass
class JobWorkload:
    """Deterministic description of a job's dataset, partition and model.

    Mirrors the experiment harness's ``WorkloadSpec`` (same presets, same
    synthetic dataset) plus the split cut, so a JobSpec fully determines
    the deployment.  Everything is derived from ``seed`` — two workers
    materializing the same workload build bit-identical datasets, which
    is what makes crash-resumed jobs replay-exact.
    """

    scale: str = "laptop"
    num_samples: int = 1200
    num_end_systems: int = 4
    partition: str = "iid"
    partition_kwargs: Dict[str, float] = field(default_factory=dict)
    test_fraction: float = 0.25
    client_blocks: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.scale not in _SCALES:
            raise ValueError(
                f"scale must be one of {', '.join(_SCALES)}, got {self.scale!r}")
        if self.num_end_systems <= 0:
            raise ValueError("num_end_systems must be positive")
        if self.num_samples < 10 * self.num_end_systems:
            raise ValueError(
                "num_samples is too small for the requested number of "
                "end-systems")
        if not 0.0 < self.test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        if self.client_blocks < 0:
            raise ValueError("client_blocks must be non-negative")

    def to_json_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "JobWorkload":
        if not isinstance(payload, Mapping):
            raise TypeError(
                f"workload payload must be a mapping, got "
                f"{type(payload).__name__}")
        data = dict(payload)
        _reject_unknown_keys(
            data, {field_info.name for field_info in fields(cls)},
            "JobWorkload")
        return cls(**data)


@dataclass
class JobSpec:
    """One submittable training job: name + workload + config."""

    name: str = "job"
    workload: JobWorkload = field(default_factory=JobWorkload)
    config: TrainingConfig = field(default_factory=TrainingConfig)
    #: Evaluate on the held-out split every epoch (adds compute but
    #: makes the result's accuracy curve meaningful).
    evaluate: bool = True

    def __post_init__(self) -> None:
        if not self.name or not str(self.name).strip():
            raise ValueError("name must be a non-empty string")

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-safe payload (the ``POST /v1/jobs`` request body)."""
        return {
            "schema_version": JOBSPEC_SCHEMA_VERSION,
            "name": self.name,
            "evaluate": self.evaluate,
            "workload": self.workload.to_json_dict(),
            "config": self.config.to_dict(),
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "JobSpec":
        """Parse and validate a payload produced by :meth:`to_json_dict`.

        Rejects unknown keys and unsupported ``schema_version``s at the
        envelope, workload and config levels; every surviving value is
        revalidated by the dataclass validators.
        """
        if not isinstance(payload, Mapping):
            raise TypeError(
                f"JobSpec payload must be a mapping, got "
                f"{type(payload).__name__}")
        data = dict(payload)
        version = int(data.pop("schema_version", 1))
        if not 1 <= version <= JOBSPEC_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported JobSpec schema_version {version} "
                f"(this build reads versions 1..{JOBSPEC_SCHEMA_VERSION})")
        _reject_unknown_keys(
            data, {"name", "evaluate", "workload", "config"}, "JobSpec")
        workload = JobWorkload.from_json_dict(data.get("workload", {}))
        config = TrainingConfig.from_dict(data.get("config", {}))
        return cls(
            name=str(data.get("name", "job")),
            workload=workload,
            config=config,
            evaluate=bool(data.get("evaluate", True)),
        )

    @classmethod
    def fast_debug(cls, name: str = "fast-debug",
                   **config_overrides: Any) -> "JobSpec":
        """A tiny spec for tests and smoke jobs (seconds, not minutes)."""
        return cls(
            name=name,
            workload=JobWorkload(num_samples=160, num_end_systems=2),
            config=TrainingConfig.fast_debug(**config_overrides),
        )
