"""``repro.api`` — the versioned public surface for running jobs.

Three layers, smallest first:

* :mod:`~repro.api.jobspec` — the ``JobSpec`` schema: a versioned,
  strict, round-trip-exact JSON description of one training job.
* :mod:`~repro.api.runtime` — ``build_workload`` / ``build_trainer`` /
  ``resume_trainer`` / ``run_job``: the one facade that turns a JobSpec
  into a live trainer (used in-process and by the run-server's worker).
* :mod:`~repro.api.client` — ``RunClient``: the stdlib HTTP SDK for a
  :mod:`repro.server` instance (``submit`` / ``status`` / ``pause`` /
  ``resume`` / ``metrics`` / ``cancel`` ...), shared by the CLI, the
  tests and the smoke script.
"""

from .client import TERMINAL_STATES, ApiError, RunClient, ServerUnavailable
from .jobspec import JOBSPEC_SCHEMA_VERSION, JobSpec, JobWorkload
from .runtime import (MaterializedWorkload, build_trainer, build_workload,
                      resume_trainer, run_job)

__all__ = [
    "JOBSPEC_SCHEMA_VERSION",
    "JobSpec",
    "JobWorkload",
    "MaterializedWorkload",
    "build_workload",
    "build_trainer",
    "resume_trainer",
    "run_job",
    "RunClient",
    "ApiError",
    "ServerUnavailable",
    "TERMINAL_STATES",
]
