"""The one typed facade between a :class:`JobSpec` and a running trainer.

Every consumer — the run-server worker subprocess, the experiments CLI,
the examples and direct-Python users — materializes workloads and builds
trainers through this module, so "what does this JobSpec actually run"
has exactly one answer.

The materialization is a pure function of the workload description:
synthetic dataset seeded off ``workload.seed``, deterministic
train/test split, deterministic partitioning.  Two processes
materializing the same spec hold bit-identical datasets, which is the
property that lets a worker crash, a *different* worker process resume
from the checkpoint store, and the result still match an uninterrupted
twin at 1e-9.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional

from ..core.models import paper_cnn_architecture, tiny_cnn_architecture
from ..core.split import SplitSpec
from ..core.trainer import SpatioTemporalTrainer
from ..data.datasets import SyntheticCIFAR10, train_test_split
from ..data.partition import get_partitioner
from ..data.transforms import Normalize
from .jobspec import JobSpec, JobWorkload

__all__ = [
    "MaterializedWorkload",
    "build_workload",
    "build_trainer",
    "resume_trainer",
    "run_job",
]


@dataclass
class MaterializedWorkload:
    """A workload turned into live objects, ready to train on."""

    dataset: Any
    train: Any
    test: Any
    parts: Any
    architecture: Any
    normalize: Any
    split_spec: SplitSpec


def _image_size(scale: str) -> int:
    return 32 if scale == "paper" else 16


def _architecture(scale: str) -> Any:
    if scale == "paper":
        return paper_cnn_architecture()
    return tiny_cnn_architecture(image_size=_image_size(scale), num_blocks=3,
                                 base_filters=8, dense_units=64)


def build_workload(workload: JobWorkload) -> MaterializedWorkload:
    """Materialize a workload description into datasets, parts and split.

    This is the single implementation behind both the public API and the
    experiment harness (``repro.experiments.base.build_workload``
    delegates here).
    """
    dataset = SyntheticCIFAR10(
        num_samples=workload.num_samples,
        image_size=_image_size(workload.scale),
        seed=workload.seed,
        pixel_noise=0.15,
        deformation_noise=0.3,
    )
    train, test = train_test_split(
        dataset, test_fraction=workload.test_fraction, seed=workload.seed)
    partitioner = get_partitioner(
        workload.partition, workload.num_end_systems, seed=workload.seed,
        **workload.partition_kwargs)
    parts = partitioner.partition(train)
    architecture = _architecture(workload.scale)
    normalize = Normalize(mean=[0.5, 0.5, 0.5], std=[0.5, 0.5, 0.5])
    return MaterializedWorkload(
        dataset=dataset,
        train=train,
        test=test,
        parts=parts,
        architecture=architecture,
        normalize=normalize,
        split_spec=SplitSpec(architecture, client_blocks=workload.client_blocks),
    )


def build_trainer(spec: JobSpec, *,
                  checkpoint_store: Optional[Any] = None,
                  checkpoint_dir: Optional[str] = None,
                  pieces: Optional[MaterializedWorkload] = None,
                  ) -> SpatioTemporalTrainer:
    """Construct a fresh trainer for ``spec``.

    ``checkpoint_dir`` overrides ``spec.config.checkpoint_dir`` (the
    run-server redirects it into the job directory); ``checkpoint_store``
    wins over both when given.  Pass ``pieces`` to reuse an
    already-materialized workload instead of rebuilding the dataset.
    """
    config = spec.config
    if checkpoint_dir is not None:
        config = replace(config, checkpoint_dir=checkpoint_dir)
    if pieces is None:
        pieces = build_workload(spec.workload)
    return SpatioTemporalTrainer(
        pieces.split_spec,
        pieces.parts,
        config=config,
        train_transform=pieces.normalize,
        checkpoint_store=checkpoint_store,
    )


def resume_trainer(spec: JobSpec, store: Any, *,
                   pieces: Optional[MaterializedWorkload] = None,
                   ) -> SpatioTemporalTrainer:
    """Rebuild a trainer from ``store``'s newest intact run checkpoint.

    The mutable state (weights, optimizer moments, RNG streams, clock,
    counters — and the config itself) comes from the checkpoint; the
    spec supplies only the immutable inputs the store cannot hold, the
    architecture and the datasets.  Replay-exact per ``tests/state``.
    """
    if pieces is None:
        pieces = build_workload(spec.workload)
    return SpatioTemporalTrainer.resume_from_store(
        store,
        pieces.split_spec,
        pieces.parts,
        train_transform=pieces.normalize,
    )


def run_job(spec: JobSpec, *, epochs: Optional[int] = None) -> Any:
    """Run a JobSpec to completion in-process; returns the history.

    The direct-Python path — same facade as the server's worker, minus
    the process boundary.  ``epochs`` overrides ``spec.config.epochs``.
    """
    pieces = build_workload(spec.workload)
    trainer = build_trainer(spec, pieces=pieces)
    return trainer.train(test_dataset=pieces.test if spec.evaluate else None,
                         epochs=epochs)
