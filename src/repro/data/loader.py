"""Mini-batch iteration over datasets."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from .datasets import Dataset
from .transforms import Transform

__all__ = ["DataLoader", "Batch"]

Batch = Tuple[np.ndarray, np.ndarray]


class DataLoader:
    """Iterate over a dataset in shuffled mini-batches.

    Each iteration yields ``(images, labels)`` NumPy arrays; the training
    loop wraps the images in a :class:`~repro.nn.tensor.Tensor` itself so
    that the loader stays framework-agnostic.

    Parameters
    ----------
    dataset:
        Any object implementing the :class:`~repro.data.datasets.Dataset`
        interface (``arrays()`` in particular).
    batch_size:
        Number of samples per batch.
    shuffle:
        Reshuffle sample order at the start of every epoch.
    drop_last:
        Drop the final short batch when the dataset size is not a multiple
        of ``batch_size``.
    transform:
        Optional :class:`~repro.data.transforms.Transform` applied to each
        image batch.
    seed:
        Seed for the shuffling generator (shuffling is deterministic per
        epoch index so runs are reproducible).
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 32,
        shuffle: bool = True,
        drop_last: bool = False,
        transform: Optional[Transform] = None,
        seed: Optional[int] = 0,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if len(dataset) == 0:
            raise ValueError("cannot build a DataLoader over an empty dataset")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.transform = transform
        self.seed = seed
        self._epoch = 0
        # Materialize once; datasets are in-memory arrays in this project.
        self._images, self._labels = dataset.arrays()

    def __len__(self) -> int:
        full, remainder = divmod(len(self.dataset), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    @property
    def num_samples(self) -> int:
        """Number of samples visited per epoch."""
        if self.drop_last:
            return (len(self.dataset) // self.batch_size) * self.batch_size
        return len(self.dataset)

    def set_epoch(self, epoch: int) -> None:
        """Set the epoch index used to derive the shuffling order."""
        self._epoch = int(epoch)

    def _epoch_order(self) -> np.ndarray:
        indices = np.arange(len(self.dataset), dtype=np.intp)
        if self.shuffle:
            rng = np.random.default_rng(
                None if self.seed is None else self.seed + self._epoch
            )
            rng.shuffle(indices)
        return indices

    def __iter__(self) -> Iterator[Batch]:
        indices = self._epoch_order()
        self._epoch += 1
        limit = len(indices)
        if self.drop_last:
            limit = (limit // self.batch_size) * self.batch_size
        for start in range(0, limit, self.batch_size):
            batch_indices = indices[start:start + self.batch_size]
            if self.drop_last and len(batch_indices) < self.batch_size:
                break
            images = self._images[batch_indices]
            labels = self._labels[batch_indices]
            if self.transform is not None:
                images = self.transform(images)
            yield images, labels
