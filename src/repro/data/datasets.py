"""Datasets for the split-learning experiments.

The paper evaluates on CIFAR-10.  The real archive cannot be downloaded in
this offline environment, so this module provides a *synthetic,
deterministic* class-conditional image generator with the same tensor
interface (32x32 RGB images, 10 classes).  Each class is defined by a
smooth spatial prototype; samples are produced by jittering, distorting and
noising the prototype, giving a classification task that a CNN learns well
but that is not linearly separable at the pixel level.  The *relative*
accuracy ordering across split depths — the quantity Table I reports — is
what this substitution preserves (see DESIGN.md).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np
from scipy import ndimage

__all__ = [
    "Dataset",
    "ArrayDataset",
    "Subset",
    "SyntheticImageDataset",
    "SyntheticCIFAR10",
    "SyntheticMNIST",
    "train_test_split",
]


class Dataset:
    """Minimal dataset interface: length, indexing and bulk array access."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        raise NotImplementedError

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the full ``(images, labels)`` arrays."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[Tuple[np.ndarray, int]]:
        for index in range(len(self)):
            yield self[index]


class ArrayDataset(Dataset):
    """Dataset backed by in-memory arrays.

    Parameters
    ----------
    images:
        Array of shape ``(N, C, H, W)`` (or ``(N, F)`` for flat features).
    labels:
        Integer array of shape ``(N,)``.
    """

    def __init__(self, images: np.ndarray, labels: np.ndarray) -> None:
        images = np.asarray(images)
        labels = np.asarray(labels, dtype=np.int64).reshape(-1)
        if images.shape[0] != labels.shape[0]:
            raise ValueError(
                f"images and labels disagree on sample count: "
                f"{images.shape[0]} vs {labels.shape[0]}"
            )
        self.images = images
        self.labels = labels

    def __len__(self) -> int:
        return self.images.shape[0]

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.images, self.labels

    @property
    def num_classes(self) -> int:
        """Number of distinct classes present in the labels."""
        return int(self.labels.max()) + 1 if len(self.labels) else 0

    def class_counts(self) -> np.ndarray:
        """Number of samples per class (length ``num_classes``)."""
        return np.bincount(self.labels, minlength=self.num_classes)


class Subset(Dataset):
    """View of a dataset restricted to a list of indices (no copy of data)."""

    def __init__(self, dataset: Dataset, indices: Sequence[int]) -> None:
        self.dataset = dataset
        self.indices = np.asarray(indices, dtype=np.int64)
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= len(dataset)
        ):
            raise IndexError("subset indices out of range")

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.dataset[int(self.indices[index])]

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        images, labels = self.dataset.arrays()
        return images[self.indices], labels[self.indices]


class SyntheticImageDataset(ArrayDataset):
    """Deterministic class-conditional synthetic image dataset.

    Each class ``k`` is defined by a smooth random prototype image.  A
    sample of class ``k`` is generated as::

        sample = shift(prototype_k, random offset)
                 + smooth per-sample deformation
                 + white pixel noise

    followed by clipping to ``[0, 1]``.  The three corruption strengths
    control task difficulty.

    Parameters
    ----------
    num_samples:
        Total number of samples (split roughly evenly across classes).
    num_classes:
        Number of classes.
    image_size:
        Spatial size ``H == W`` of the square images.
    channels:
        Number of channels (3 for the CIFAR-10-like variant, 1 for MNIST-like).
    prototype_smoothness:
        Gaussian-filter sigma applied to the class prototypes; larger values
        give smoother, easier-to-separate classes.
    jitter:
        Maximum circular shift (pixels) applied per sample.
    deformation_noise:
        Standard deviation of the smooth per-sample deformation field.
    pixel_noise:
        Standard deviation of the white pixel noise.
    seed:
        Seed controlling both prototypes and samples.
    """

    def __init__(
        self,
        num_samples: int = 2000,
        num_classes: int = 10,
        image_size: int = 32,
        channels: int = 3,
        prototype_smoothness: float = 4.0,
        jitter: int = 3,
        deformation_noise: float = 0.25,
        pixel_noise: float = 0.10,
        seed: Optional[int] = 0,
    ) -> None:
        if num_samples < num_classes:
            raise ValueError("need at least one sample per class")
        if num_classes < 2:
            raise ValueError("need at least two classes")
        if image_size < 4:
            raise ValueError("image_size must be at least 4")
        self.num_samples_requested = num_samples
        self.image_size = image_size
        self.channels = channels
        self.prototype_smoothness = prototype_smoothness
        self.jitter = jitter
        self.deformation_noise = deformation_noise
        self.pixel_noise = pixel_noise
        self.seed = seed

        rng = np.random.default_rng(seed)
        self.prototypes = self._make_prototypes(rng, num_classes)
        images, labels = self._generate(rng, num_samples, num_classes)
        super().__init__(images, labels)

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #
    def _make_prototypes(self, rng: np.random.Generator, num_classes: int) -> np.ndarray:
        """Create one smooth prototype image per class, normalized to [0, 1]."""
        shape = (num_classes, self.channels, self.image_size, self.image_size)
        raw = rng.standard_normal(shape)
        smoothed = ndimage.gaussian_filter(
            raw, sigma=(0, 0, self.prototype_smoothness, self.prototype_smoothness)
        )
        # Normalize each prototype to span [0, 1] so classes are comparable.
        flat = smoothed.reshape(num_classes, -1)
        minimum = flat.min(axis=1, keepdims=True)
        maximum = flat.max(axis=1, keepdims=True)
        normalized = (flat - minimum) / np.maximum(maximum - minimum, 1e-8)
        return normalized.reshape(shape)

    def _generate(
        self, rng: np.random.Generator, num_samples: int, num_classes: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        labels = np.arange(num_samples, dtype=np.int64) % num_classes
        rng.shuffle(labels)
        images = np.empty(
            (num_samples, self.channels, self.image_size, self.image_size), dtype=np.float64
        )
        for index, label in enumerate(labels):
            images[index] = self._render_sample(rng, int(label))
        return images, labels

    def _render_sample(self, rng: np.random.Generator, label: int) -> np.ndarray:
        sample = self.prototypes[label].copy()
        if self.jitter > 0:
            shift_y = int(rng.integers(-self.jitter, self.jitter + 1))
            shift_x = int(rng.integers(-self.jitter, self.jitter + 1))
            sample = np.roll(sample, (shift_y, shift_x), axis=(1, 2))
        if self.deformation_noise > 0:
            deformation = ndimage.gaussian_filter(
                rng.standard_normal(sample.shape), sigma=(0, 2.0, 2.0)
            )
            sample = sample + self.deformation_noise * deformation
        if self.pixel_noise > 0:
            sample = sample + self.pixel_noise * rng.standard_normal(sample.shape)
        return np.clip(sample, 0.0, 1.0)

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        """Per-sample tensor shape ``(C, H, W)``."""
        return self.channels, self.image_size, self.image_size


class SyntheticCIFAR10(SyntheticImageDataset):
    """CIFAR-10 stand-in: 10 classes of 32x32 RGB images (see module docstring)."""

    def __init__(self, num_samples: int = 2000, seed: Optional[int] = 0, **kwargs) -> None:
        kwargs.setdefault("num_classes", 10)
        kwargs.setdefault("image_size", 32)
        kwargs.setdefault("channels", 3)
        super().__init__(num_samples=num_samples, seed=seed, **kwargs)


class SyntheticMNIST(SyntheticImageDataset):
    """MNIST stand-in: 10 classes of 28x28 grayscale images."""

    def __init__(self, num_samples: int = 2000, seed: Optional[int] = 0, **kwargs) -> None:
        kwargs.setdefault("num_classes", 10)
        kwargs.setdefault("image_size", 28)
        kwargs.setdefault("channels", 1)
        kwargs.setdefault("prototype_smoothness", 3.0)
        super().__init__(num_samples=num_samples, seed=seed, **kwargs)


def train_test_split(
    dataset: Dataset,
    test_fraction: float = 0.2,
    seed: Optional[int] = 0,
    stratified: bool = True,
) -> Tuple[Subset, Subset]:
    """Split a dataset into train and test subsets.

    Parameters
    ----------
    test_fraction:
        Fraction of samples assigned to the test subset.
    stratified:
        When ``True`` (default), every class contributes the same fraction
        to the test set, which keeps the small synthetic test sets balanced.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    _, labels = dataset.arrays()
    indices = np.arange(len(dataset), dtype=np.intp)

    if stratified:
        test_indices = []
        for cls in np.unique(labels):
            cls_indices = indices[labels == cls]
            rng.shuffle(cls_indices)
            take = max(1, int(round(len(cls_indices) * test_fraction)))
            test_indices.append(cls_indices[:take])
        test_indices = np.concatenate(test_indices)
    else:
        shuffled = indices.copy()
        rng.shuffle(shuffled)
        take = max(1, int(round(len(dataset) * test_fraction)))
        test_indices = shuffled[:take]

    test_mask = np.zeros(len(dataset), dtype=bool)
    test_mask[test_indices] = True
    train_indices = indices[~test_mask]
    return Subset(dataset, train_indices), Subset(dataset, np.sort(test_indices))
