"""Per-batch image transforms.

Transforms operate on NumPy arrays of shape ``(N, C, H, W)`` and are
applied by the :class:`~repro.data.loader.DataLoader` just before a batch
is handed to the model.  The augmentation transforms (flip, crop, noise)
are only meaningful on the training loader; normalization is used on both
sides.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = [
    "Transform",
    "Compose",
    "Normalize",
    "RandomHorizontalFlip",
    "RandomCrop",
    "GaussianNoise",
    "Cutout",
]


class Transform:
    """Base class: callable mapping a batch array to a batch array."""

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class Compose(Transform):
    """Apply a sequence of transforms in order."""

    def __init__(self, transforms: Sequence[Transform]) -> None:
        self.transforms = list(transforms)

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        for transform in self.transforms:
            batch = transform(batch)
        return batch

    def __repr__(self) -> str:
        inner = ", ".join(type(t).__name__ for t in self.transforms)
        return f"Compose([{inner}])"


class Normalize(Transform):
    """Standardize each channel: ``(x - mean) / std``.

    Parameters
    ----------
    mean / std:
        Per-channel statistics; scalars are broadcast to every channel.
    """

    def __init__(self, mean: Sequence[float] = (0.5,), std: Sequence[float] = (0.5,)) -> None:
        self.mean = np.asarray(mean, dtype=np.float64)
        self.std = np.asarray(std, dtype=np.float64)
        if np.any(self.std <= 0):
            raise ValueError("std values must be positive")

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        mean = self.mean.reshape(1, -1, 1, 1) if batch.ndim == 4 else self.mean
        std = self.std.reshape(1, -1, 1, 1) if batch.ndim == 4 else self.std
        return (batch - mean) / std

    @staticmethod
    def from_dataset(images: np.ndarray) -> "Normalize":
        """Build a transform from the per-channel statistics of ``images``."""
        mean = images.mean(axis=(0, 2, 3))
        std = images.std(axis=(0, 2, 3))
        return Normalize(mean=mean, std=np.maximum(std, 1e-6))


class RandomHorizontalFlip(Transform):
    """Flip each image left-right with probability ``p``."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()  # repro-lint: ignore[RL002] -- seeded-rng callers are the simulated path; bare default is interactive convenience

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        if batch.ndim != 4:
            raise ValueError("RandomHorizontalFlip expects (N, C, H, W) batches")
        flip_mask = self._rng.random(batch.shape[0]) < self.p
        output = batch.copy()
        output[flip_mask] = output[flip_mask, :, :, ::-1]
        return output


class RandomCrop(Transform):
    """Pad by ``padding`` pixels then crop back to the original size at a random offset."""

    def __init__(self, padding: int = 4, rng: Optional[np.random.Generator] = None) -> None:
        if padding < 0:
            raise ValueError("padding must be non-negative")
        self.padding = padding
        self._rng = rng if rng is not None else np.random.default_rng()  # repro-lint: ignore[RL002] -- seeded-rng callers are the simulated path; bare default is interactive convenience

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        if batch.ndim != 4:
            raise ValueError("RandomCrop expects (N, C, H, W) batches")
        if self.padding == 0:
            return batch
        n, c, h, w = batch.shape
        pad = self.padding
        padded = np.pad(batch, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        output = np.empty_like(batch)
        offsets_y = self._rng.integers(0, 2 * pad + 1, size=n)
        offsets_x = self._rng.integers(0, 2 * pad + 1, size=n)
        for index in range(n):
            oy, ox = offsets_y[index], offsets_x[index]
            output[index] = padded[index, :, oy:oy + h, ox:ox + w]
        return output


class GaussianNoise(Transform):
    """Add white Gaussian noise with standard deviation ``std``."""

    def __init__(self, std: float = 0.01, rng: Optional[np.random.Generator] = None) -> None:
        if std < 0:
            raise ValueError("std must be non-negative")
        self.std = std
        self._rng = rng if rng is not None else np.random.default_rng()  # repro-lint: ignore[RL002] -- seeded-rng callers are the simulated path; bare default is interactive convenience

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        if self.std == 0:
            return batch
        return batch + self.std * self._rng.standard_normal(batch.shape)


class Cutout(Transform):
    """Zero a random square patch in each image (simple regularizer)."""

    def __init__(self, size: int = 8, rng: Optional[np.random.Generator] = None) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self.size = size
        self._rng = rng if rng is not None else np.random.default_rng()  # repro-lint: ignore[RL002] -- seeded-rng callers are the simulated path; bare default is interactive convenience

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        if batch.ndim != 4:
            raise ValueError("Cutout expects (N, C, H, W) batches")
        n, _, h, w = batch.shape
        output = batch.copy()
        half = self.size // 2
        centers_y = self._rng.integers(0, h, size=n)
        centers_x = self._rng.integers(0, w, size=n)
        for index in range(n):
            y0 = max(0, centers_y[index] - half)
            y1 = min(h, centers_y[index] + half)
            x0 = max(0, centers_x[index] - half)
            x1 = min(w, centers_x[index] + half)
            output[index, :, y0:y1, x0:x1] = 0.0
        return output
