"""Datasets, loaders, transforms and multi-end-system partitioners."""

from .datasets import (
    ArrayDataset,
    Dataset,
    Subset,
    SyntheticCIFAR10,
    SyntheticImageDataset,
    SyntheticMNIST,
    train_test_split,
)
from .loader import DataLoader
from .partition import (
    DirichletPartitioner,
    IIDPartitioner,
    LabelShardPartitioner,
    Partitioner,
    QuantitySkewPartitioner,
    get_partitioner,
    partition_summary,
)
from .transforms import (
    Compose,
    Cutout,
    GaussianNoise,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    Transform,
)

__all__ = [
    "Dataset",
    "ArrayDataset",
    "Subset",
    "SyntheticImageDataset",
    "SyntheticCIFAR10",
    "SyntheticMNIST",
    "train_test_split",
    "DataLoader",
    "Transform",
    "Compose",
    "Normalize",
    "RandomHorizontalFlip",
    "RandomCrop",
    "GaussianNoise",
    "Cutout",
    "Partitioner",
    "IIDPartitioner",
    "DirichletPartitioner",
    "LabelShardPartitioner",
    "QuantitySkewPartitioner",
    "partition_summary",
    "get_partitioner",
]
