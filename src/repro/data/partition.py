"""Partitioning a dataset across multiple end-systems.

The "spatial" dimension of spatio-temporal split learning is that training
data lives on *M* geographically separated end-systems (hospitals in the
paper's motivating scenario) and never leaves them.  These partitioners
decide which samples each end-system holds:

* :class:`IIDPartitioner` — samples are spread uniformly at random; every
  end-system sees the same class distribution (the setting Table I uses).
* :class:`DirichletPartitioner` — class proportions per end-system are
  drawn from a Dirichlet distribution, producing realistic label skew
  (e.g. one hospital sees mostly one disease).
* :class:`LabelShardPartitioner` — each end-system holds only a few
  classes (the pathological non-IID setting from the FedAvg literature).
* :class:`QuantitySkewPartitioner` — IID class mix but very different
  dataset sizes per end-system.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .datasets import Dataset, Subset

__all__ = [
    "Partitioner",
    "IIDPartitioner",
    "DirichletPartitioner",
    "LabelShardPartitioner",
    "QuantitySkewPartitioner",
    "partition_summary",
    "get_partitioner",
]


class Partitioner:
    """Base class: maps a dataset to ``num_parts`` disjoint subsets."""

    def __init__(self, num_parts: int, seed: Optional[int] = 0) -> None:
        if num_parts <= 0:
            raise ValueError("num_parts must be positive")
        self.num_parts = num_parts
        self.seed = seed

    def partition(self, dataset: Dataset) -> List[Subset]:
        """Return one :class:`Subset` per part; subsets are disjoint and cover the dataset."""
        index_groups = self.partition_indices(dataset)
        return [Subset(dataset, indices) for indices in index_groups]

    def partition_indices(self, dataset: Dataset) -> List[np.ndarray]:
        raise NotImplementedError

    def _validate(self, dataset: Dataset) -> None:
        if len(dataset) < self.num_parts:
            raise ValueError(
                f"cannot split {len(dataset)} samples across {self.num_parts} parts"
            )


class IIDPartitioner(Partitioner):
    """Uniformly random, equally sized partition (the paper's implicit setting)."""

    def partition_indices(self, dataset: Dataset) -> List[np.ndarray]:
        self._validate(dataset)
        rng = np.random.default_rng(self.seed)
        indices = np.arange(len(dataset), dtype=np.intp)
        rng.shuffle(indices)
        return [np.sort(part) for part in np.array_split(indices, self.num_parts)]


class DirichletPartitioner(Partitioner):
    """Label-skewed partition with per-part class proportions ~ Dirichlet(alpha).

    Small ``alpha`` (e.g. 0.1) produces heavily skewed end-systems; large
    ``alpha`` (e.g. 100) approaches the IID partition.
    """

    def __init__(self, num_parts: int, alpha: float = 0.5, seed: Optional[int] = 0) -> None:
        super().__init__(num_parts, seed)
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha

    def partition_indices(self, dataset: Dataset) -> List[np.ndarray]:
        self._validate(dataset)
        rng = np.random.default_rng(self.seed)
        _, labels = dataset.arrays()
        classes = np.unique(labels)
        part_indices: List[List[int]] = [[] for _ in range(self.num_parts)]

        for cls in classes:
            cls_indices = np.flatnonzero(labels == cls)
            rng.shuffle(cls_indices)
            proportions = rng.dirichlet(
                np.full(self.num_parts, self.alpha, dtype=np.float64)
            )
            # Convert proportions to split points over this class's samples.
            split_points = (np.cumsum(proportions)[:-1] * len(cls_indices)).astype(int)
            for part, chunk in enumerate(np.split(cls_indices, split_points)):
                part_indices[part].extend(chunk.tolist())

        # Guarantee every part is non-empty by stealing from the largest part.
        for part in range(self.num_parts):
            if not part_indices[part]:
                largest = max(range(self.num_parts), key=lambda p: len(part_indices[p]))
                part_indices[part].append(part_indices[largest].pop())
        return [np.sort(np.asarray(indices, dtype=np.int64)) for indices in part_indices]


class LabelShardPartitioner(Partitioner):
    """Each part receives ``shards_per_part`` contiguous label shards.

    With 10 classes, ``num_parts=5`` and ``shards_per_part=2`` every
    end-system sees only 2 classes — the classic pathological non-IID split.
    """

    def __init__(self, num_parts: int, shards_per_part: int = 2, seed: Optional[int] = 0) -> None:
        super().__init__(num_parts, seed)
        if shards_per_part <= 0:
            raise ValueError("shards_per_part must be positive")
        self.shards_per_part = shards_per_part

    def partition_indices(self, dataset: Dataset) -> List[np.ndarray]:
        self._validate(dataset)
        rng = np.random.default_rng(self.seed)
        _, labels = dataset.arrays()
        # Sort samples by label, then chop into equally sized shards.
        order = np.argsort(labels, kind="stable")
        total_shards = self.num_parts * self.shards_per_part
        if total_shards > len(dataset):
            raise ValueError(
                f"{total_shards} shards requested but only {len(dataset)} samples available"
            )
        shards = np.array_split(order, total_shards)
        shard_ids = np.arange(total_shards, dtype=np.intp)
        rng.shuffle(shard_ids)
        parts = []
        for part in range(self.num_parts):
            chosen = shard_ids[part * self.shards_per_part:(part + 1) * self.shards_per_part]
            indices = np.concatenate([shards[shard] for shard in chosen])
            parts.append(np.sort(indices))
        return parts


class QuantitySkewPartitioner(Partitioner):
    """IID class mix but unbalanced part sizes drawn from Dirichlet(beta)."""

    def __init__(self, num_parts: int, beta: float = 2.0, min_samples: int = 2,
                 seed: Optional[int] = 0) -> None:
        super().__init__(num_parts, seed)
        if beta <= 0:
            raise ValueError("beta must be positive")
        if min_samples < 1:
            raise ValueError("min_samples must be at least 1")
        self.beta = beta
        self.min_samples = min_samples

    def partition_indices(self, dataset: Dataset) -> List[np.ndarray]:
        self._validate(dataset)
        rng = np.random.default_rng(self.seed)
        indices = np.arange(len(dataset), dtype=np.intp)
        rng.shuffle(indices)
        reserve = self.min_samples * self.num_parts
        if reserve > len(dataset):
            raise ValueError("min_samples * num_parts exceeds the dataset size")
        proportions = rng.dirichlet(
            np.full(self.num_parts, self.beta, dtype=np.float64)
        )
        spare = len(dataset) - reserve
        sizes = self.min_samples + np.floor(proportions * spare).astype(int)
        # Distribute the rounding remainder to the first parts.
        remainder = len(dataset) - sizes.sum()
        sizes[:remainder] += 1
        parts = []
        cursor = 0
        for size in sizes:
            parts.append(np.sort(indices[cursor:cursor + size]))
            cursor += size
        return parts


def partition_summary(parts: List[Subset], num_classes: Optional[int] = None) -> Dict[int, Dict[str, object]]:
    """Describe a partition: per-part sample count and class histogram."""
    summary: Dict[int, Dict[str, object]] = {}
    for part_id, subset in enumerate(parts):
        _, labels = subset.arrays()
        counts = np.bincount(labels, minlength=num_classes or 0)
        summary[part_id] = {
            "num_samples": int(len(subset)),
            "class_histogram": counts.tolist(),
        }
    return summary


_PARTITIONERS = {
    "iid": IIDPartitioner,
    "dirichlet": DirichletPartitioner,
    "label_shard": LabelShardPartitioner,
    "quantity_skew": QuantitySkewPartitioner,
}


def get_partitioner(name: str, num_parts: int, seed: Optional[int] = 0, **kwargs) -> Partitioner:
    """Instantiate a partitioner by name (``iid``, ``dirichlet``, ``label_shard``, ``quantity_skew``)."""
    try:
        cls = _PARTITIONERS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_PARTITIONERS))
        raise KeyError(f"unknown partitioner {name!r}; known partitioners: {known}") from None
    return cls(num_parts, seed=seed, **kwargs)
