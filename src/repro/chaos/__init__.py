"""Seeded deterministic fault injection for the simulated deployment.

``repro.chaos`` is the chaos plane the paper's lossy-network story needs
beyond shard crashes (PR 5): link flaps and client churn, hub↔hub
partitions, per-message corruption/duplication/reordering at the
transport, and shard stragglers — every fault drawn from seeded streams
so a chaos run is a pure function of its seed and two runs with the same
seed produce byte-identical traffic logs.

* :class:`FaultEvent` / :class:`FaultPlan` — one timed fault-phase
  transition and the peek/advance timeline protocol (the same shape as
  :class:`repro.cluster.failover.FailureModel`).
* :class:`ScheduledFaults` — scripted timelines from
  ``TrainingConfig.chaos_schedule`` entries.
* :class:`StochasticFaults` — exponential MTBF/MTTR client flap/leave
  churn with per-client seeded streams.
* :class:`MessageChaos` — seeded per-message corruption, duplication and
  reordering applied inside :class:`repro.simnet.transport.Transport`.
"""

from .message_chaos import MessageChaos
from .plan import FaultEvent, FaultPlan, ScheduledFaults, StochasticFaults, build_fault_plan

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "ScheduledFaults",
    "StochasticFaults",
    "MessageChaos",
    "build_fault_plan",
]
