"""Fault timelines: scripted and stochastic chaos plans.

A fault plan is a single time-ordered stream of :class:`FaultEvent`
transitions consumed by the engine with the same peek/advance protocol
as :class:`repro.cluster.failover.FailureModel`: :meth:`FaultPlan.peek`
returns the next pending event (``None`` when exhausted) and
:meth:`FaultPlan.advance` consumes it once it has been applied.  Events
that fire after the current epoch's horizon are not consumed, so a plan
spans epochs, and :meth:`FaultPlan.state_dict` captures the live
position for replay-exact run checkpoints.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["FaultEvent", "FaultPlan", "ScheduledFaults", "StochasticFaults",
           "build_fault_plan"]

#: Fault classes the engine knows how to apply.
_KINDS = ("flap", "leave", "partition", "straggler", "move")

#: At equal timestamps an outage *end* sorts before a new *begin* (the
#: same back-to-back rule ScheduledFailures uses for crash/recover), and
#: one-shot applications sit between the two.
_PHASE_RANK = {"end": 0, "apply": 1, "begin": 2}


@dataclass(frozen=True)
class FaultEvent:
    """One fault-phase transition, in absolute simulated time.

    ``target`` is a client id for ``flap``/``leave``/``move``, and a
    shard id for ``straggler``; ``peer`` names the second hub of a
    ``partition`` (both hubs given as shard ids); ``value`` carries the
    ``straggler`` service-time factor or the ``move`` destination shard.
    """

    time: float
    kind: str
    phase: str  # "begin", "end" or "apply" (one-shot)
    target: int
    peer: Optional[int] = None
    value: Optional[float] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time must be non-negative, got {self.time}")
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.phase not in _PHASE_RANK:
            raise ValueError(f"phase must be 'begin', 'end' or 'apply', got {self.phase!r}")

    @property
    def sort_key(self) -> Tuple[float, int, str, int]:
        return (self.time, _PHASE_RANK[self.phase], self.kind, self.target)


class FaultPlan:
    """Base peek/advance timeline of :class:`FaultEvent` transitions."""

    name = "base"

    def peek(self) -> Optional[FaultEvent]:
        raise NotImplementedError

    def advance(self) -> None:
        raise NotImplementedError

    def state_dict(self) -> Dict[str, object]:
        """JSON-able snapshot of the plan's consumed-timeline position."""
        raise NotImplementedError

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        raise NotImplementedError


def _event_to_list(event: FaultEvent) -> List[object]:
    return [event.time, event.kind, event.phase, event.target, event.peer, event.value]


def _event_from_list(raw: Sequence[object]) -> FaultEvent:
    time_s, kind, phase, target, peer, value = raw
    return FaultEvent(
        time=float(time_s),  # type: ignore[arg-type]
        kind=str(kind),
        phase=str(phase),
        target=int(target),  # type: ignore[arg-type]
        peer=None if peer is None else int(peer),  # type: ignore[arg-type]
        value=None if value is None else float(value),  # type: ignore[arg-type]
    )


class ScheduledFaults(FaultPlan):
    """Scripted chaos from ``TrainingConfig.chaos_schedule`` entries.

    Entry forms (times and durations in simulated seconds)::

        ("flap",      t, duration, client_id)
        ("leave",     t, duration, client_id)
        ("partition", t, duration, shard_a, shard_b)
        ("straggler", t, duration, shard_id, factor)
        ("move",      t, client_id, shard_id)

    A ``duration`` of ``None`` leaves the fault in place for the rest of
    the run.  Like :class:`~repro.cluster.failover.ScheduledFailures`,
    overlapping outages of the same fault key are rejected outright —
    they would silently end the longer outage at the shorter entry's
    restore.
    """

    name = "scheduled"

    def __init__(self, entries: Sequence[Sequence[object]]) -> None:
        events: List[FaultEvent] = []
        for entry in entries:
            events.extend(self._expand(entry))
        ordered = sorted(events, key=lambda e: e.sort_key)
        self._validate_alternation(ordered)
        self._events: Deque[FaultEvent] = deque(ordered)

    @staticmethod
    def _expand(entry: Sequence[object]) -> List[FaultEvent]:
        kind = str(entry[0])
        if kind == "move":
            if len(entry) != 4:
                raise ValueError(
                    f"'move' entries are (kind, t, client_id, shard_id), got {entry!r}"
                )
            _, t, client, shard = entry
            return [FaultEvent(float(t), "move", "apply", int(client),  # type: ignore[arg-type]
                               value=float(shard))]  # type: ignore[arg-type]
        if kind in ("flap", "leave"):
            if len(entry) != 4:
                raise ValueError(
                    f"{kind!r} entries are (kind, t, duration, client_id), got {entry!r}"
                )
            _, t, duration, client = entry
            target, peer, value = int(client), None, None  # type: ignore[arg-type]
        elif kind == "partition":
            if len(entry) != 5:
                raise ValueError(
                    f"'partition' entries are (kind, t, duration, shard_a, shard_b), "
                    f"got {entry!r}"
                )
            _, t, duration, hub_a, hub_b = entry
            low, high = sorted((int(hub_a), int(hub_b)))  # type: ignore[arg-type]
            if low == high:
                raise ValueError(f"partition needs two distinct hubs, got {entry!r}")
            target, peer, value = low, high, None
        elif kind == "straggler":
            if len(entry) != 5:
                raise ValueError(
                    f"'straggler' entries are (kind, t, duration, shard_id, factor), "
                    f"got {entry!r}"
                )
            _, t, duration, shard, factor = entry
            if float(factor) < 1.0:  # type: ignore[arg-type]
                raise ValueError(
                    f"straggler factor must be >= 1 (it inflates service time), got {factor!r}"
                )
            target, peer, value = int(shard), None, float(factor)  # type: ignore[arg-type]
        else:
            raise ValueError(f"unknown chaos kind {kind!r}; known kinds: {_KINDS}")
        begin = FaultEvent(float(t), kind, "begin", target, peer, value)  # type: ignore[arg-type]
        if duration is None:
            return [begin]
        duration_s = float(duration)  # type: ignore[arg-type]
        if duration_s <= 0:
            raise ValueError(f"fault duration must be positive, got {duration!r}")
        return [begin,
                FaultEvent(begin.time + duration_s, kind, "end", target, peer, value)]

    @staticmethod
    def _validate_alternation(ordered: Sequence[FaultEvent]) -> None:
        expected: Dict[Tuple[str, int, Optional[int]], str] = {}
        for event in ordered:
            if event.phase == "apply":
                continue
            key = (event.kind, event.target, event.peer)
            if event.phase != expected.get(key, "begin"):
                raise ValueError(
                    f"overlapping scripted {event.kind!r} outages on target "
                    f"{event.target}: unexpected {event.phase!r} at t={event.time} "
                    "(each outage must end before the next one starts)"
                )
            expected[key] = "end" if event.phase == "begin" else "begin"

    def peek(self) -> Optional[FaultEvent]:
        return self._events[0] if self._events else None

    def advance(self) -> None:
        if not self._events:
            raise LookupError("no pending fault event")
        self._events.popleft()

    def state_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "events": [_event_to_list(e) for e in self._events],
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self._events = deque(_event_from_list(raw)
                             for raw in state["events"])  # type: ignore[union-attr]


class StochasticFaults(FaultPlan):
    """Exponential MTBF/MTTR client flap/leave churn, one stream per key.

    Every ``(kind, client)`` pair alternates healthy/faulted phases whose
    lengths are exponential draws (mean ``mtbf_s`` while healthy,
    ``mttr_s`` while faulted) from its own generator derived from the
    seed — the churn timeline is reproducible and independent of how
    often the engine peeks at it.
    """

    name = "stochastic"

    #: Seed-stream spacing between clients and between fault kinds; a
    #: distinct prime from the failover streams (7919) so chaos draws
    #: never collide with shard-failure draws.
    _CLIENT_STRIDE = 6151
    _KIND_OFFSET = {"flap": 0, "leave": 1_000_003}

    def __init__(
        self,
        num_clients: int,
        seed: int = 0,
        flap_mtbf_s: Optional[float] = None,
        flap_mttr_s: float = 0.05,
        leave_mtbf_s: Optional[float] = None,
        leave_mttr_s: float = 0.5,
    ) -> None:
        if num_clients <= 0:
            raise ValueError(f"num_clients must be positive, got {num_clients}")
        for label, mtbf, mttr in (("flap", flap_mtbf_s, flap_mttr_s),
                                  ("leave", leave_mtbf_s, leave_mttr_s)):
            if mtbf is not None and mtbf <= 0:
                raise ValueError(f"{label} mtbf_s must be positive (or None), got {mtbf}")
            if mttr <= 0:
                raise ValueError(f"{label} mttr_s must be positive, got {mttr}")
        self.num_clients = int(num_clients)
        self.seed = int(seed)
        self._means: Dict[str, Tuple[float, float]] = {}
        if flap_mtbf_s is not None:
            self._means["flap"] = (float(flap_mtbf_s), float(flap_mttr_s))
        if leave_mtbf_s is not None:
            self._means["leave"] = (float(leave_mtbf_s), float(leave_mttr_s))
        if not self._means:
            raise ValueError("at least one of flap_mtbf_s / leave_mtbf_s must be set")
        self._rngs: Dict[Tuple[str, int], np.random.Generator] = {}
        self._next: Dict[Tuple[str, int], FaultEvent] = {}

    def _rng(self, kind: str, client: int) -> np.random.Generator:
        key = (kind, client)
        rng = self._rngs.get(key)
        if rng is None:
            rng = np.random.default_rng(
                self.seed + self._CLIENT_STRIDE * (client + 1) + self._KIND_OFFSET[kind]
            )
            self._rngs[key] = rng
        return rng

    def _ensure(self, kind: str, client: int) -> FaultEvent:
        key = (kind, client)
        event = self._next.get(key)
        if event is None:
            mtbf_s, _ = self._means[kind]
            first = self._rng(kind, client).exponential(mtbf_s)
            event = FaultEvent(first, kind, "begin", client)
            self._next[key] = event
        return event

    def peek(self) -> Optional[FaultEvent]:
        candidates = [self._ensure(kind, client)
                      for kind in self._means
                      for client in range(self.num_clients)]
        if not candidates:
            return None
        return min(candidates, key=lambda e: e.sort_key)

    def advance(self) -> None:
        current = self.peek()
        assert current is not None
        key = (current.kind, current.target)
        mtbf_s, mttr_s = self._means[current.kind]
        rng = self._rng(current.kind, current.target)
        if current.phase == "begin":
            delay, phase = rng.exponential(mttr_s), "end"
        else:
            delay, phase = rng.exponential(mtbf_s), "begin"
        self._next[key] = FaultEvent(current.time + delay, current.kind, phase,
                                     current.target)

    def state_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "rngs": {f"{kind}:{client}": rng.bit_generator.state
                     for (kind, client), rng in self._rngs.items()},
            "next": {f"{kind}:{client}": _event_to_list(event)
                     for (kind, client), event in self._next.items()},
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self._rngs = {}
        for key, rng_state in state["rngs"].items():  # type: ignore[union-attr]
            kind, _, client = key.partition(":")
            # The seed is irrelevant here: the restored bit-generator
            # state on the next line is the checkpointed stream position.
            rng = np.random.default_rng()  # repro-lint: ignore[RL002] -- state restored below
            rng.bit_generator.state = rng_state
            self._rngs[(kind, int(client))] = rng
        self._next = {}
        for key, raw in state["next"].items():  # type: ignore[union-attr]
            kind, _, client = key.partition(":")
            self._next[(kind, int(client))] = _event_from_list(raw)


def build_fault_plan(config: "object", num_clients: int) -> Optional[FaultPlan]:
    """Construct the fault plan a :class:`TrainingConfig` describes.

    Returns ``None`` when no timeline chaos is configured (per-message
    chaos lives in :class:`~repro.chaos.MessageChaos`, not here).
    """
    schedule = getattr(config, "chaos_schedule", None)
    if schedule:
        return ScheduledFaults(schedule)
    flap_mtbf = getattr(config, "chaos_flap_mtbf_s", None)
    leave_mtbf = getattr(config, "chaos_leave_mtbf_s", None)
    if flap_mtbf is None and leave_mtbf is None:
        return None
    return StochasticFaults(
        num_clients=num_clients,
        seed=int(getattr(config, "seed", 0)) + 393_241,
        flap_mtbf_s=flap_mtbf,
        flap_mttr_s=float(getattr(config, "chaos_flap_mttr_s", 0.05)),
        leave_mtbf_s=leave_mtbf,
        leave_mttr_s=float(getattr(config, "chaos_leave_mttr_s", 0.5)),
    )
