"""Seeded per-message chaos: corruption, duplication, reordering.

Applied by :class:`repro.simnet.transport.Transport` to every message a
link *delivered* (link-level loss already happened upstream), in a fixed
draw order per direction stream so two runs with the same seed make
identical decisions:

1. **corrupt** — the payload is damaged in flight; the transport treats
   it as a loss (the receiver would discard it on checksum) and records
   it in the corrupted counters.
2. **reorder** — the arrival time is inflated by a seeded uniform draw,
   so later messages can overtake this one.
3. **duplicate** — uplink activations only: a second copy is scheduled a
   seeded delay behind the first; the receiving shard deduplicates it.

NACKs are exempt: the control channel keeps its PR 2 lost-NACK fallback
semantics so the drop ledger stays the reliability layer's job.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..simnet.link import Message
    from ..simnet.transport import TrafficLog

__all__ = ["MessageChaos"]

#: Metadata key carrying the duplicate copy's arrival time; the engine
#: schedules one extra arrival event when it sees it.
DUPLICATE_ARRIVAL_KEY = "chaos_duplicate_arrival"


class MessageChaos:
    """Per-message fault injection with one seeded stream per direction."""

    #: Seed-stream spacing between the three direction streams.
    _DIRECTION_OFFSET = {"up": 1, "down": 2, "sync": 3}

    def __init__(
        self,
        corrupt_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        reorder_probability: float = 0.0,
        reorder_delay_s: float = 0.005,
        duplicate_delay_s: float = 0.002,
        seed: int = 0,
    ) -> None:
        for label, probability in (("corrupt", corrupt_probability),
                                   ("duplicate", duplicate_probability),
                                   ("reorder", reorder_probability)):
            if not 0.0 <= probability <= 1.0:
                raise ValueError(f"{label}_probability must be in [0, 1], got {probability}")
        if reorder_delay_s < 0:
            raise ValueError(f"reorder_delay_s must be non-negative, got {reorder_delay_s}")
        if duplicate_delay_s < 0:
            raise ValueError(f"duplicate_delay_s must be non-negative, got {duplicate_delay_s}")
        self.corrupt_probability = float(corrupt_probability)
        self.duplicate_probability = float(duplicate_probability)
        self.reorder_probability = float(reorder_probability)
        self.reorder_delay_s = float(reorder_delay_s)
        self.duplicate_delay_s = float(duplicate_delay_s)
        self.seed = int(seed)
        self._rngs: Dict[str, np.random.Generator] = {
            direction: np.random.default_rng(self.seed + offset)
            for direction, offset in self._DIRECTION_OFFSET.items()
        }

    def apply(self, message: "Message", direction: str,
              log: "TrafficLog") -> Optional["Message"]:
        """Run one delivered message through the chaos draws.

        Returns the (possibly delayed / duplicate-tagged) message, or
        ``None`` when it was corrupted in flight.  ``direction`` is one
        of ``"up"``, ``"down"``, ``"sync"``.
        """
        rng = self._rngs[direction]
        if self.corrupt_probability > 0 and rng.random() < self.corrupt_probability:
            log.note_corrupted(direction)
            return None
        if self.reorder_probability > 0 and rng.random() < self.reorder_probability:
            message.arrival_time += rng.uniform(0.0, self.reorder_delay_s)
            log.note_reordered()
        if (
            direction == "up"
            and self.duplicate_probability > 0
            and rng.random() < self.duplicate_probability
        ):
            message.metadata[DUPLICATE_ARRIVAL_KEY] = (
                message.arrival_time + rng.uniform(0.0, self.duplicate_delay_s)
            )
            log.note_duplicated()
        return message

    # Run checkpoints capture the live stream positions so a restart
    # replays the same corruption/duplication/reordering decisions.
    def state_dict(self) -> Dict[str, object]:
        return {direction: rng.bit_generator.state
                for direction, rng in self._rngs.items()}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        for direction, rng_state in state.items():
            self._rngs[str(direction)].bit_generator.state = rng_state
