"""Span-based tracing of message lifecycles and control-plane events.

The engine emits spans (uplink flight, queue wait, server step,
downlink flight) and instants (drops, retries, nacks, crashes,
failover, sync rendezvous / quorum timeouts, checkpoints) into a
bounded ring buffer, which exports as Chrome trace-event JSON — load
``trace.json`` in Perfetto / ``chrome://tracing`` and the run reads as
a timeline: one row per client (``tid``), one process per shard
(``pid``).

Sampling is *seeded and order-independent*: whether a message is traced
depends only on ``(seed, key)`` through a splitmix64 mix — the engine
keys on the run-local ``(client, batch)`` pair — never on RNG state or
call order, so the same seed always yields the identical trace (pinned
by ``tests/obs/test_tracing.py``) and tracing consumes nothing from the
simulation's random streams.

All timestamps are **sim-time seconds** scaled to microseconds at
export; the module never reads a wall clock (RL002-clean).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "TraceEvent",
    "Tracer",
    "validate_chrome_trace",
]

_MASK64 = (1 << 64) - 1

#: Trace-event phases we emit: complete spans and instant events.
_PHASES = ("X", "i")


def _mix64(seed: int, key: int) -> int:
    """splitmix64 finalizer over (seed, key) — stateless, order-free."""
    z = (key + 0x9E3779B97F4A7C15 * (seed + 1)) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


class TraceEvent:
    """One Chrome trace event (phase ``X`` span or ``i`` instant)."""

    __slots__ = ("name", "cat", "ph", "ts_us", "dur_us", "pid", "tid", "args")

    def __init__(self, name: str, cat: str, ph: str, ts_us: float,
                 dur_us: Optional[float], pid: int, tid: int,
                 args: Optional[Dict[str, object]]) -> None:
        self.name = name
        self.cat = cat
        self.ph = ph
        self.ts_us = ts_us
        self.dur_us = dur_us
        self.pid = pid
        self.tid = tid
        self.args = args

    def as_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts": self.ts_us,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.ph == "X":
            row["dur"] = self.dur_us if self.dur_us is not None else 0.0
        elif self.ph == "i":
            row["s"] = "t"  # instant scope: thread
        if self.args:
            row["args"] = self.args
        return row


class Tracer:
    """Sampled, bounded event sink with Chrome trace-event export.

    ``capacity`` bounds memory: the ring keeps the *newest* events and
    counts evictions in :attr:`dropped`, so a long run degrades to "the
    end of the story" rather than OOM.  Control-plane events share the
    buffer with message spans; both are cheap (one object append).
    """

    enabled: bool = True

    def __init__(self, sample_rate: float = 1.0, seed: int = 0,
                 capacity: int = 65536) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sample_rate = sample_rate
        self.seed = seed
        self.capacity = capacity
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0
        #: sampling threshold precomputed so ``sampled`` is one compare.
        self._threshold = int(sample_rate * (_MASK64 + 1))

    # -- sampling ------------------------------------------------------------

    def sampled(self, key: int) -> bool:
        """Deterministic per-message decision from ``(seed, key)``.

        Rates 0 and 1 short-circuit before the mix: ``sampled`` runs per
        message on the engine's hot path, and full tracing (the common
        debugging mode) should not pay the hash per event.
        """
        threshold = self._threshold
        if threshold > _MASK64:
            return True
        if threshold == 0:
            return False
        return _mix64(self.seed, key) < threshold

    # -- emission ------------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Events evicted from the ring by newer ones."""
        return self.emitted - len(self.events)

    def span(self, name: str, cat: str, start_s: float, end_s: float,
             pid: int = 0, tid: int = 0,
             args: Optional[Dict[str, object]] = None) -> None:
        self.events.append(TraceEvent(
            name, cat, "X", start_s * 1e6, max(0.0, (end_s - start_s)) * 1e6,
            pid, tid, args))
        self.emitted += 1

    def instant(self, name: str, cat: str, t_s: float,
                pid: int = 0, tid: int = 0,
                args: Optional[Dict[str, object]] = None) -> None:
        self.events.append(TraceEvent(name, cat, "i", t_s * 1e6, None,
                                      pid, tid, args))
        self.emitted += 1

    # -- export --------------------------------------------------------------

    def chrome_trace(self) -> Dict[str, object]:
        """The exported payload (``trace.json``), Perfetto-loadable."""
        return {
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "sim-time",
                "sample_rate": self.sample_rate,
                "seed": self.seed,
                "emitted": self.emitted,
                "dropped": self.dropped,
            },
            "traceEvents": [event.as_dict() for event in self.events],
        }


class NullTracer(Tracer):
    """Inert tracer: never samples, never records, exports empty."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(sample_rate=0.0, seed=0, capacity=1)

    def sampled(self, key: int) -> bool:
        return False

    def span(self, name: str, cat: str, start_s: float, end_s: float,
             pid: int = 0, tid: int = 0,
             args: Optional[Dict[str, object]] = None) -> None:
        pass

    def instant(self, name: str, cat: str, t_s: float,
                pid: int = 0, tid: int = 0,
                args: Optional[Dict[str, object]] = None) -> None:
        pass


NULL_TRACER = NullTracer()


def validate_chrome_trace(payload: object) -> List[str]:
    """Schema-check an exported trace; returns problems (empty = valid).

    Checks the subset of the trace-event format we emit: a JSON object
    with a ``traceEvents`` list whose entries carry ``name``/``cat``
    strings, a known ``ph``, non-negative numeric ``ts`` (and ``dur``
    for spans), integer ``pid``/``tid``, and dict ``args`` when present.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"trace payload must be an object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["trace payload is missing the traceEvents list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "cat"):
            if not isinstance(event.get(key), str):
                problems.append(f"{where}: missing string {key!r}")
        ph = event.get("ph")
        if ph not in _PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = event.get("dur")
            if (not isinstance(dur, (int, float)) or isinstance(dur, bool)
                    or dur < 0):
                problems.append(f"{where}: span needs non-negative dur")
        for key in ("pid", "tid"):
            value = event.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                problems.append(f"{where}: {key} must be an integer")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: args must be an object")
    return problems
