"""CLI entry point: ``python -m repro.obs report <metrics.jsonl>``."""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .report import load_rows, render_report, report_payload

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render observability exports from a training run.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    report = subparsers.add_parser(
        "report", help="summarize a metrics JSONL export")
    report.add_argument("path", help="path to a metrics.jsonl file")
    report.add_argument("--format", choices=("table", "json"),
                        default="table",
                        help="human table (default) or machine JSON")
    args = parser.parse_args(argv)

    try:
        rows = load_rows(args.path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        payload = report_payload(rows)
        print(json.dumps(payload, indent=2, sort_keys=True))
        balance = payload.get("drop_balance")
        holds = bool(isinstance(balance, dict) and balance.get("holds"))
        return 0 if holds else 1

    text, holds = render_report(rows)
    print(text)
    return 0 if holds else 1


if __name__ == "__main__":
    sys.exit(main())
