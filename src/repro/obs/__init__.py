"""``repro.obs`` — the run's unified observability plane.

One subsystem replaces the telemetry that PRs 1-8 scattered across five
ad-hoc dicts:

* :mod:`repro.obs.registry` — typed ``Counter``/``Gauge``/``Histogram``
  instruments keyed by name + labels, with collectors adapting the
  legacy views (``EngineStats``, ``TrafficLog``, ``shard.stats()``,
  ``repro.utils.perf``) into one canonical sample stream;
* :mod:`repro.obs.tracing` — seeded, sampled span tracing of message
  lifecycles and control-plane events, exported as Chrome trace-event
  JSON (Perfetto-viewable);
* :mod:`repro.obs.plane` — the per-run bundle the trainer builds from
  ``TrainingConfig`` and the engine flushes via ``PRIORITY_OBS`` events;
  :data:`NULL_OBS` keeps disabled runs byte-identical;
* :mod:`repro.obs.invariants` — the drop-accounting balance, stated
  once and shared by tests, experiments, smoke scripts and the CLI;
* :mod:`repro.obs.report` / ``python -m repro.obs report`` — per-run
  summaries (drop-balance ledger, queue-wait/retry histograms,
  per-shard downtime) for humans and ``--format json`` for machines.

Everything is stamped with **sim-time**; the only wall clock in the
package is ``time.perf_counter`` measuring the plane's own overhead.
"""

from .invariants import DropBalance, assert_drop_balance, drop_balance
from .plane import NULL_OBS, Observability
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Sample,
)
from .tracing import NullTracer, Tracer, validate_chrome_trace

__all__ = [
    "Counter",
    "DropBalance",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "NullRegistry",
    "NullTracer",
    "Observability",
    "Sample",
    "Tracer",
    "assert_drop_balance",
    "drop_balance",
    "validate_chrome_trace",
]
