"""``python -m repro.obs report`` — render a run's metrics JSONL.

Consumes the ``metrics.jsonl`` an :class:`~repro.obs.plane.Observability`
bundle exports (one flushed snapshot per line, the last line being the
end-of-run state) and renders the per-run summary: the drop-balance
ledger re-checked from the snapshot alone, queue-wait / retry
histograms, per-shard health + downtime, and headline counters.
``--format json`` emits the same structure for machines — this is the
payload shape the future run-server (ROADMAP item 4) will stream.

The process exit code is the invariant: 0 when the drop balance holds
in the final snapshot, 1 when it is violated (or the file is empty),
so CI can gate on a finished run's ledger.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from .invariants import DropBalance, drop_balance_from_metrics

__all__ = ["flatten_row", "load_rows", "render_report", "report_payload"]

#: Headline counters surfaced at the top of the human report, in order.
_HEADLINES: Tuple[str, ...] = (
    "engine.events_processed",
    "engine.server_steps",
    "engine.rounds",
    "engine.weight_syncs",
    "engine.quorum_syncs",
    "engine.sync_timeouts",
    "engine.shard_crashes",
    "engine.shard_recoveries",
    "engine.checkpoints_written",
    "engine.chaos_events",
    "traffic.uplink_messages",
    "traffic.downlink_messages",
    "traffic.retried_messages",
    "traffic.corrupted_messages",
)

#: Per-shard columns pulled from ``shard.*{shard=N}`` series, in order.
_SHARD_COLUMNS: Tuple[str, ...] = (
    "batches_processed",
    "queue_dropped",
    "crashes",
    "recoveries",
    "downtime_s",
    "rpo_lost_s",
    "checkpoints_taken",
)


def load_rows(path: Union[str, Path],
              tolerant: bool = True) -> List[Dict[str, object]]:
    """Parse a metrics JSONL file into its snapshot rows.

    This is the *one* reader both consumers share: the ``repro.obs
    report`` CLI and the run-server's ``GET /v1/jobs/<id>/metrics``
    endpoint.  A live run appends to the file between flushes, so with
    ``tolerant=True`` (the default) a **final** line that is not valid
    JSON — or that is missing its terminating newline — is treated as a
    partially-written flush and skipped.  Interior garbage and complete
    lines with the wrong structure still raise: those are corruption,
    not liveness.
    """
    text = Path(path).read_text(encoding="utf-8")
    complete = text.endswith("\n")
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    rows: List[Dict[str, object]] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        last = lineno == len(lines)
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            if tolerant and last:
                break  # a flush caught mid-write; the row isn't durable yet
            raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
        if tolerant and last and not complete:
            break  # parseable prefix of an unfinished line — not durable
        if not isinstance(row, dict) or "t" not in row or "metrics" not in row:
            raise ValueError(
                f"{path}:{lineno}: snapshot rows need 't' and 'metrics' keys")
        rows.append(row)
    return rows


def flatten_row(row: Mapping[str, object]) -> Dict[str, float]:
    """``{name{label=value}: value}`` view of one snapshot row.

    Public because the run-server's ``?snapshot=1`` metrics view and the
    report pipeline must agree on the flattening (it is the key format
    :func:`repro.obs.invariants.drop_balance_from_metrics` consumes).
    """
    flat: Dict[str, float] = {}
    metrics = row.get("metrics")
    if not isinstance(metrics, list):
        return flat
    for sample in metrics:
        if not isinstance(sample, dict):
            continue
        labels = sample.get("labels") or {}
        name = str(sample.get("name"))
        if isinstance(labels, dict) and labels:
            tail = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            name = f"{name}{{{tail}}}"
        value = sample.get("value")
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[name] = float(value)
    return flat


def _histograms(row: Mapping[str, object]) -> List[Dict[str, object]]:
    found: List[Dict[str, object]] = []
    metrics = row.get("metrics")
    if not isinstance(metrics, list):
        return found
    for sample in metrics:
        if isinstance(sample, dict) and sample.get("kind") == "histogram":
            found.append(sample)
    return found


def _shard_rows(row: Mapping[str, object]) -> Dict[str, Dict[str, float]]:
    """``{shard id: {short name: value}}`` from ``shard.*`` series."""
    shards: Dict[str, Dict[str, float]] = {}
    metrics = row.get("metrics")
    if not isinstance(metrics, list):
        return shards
    for sample in metrics:
        if not isinstance(sample, dict):
            continue
        labels = sample.get("labels")
        name = str(sample.get("name", ""))
        if not (isinstance(labels, dict) and "shard" in labels
                and name.startswith("shard.")):
            continue
        value = sample.get("value")
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            shards.setdefault(str(labels["shard"]), {})[name[len("shard."):]] = (
                float(value))
    return shards


def _render_histogram(sample: Mapping[str, object], width: int = 40) -> str:
    bounds = [float(b) for b in sample.get("bucket_bounds") or []]  # type: ignore[union-attr]
    counts = [int(c) for c in sample.get("bucket_counts") or []]  # type: ignore[union-attr]
    total = int(sample.get("count") or 0)
    lines = [f"{sample.get('name')} (count={total})"]
    peak = max(counts) if counts else 0
    edges = [f"<= {bound:g}" for bound in bounds] + ["overflow"]
    label_width = max(len(edge) for edge in edges)
    for edge, count in zip(edges, counts):
        bar = "#" * (round(width * count / peak) if peak else 0)
        lines.append(f"  {edge:<{label_width}} {count:>8d} {bar}")
    return "\n".join(lines)


def report_payload(rows: List[Dict[str, object]]) -> Dict[str, object]:
    """Machine-readable report (the ``--format json`` body)."""
    if not rows:
        return {"error": "no snapshots in file", "drop_balance": None}
    last = rows[-1]
    flat = flatten_row(last)
    balance: Optional[DropBalance]
    try:
        balance = drop_balance_from_metrics(flat)
    except KeyError:
        balance = None
    return {
        "snapshots": len(rows),
        "final_t": last.get("t"),
        "drop_balance": balance.as_dict() if balance is not None else None,
        "headline": {name: flat[name] for name in _HEADLINES if name in flat},
        "histograms": _histograms(last),
        "shards": _shard_rows(last),
    }


def render_report(rows: List[Dict[str, object]]) -> Tuple[str, bool]:
    """Human-readable report; returns ``(text, invariant_holds)``."""
    if not rows:
        return "no snapshots in file", False
    payload = report_payload(rows)
    last = rows[-1]
    lines: List[str] = [
        f"observability report — {payload['snapshots']} snapshot(s), "
        f"final sim-time t={float(str(last.get('t', 0.0))):.4f}s",
        "",
    ]

    headline = payload["headline"]
    assert isinstance(headline, dict)
    if headline:
        lines.append("headline counters")
        width = max(len(name) for name in headline)
        for name, value in headline.items():
            lines.append(f"  {name:<{width}} {value:>12g}")
        lines.append("")

    balance_dict = payload["drop_balance"]
    holds = False
    lines.append("drop balance (notified == queue + transport - nack - sync "
                 "+ failover - deduped + gave_up)")
    if balance_dict is None:
        lines.append("  [drop-balance series missing from snapshot]")
    else:
        flat = flatten_row(last)
        balance = drop_balance_from_metrics(flat)
        holds = balance.holds
        lines.append(balance.table())
    lines.append("")

    histograms = payload["histograms"]
    assert isinstance(histograms, list)
    for sample in histograms:
        assert isinstance(sample, dict)
        lines.append(_render_histogram(sample))
        lines.append("")

    shards = payload["shards"]
    assert isinstance(shards, dict)
    if shards:
        columns = [c for c in _SHARD_COLUMNS
                   if any(c in row for row in shards.values())]
        header = "  shard " + " ".join(f"{c:>18}" for c in columns)
        lines.append("per-shard")
        lines.append(header)
        for shard_id in sorted(shards, key=lambda s: (len(s), s)):
            row = shards[shard_id]
            cells = " ".join(f"{row.get(c, 0.0):>18g}" for c in columns)
            lines.append(f"  {shard_id:>5} {cells}")
        lines.append("")

    lines.append(f"invariant: {'HOLDS' if holds else 'VIOLATED'}")
    return "\n".join(lines), holds
