"""Run-level invariants, shared by tests, experiments and the CLI.

The extended drop-accounting balance —

    notified == queue + transport - nack - sync + failover - deduped + gave_up

— was re-stated, formula and error message alike, in
``tests/core/test_lossy_semantics.py``, ``experiments/chaos_matrix.py``
and ``scripts/chaos_smoke.py``.  This module is the one statement of it:
a :class:`DropBalance` record built either from a live trainer or from a
metrics snapshot (so ``repro.obs report`` can re-check a finished run
from its JSONL alone), plus the raising helper the three call sites use.

Rationale for each term (the long-form story lives with the lossy-
semantics tests): a dropped NACK is not another lost batch, inter-server
sync snapshots never involve a client, crash-shed batches enter through
the failover counter, a deduplicated copy's batch survived with the
first copy, and an exhausted retry chain is exactly one lost batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

__all__ = [
    "DropBalance",
    "assert_drop_balance",
    "drop_balance",
    "drop_balance_from_metrics",
]

#: (field, metric name) pairs as they appear in a collected snapshot.
_METRIC_NAMES: Tuple[Tuple[str, str], ...] = (
    ("notified", "clients.drops_notified"),
    ("queue_dropped", "cluster.queue_dropped"),
    ("transport_dropped", "traffic.dropped_messages"),
    ("nack_dropped", "traffic.nack_dropped"),
    ("sync_dropped", "traffic.sync_dropped"),
    ("failover_dropped", "engine.failover_dropped"),
    ("deduped", "engine.deduped"),
    ("gave_up", "engine.gave_up"),
    ("leaked", "clients.pending_batches"),
)


@dataclass(frozen=True)
class DropBalance:
    """One evaluation of the leak-freedom balance."""

    notified: int
    queue_dropped: int
    transport_dropped: int
    nack_dropped: int
    sync_dropped: int
    failover_dropped: int
    deduped: int
    gave_up: int
    #: Client-side activations still awaiting a gradient (must be 0).
    leaked: int = 0

    @property
    def expected(self) -> int:
        return (self.queue_dropped + self.transport_dropped
                - self.nack_dropped - self.sync_dropped
                + self.failover_dropped - self.deduped + self.gave_up)

    @property
    def holds(self) -> bool:
        return self.notified == self.expected and self.leaked == 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "notified": self.notified,
            "expected": self.expected,
            "queue_dropped": self.queue_dropped,
            "transport_dropped": self.transport_dropped,
            "nack_dropped": self.nack_dropped,
            "sync_dropped": self.sync_dropped,
            "failover_dropped": self.failover_dropped,
            "deduped": self.deduped,
            "gave_up": self.gave_up,
            "leaked": self.leaked,
            "holds": int(self.holds),
        }

    def describe(self) -> str:
        """The canonical out-of-balance message (pre-PR 9 wording)."""
        return (
            f"drop accounting out of balance: notified={self.notified} "
            f"expected={self.expected} (queue={self.queue_dropped}, "
            f"transport={self.transport_dropped}, nack={self.nack_dropped}, "
            f"sync={self.sync_dropped}, failover={self.failover_dropped}, "
            f"deduped={self.deduped}, gave_up={self.gave_up})"
        )

    def table(self) -> str:
        """Signed drop-balance ledger for the report CLI."""
        rows: List[Tuple[str, str, int]] = [
            ("queue_dropped", "+", self.queue_dropped),
            ("transport_dropped", "+", self.transport_dropped),
            ("nack_dropped", "-", self.nack_dropped),
            ("sync_dropped", "-", self.sync_dropped),
            ("failover_dropped", "+", self.failover_dropped),
            ("deduped", "-", self.deduped),
            ("gave_up", "+", self.gave_up),
        ]
        width = max(len(name) for name, _, _ in rows) + 2
        lines = [f"  {sign} {name:<{width}} {value:>8d}"
                 for name, sign, value in rows]
        lines.append(f"  = {'expected':<{width}} {self.expected:>8d}")
        lines.append(f"    {'notified':<{width}} {self.notified:>8d}")
        status = "BALANCED" if self.notified == self.expected else "VIOLATED"
        lines.append(f"    {'status':<{width}} {status:>8}")
        if self.leaked:
            lines.append(f"    {'leaked':<{width}} {self.leaked:>8d}")
        return "\n".join(lines)


def drop_balance(trainer: object) -> DropBalance:
    """Evaluate the balance on a live trainer (duck-typed).

    Works on anything exposing the ``SpatioTemporalTrainer`` surface:
    ``transport.log``, ``engine.stats``, ``cluster.shards`` and
    ``end_systems``.
    """
    log = trainer.transport.log  # type: ignore[attr-defined]
    stats = trainer.engine.stats  # type: ignore[attr-defined]
    shards = trainer.cluster.shards  # type: ignore[attr-defined]
    end_systems = trainer.end_systems  # type: ignore[attr-defined]
    return DropBalance(
        notified=sum(es.drops_notified for es in end_systems),
        queue_dropped=sum(shard.queue.dropped for shard in shards),
        transport_dropped=log.dropped_messages,
        nack_dropped=log.nack_dropped,
        sync_dropped=log.sync_dropped,
        failover_dropped=stats.failover_dropped,
        deduped=stats.deduped,
        gave_up=stats.gave_up,
        leaked=sum(es.pending_batches for es in end_systems),
    )


def drop_balance_from_metrics(metrics: Mapping[str, float]) -> DropBalance:
    """Rebuild the balance from a flat ``{metric name: value}`` snapshot
    (the last row of an obs JSONL export)."""
    missing = [name for _, name in _METRIC_NAMES if name not in metrics]
    if missing:
        raise KeyError(
            f"metrics snapshot is missing drop-balance series: {missing}")
    values = {field: int(metrics[name]) for field, name in _METRIC_NAMES}
    return DropBalance(**values)


def assert_drop_balance(trainer: object) -> DropBalance:
    """Raise ``AssertionError`` on imbalance or leak; return the record."""
    balance = drop_balance(trainer)
    if balance.notified != balance.expected:
        raise AssertionError(balance.describe())
    if balance.leaked:
        raise AssertionError(f"{balance.leaked} pending activations leaked")
    return balance
