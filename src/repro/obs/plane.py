"""The per-run observability bundle: registry + tracer + sinks.

``Observability`` is what the trainer builds from ``TrainingConfig`` and
hands to the engine: a :class:`~repro.obs.registry.MetricsRegistry`, a
:class:`~repro.obs.tracing.Tracer`, and an in-memory JSONL metrics sink
that periodic ``PRIORITY_OBS`` engine events flush into.  With
``obs_enabled=False`` (the default) the bundle is the shared
:data:`NULL_OBS` — every hook is a no-op and the run is byte-identical
to a pre-obs run.

Profiling exception: :meth:`Observability.flush` measures its *own*
wall-clock cost with ``time.perf_counter`` (the one wall clock RL002
permits) so the overhead the obs plane adds is itself observable; the
simulation never sees that value.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, TextIO, Tuple, Union

from .registry import (NULL_REGISTRY, MetricsRegistry, NullRegistry, Sample,
                       _sample_order)
from .tracing import NULL_TRACER, NullTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.config import TrainingConfig

__all__ = [
    "NULL_OBS",
    "Observability",
    "QUEUE_WAIT_BOUNDS_S",
    "RETRY_BOUNDS",
]

#: Queue-wait histogram edges (sim-seconds): sub-millisecond admits
#: through multi-second backpressure stalls, roughly log-spaced.
QUEUE_WAIT_BOUNDS_S: Tuple[float, ...] = (
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0)

#: Retries-per-transfer histogram edges (attempt counts are small ints;
#: ``retry_max`` defaults cap out well below 8).
RETRY_BOUNDS: Tuple[float, ...] = (0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0)


class Observability:
    """Registry + tracer + metrics sink for one training run."""

    def __init__(self, registry: Union[MetricsRegistry, NullRegistry],
                 tracer: Tracer, enabled: bool = True,
                 flush_every_s: Optional[float] = None) -> None:
        self.registry = registry
        self.tracer = tracer
        self.enabled = enabled
        #: Sim-time cadence of the engine's PRIORITY_OBS flush events
        #: (``None`` = only the end-of-run flush).
        self.flush_every_s = flush_every_s
        #: One ``(sim_time, samples)`` pair per flush.  Samples are
        #: immutable snapshots; JSON conversion is deferred to export so
        #: the periodic flush events stay cheap.
        self.rows: List[Tuple[float, List[Sample]]] = []
        self.flushes = 0
        #: Wall-clock seconds spent inside ``flush`` — the profiling
        #: module's own overhead ledger (perf_counter is RL002-clean).
        self.flush_wall_s = 0.0
        #: Open handle of the live JSONL sink (see :meth:`stream_to`);
        #: ``None`` keeps the original flush-to-memory-only behavior.
        self._stream: Optional[TextIO] = None

    @classmethod
    def from_config(cls, config: "TrainingConfig") -> "Observability":
        """Build the run's bundle; inert singleton when obs is off."""
        if not config.obs_enabled:
            return NULL_OBS
        tracer = Tracer(sample_rate=config.obs_trace_sample_rate,
                        seed=config.seed,
                        capacity=config.obs_trace_capacity)
        return cls(MetricsRegistry(), tracer, enabled=True,
                   flush_every_s=config.obs_flush_every_s)

    # -- metrics sink --------------------------------------------------------

    def flush(self, sim_time: float) -> None:
        """Collect every registered series into one timestamped row.

        Rows are kept in collector order; the canonical ``(name,
        labels)`` sort happens once per row at export instead of on
        every flush — unless a live sink is attached
        (:meth:`stream_to`), in which case the row is also rendered and
        appended to the sink file immediately, byte-identical to what
        :meth:`metrics_jsonl` would later export.
        """
        if not self.enabled:
            return
        started = time.perf_counter()
        row = (sim_time, self.registry.collect_unsorted())
        self.rows.append(row)
        self.flushes += 1
        if self._stream is not None:
            self._stream.write(_render_row(row))
            self._stream.flush()
        self.flush_wall_s += time.perf_counter() - started

    def stream_to(self, path: Union[str, Path], append: bool = False) -> None:
        """Attach a live JSONL sink: every flush appends its row to ``path``.

        This is what the run-server worker uses so ``GET
        /v1/jobs/<id>/metrics`` can serve rows *during* a run: the file
        grows one line per flush, each line byte-identical to the
        corresponding line of the end-of-run :meth:`metrics_jsonl`
        export.  With ``append=True`` (a resumed run) existing rows are
        kept and new ones are appended.  A no-op on a disabled bundle.
        """
        if not self.enabled:
            return
        if self._stream is not None:
            self._stream.close()
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        self._stream = open(target, "a" if append else "w", encoding="utf-8")

    def close_stream(self) -> None:
        """Detach and close the live JSONL sink, if one is attached."""
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def metrics_jsonl(self) -> str:
        return "".join(_render_row(row) for row in self.rows)

    # -- checkpoint support --------------------------------------------------

    def instruments_state(self) -> List[Dict[str, object]]:
        """Registry instrument state for ``RunCheckpoint`` (empty when off)."""
        if not self.enabled:
            return []
        return self.registry.instruments_state()

    def restore_instruments(self, rows: List[Dict[str, object]]) -> None:
        """Reinstall captured instrument state into a resumed run's registry,
        so its metric rows continue exactly where the crashed run's left off."""
        if self.enabled and rows:
            self.registry.restore_instruments(rows)

    def last_snapshot(self) -> Dict[str, float]:
        """Flat ``{name: value}`` view of the newest flushed row."""
        if not self.rows:
            return {}
        _, samples = self.rows[-1]
        flat: Dict[str, float] = {}
        for sample in samples:
            name = sample.name
            if sample.labels:
                tail = ",".join(f"{k}={v}" for k, v in sample.labels)
                name = f"{name}{{{tail}}}"
            flat[name] = float(sample.value)
        return flat

    # -- export --------------------------------------------------------------

    def write(self, directory: Union[str, Path]) -> Tuple[Path, Path]:
        """Write ``metrics.jsonl`` + ``trace.json``; returns both paths."""
        out = Path(directory)
        out.mkdir(parents=True, exist_ok=True)
        metrics_path = out / "metrics.jsonl"
        trace_path = out / "trace.json"
        metrics_path.write_text(self.metrics_jsonl())
        self.write_trace(trace_path)
        return metrics_path, trace_path

    def write_trace(self, path: Union[str, Path]) -> Path:
        """Write just ``trace.json`` (the worker streams metrics live
        and only needs the trace exported at the end of the run)."""
        trace_path = Path(path)
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        trace_path.write_text(json.dumps(self.tracer.chrome_trace()) + "\n")
        return trace_path


def _render_row(row: Tuple[float, List[Sample]]) -> str:
    """One metrics row as its canonical JSONL line (sorted samples)."""
    sim_time, samples = row
    return json.dumps(
        {"t": sim_time,
         "metrics": [sample.as_dict() for sample in
                     sorted(samples, key=_sample_order)]}
    ) + "\n"


#: The obs-off bundle: shared, inert, and safe to hand to every engine.
NULL_OBS = Observability(NULL_REGISTRY, NULL_TRACER, enabled=False)
