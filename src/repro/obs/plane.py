"""The per-run observability bundle: registry + tracer + sinks.

``Observability`` is what the trainer builds from ``TrainingConfig`` and
hands to the engine: a :class:`~repro.obs.registry.MetricsRegistry`, a
:class:`~repro.obs.tracing.Tracer`, and an in-memory JSONL metrics sink
that periodic ``PRIORITY_OBS`` engine events flush into.  With
``obs_enabled=False`` (the default) the bundle is the shared
:data:`NULL_OBS` — every hook is a no-op and the run is byte-identical
to a pre-obs run.

Profiling exception: :meth:`Observability.flush` measures its *own*
wall-clock cost with ``time.perf_counter`` (the one wall clock RL002
permits) so the overhead the obs plane adds is itself observable; the
simulation never sees that value.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from .registry import (NULL_REGISTRY, MetricsRegistry, NullRegistry, Sample,
                       _sample_order)
from .tracing import NULL_TRACER, NullTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.config import TrainingConfig

__all__ = [
    "NULL_OBS",
    "Observability",
    "QUEUE_WAIT_BOUNDS_S",
    "RETRY_BOUNDS",
]

#: Queue-wait histogram edges (sim-seconds): sub-millisecond admits
#: through multi-second backpressure stalls, roughly log-spaced.
QUEUE_WAIT_BOUNDS_S: Tuple[float, ...] = (
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0)

#: Retries-per-transfer histogram edges (attempt counts are small ints;
#: ``retry_max`` defaults cap out well below 8).
RETRY_BOUNDS: Tuple[float, ...] = (0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0)


class Observability:
    """Registry + tracer + metrics sink for one training run."""

    def __init__(self, registry: Union[MetricsRegistry, NullRegistry],
                 tracer: Tracer, enabled: bool = True,
                 flush_every_s: Optional[float] = None) -> None:
        self.registry = registry
        self.tracer = tracer
        self.enabled = enabled
        #: Sim-time cadence of the engine's PRIORITY_OBS flush events
        #: (``None`` = only the end-of-run flush).
        self.flush_every_s = flush_every_s
        #: One ``(sim_time, samples)`` pair per flush.  Samples are
        #: immutable snapshots; JSON conversion is deferred to export so
        #: the periodic flush events stay cheap.
        self.rows: List[Tuple[float, List[Sample]]] = []
        self.flushes = 0
        #: Wall-clock seconds spent inside ``flush`` — the profiling
        #: module's own overhead ledger (perf_counter is RL002-clean).
        self.flush_wall_s = 0.0

    @classmethod
    def from_config(cls, config: "TrainingConfig") -> "Observability":
        """Build the run's bundle; inert singleton when obs is off."""
        if not config.obs_enabled:
            return NULL_OBS
        tracer = Tracer(sample_rate=config.obs_trace_sample_rate,
                        seed=config.seed,
                        capacity=config.obs_trace_capacity)
        return cls(MetricsRegistry(), tracer, enabled=True,
                   flush_every_s=config.obs_flush_every_s)

    # -- metrics sink --------------------------------------------------------

    def flush(self, sim_time: float) -> None:
        """Collect every registered series into one timestamped row.

        Rows are kept in collector order; the canonical ``(name,
        labels)`` sort happens once per row at export instead of on
        every flush.
        """
        if not self.enabled:
            return
        started = time.perf_counter()
        self.rows.append((sim_time, self.registry.collect_unsorted()))
        self.flushes += 1
        self.flush_wall_s += time.perf_counter() - started

    def metrics_jsonl(self) -> str:
        return "".join(
            json.dumps({"t": sim_time,
                        "metrics": [sample.as_dict() for sample in
                                    sorted(samples, key=_sample_order)]})
            + "\n"
            for sim_time, samples in self.rows
        )

    def last_snapshot(self) -> Dict[str, float]:
        """Flat ``{name: value}`` view of the newest flushed row."""
        if not self.rows:
            return {}
        _, samples = self.rows[-1]
        flat: Dict[str, float] = {}
        for sample in samples:
            name = sample.name
            if sample.labels:
                tail = ",".join(f"{k}={v}" for k, v in sample.labels)
                name = f"{name}{{{tail}}}"
            flat[name] = float(sample.value)
        return flat

    # -- export --------------------------------------------------------------

    def write(self, directory: Union[str, Path]) -> Tuple[Path, Path]:
        """Write ``metrics.jsonl`` + ``trace.json``; returns both paths."""
        out = Path(directory)
        out.mkdir(parents=True, exist_ok=True)
        metrics_path = out / "metrics.jsonl"
        trace_path = out / "trace.json"
        metrics_path.write_text(self.metrics_jsonl())
        trace_path.write_text(json.dumps(self.tracer.chrome_trace()) + "\n")
        return metrics_path, trace_path


#: The obs-off bundle: shared, inert, and safe to hand to every engine.
NULL_OBS = Observability(NULL_REGISTRY, NULL_TRACER, enabled=False)
