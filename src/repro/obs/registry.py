"""Typed metrics registry: ``Counter`` / ``Gauge`` / ``Histogram``.

One registry per run replaces the five ad-hoc counter dicts that grew
across PRs 1-8 (``EngineStats``, ``TrafficLog``, ``shard.stats()``,
``history.queue_stats``, ``repro.utils.perf``).  Those dicts stay the
source of truth for their subsystems — they register *collectors* here,
and :meth:`MetricsRegistry.collect` walks them into one canonical,
label-addressed sample stream.  New obs-only signals (queue-wait and
retry histograms) are first-class instruments observed on the hot path.

Design constraints, in order:

* **Sim-time only.**  The registry never reads a clock; callers pass the
  simulator's ``now`` into :meth:`collect`.  That keeps the module
  RL002-clean and samples reproducible across machines.
* **Allocation-free hot path.**  Instruments are resolved once at wiring
  time (name + labels -> handle); ``inc``/``set``/``observe`` touch only
  pre-allocated scalars and a fixed bucket list (``bisect`` over a
  tuple).  Nothing in the hot path formats strings or builds dicts.
* **Inert default.**  :class:`NullRegistry` answers the same API with
  shared no-op instruments so obs-off runs execute the identical
  simulation codepath and stay byte-identical (pinned by
  ``tests/obs/test_obs_equivalence.py``).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LabelSet",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Sample",
    "samples_from_mapping",
]

#: Canonical label representation: sorted ``(key, value)`` pairs.
LabelSet = Tuple[Tuple[str, str], ...]

Number = Union[int, float]


def _labelset(labels: Optional[Mapping[str, object]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Sample:
    """One collected metric value, JSON-ready via :meth:`as_dict`.

    A plain ``__slots__`` class, not a dataclass: ``collect`` builds one
    per series per flush, so construction cost is the flush hot path
    (conversion to dicts is deferred to export time for the same
    reason).
    """

    __slots__ = ("name", "kind", "labels", "value", "bucket_bounds",
                 "bucket_counts", "count")

    def __init__(self, name: str, kind: str, labels: LabelSet, value: float,
                 bucket_bounds: Optional[Tuple[float, ...]] = None,
                 bucket_counts: Optional[Tuple[int, ...]] = None,
                 count: Optional[int] = None) -> None:
        self.name = name
        self.kind = kind  # "counter" | "gauge" | "histogram"
        self.labels = labels
        self.value = value
        #: Histogram-only: finite bucket upper bounds (the last bucket
        #: is the implicit +inf overflow) and the per-bucket counts.
        self.bucket_bounds = bucket_bounds
        self.bucket_counts = bucket_counts
        self.count = count

    def as_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
        }
        if self.kind == "histogram":
            row["bucket_bounds"] = list(self.bucket_bounds or ())
            row["bucket_counts"] = list(self.bucket_counts or ())
            row["count"] = self.count
        return row


@dataclass
class Counter:
    """Monotonically increasing count.  ``inc`` is the whole hot path."""

    name: str
    labels: LabelSet = ()
    value: float = 0.0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def sample(self) -> Sample:
        return Sample(self.name, "counter", self.labels, float(self.value))


@dataclass
class Gauge:
    """Point-in-time value (queue depth, healthy shards, RSS)."""

    name: str
    labels: LabelSet = ()
    value: float = 0.0

    def set(self, value: Number) -> None:
        self.value = float(value)

    def sample(self) -> Sample:
        return Sample(self.name, "gauge", self.labels, float(self.value))


class Histogram:
    """Fixed-bucket histogram; ``observe`` allocates nothing.

    ``bounds`` are ascending finite upper edges; a value lands in the
    first bucket whose bound is ``>= value`` (``bisect_left``, so edges
    are inclusive), with one extra overflow bucket past the last bound.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "total", "count")

    def __init__(self, name: str, bounds: Tuple[float, ...],
                 labels: LabelSet = ()) -> None:
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(
                f"histogram {name!r} bounds must be strictly ascending: {bounds!r}")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: Number) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def sample(self) -> Sample:
        return Sample(self.name, "histogram", self.labels, float(self.total),
                      bucket_bounds=self.bounds,
                      bucket_counts=tuple(self.counts), count=self.count)


Instrument = Union[Counter, Gauge, Histogram]


def _sample_order(sample: Sample) -> Tuple[str, LabelSet]:
    """Canonical ``(name, labels)`` sort key for exported sample rows."""
    return (sample.name, sample.labels)

#: A collector re-reads some subsystem's own counters into samples.
Collector = Callable[[], Iterable[Sample]]


def samples_from_mapping(prefix: str, mapping: Mapping[str, object],
                         labels: Optional[Mapping[str, object]] = None,
                         kind: str = "counter") -> List[Sample]:
    """Adapt a legacy counter dict (``as_dict``/``summary``/``stats``
    views) into canonical samples; non-numeric values are skipped.

    Runs once per registered mapping per flush, so it iterates insertion
    order and leaves ordering to :meth:`MetricsRegistry.collect`'s final
    global sort.
    """
    labelset = _labelset(labels)
    prefix_dot = prefix + "."
    rows: List[Sample] = []
    append = rows.append
    for key, value in mapping.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        append(Sample(prefix_dot + key, kind, labelset, float(value)))
    return rows


class MetricsRegistry:
    """Get-or-create instrument store keyed by ``(name, labels)``.

    A metric name owns one kind (and, for histograms, one bucket
    layout) across every label combination — re-registering with a
    conflicting kind raises instead of silently forking the series.
    """

    enabled: bool = True

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelSet], Instrument] = {}
        self._kinds: Dict[str, str] = {}
        self._bounds: Dict[str, Tuple[float, ...]] = {}
        self._collectors: List[Collector] = []

    # -- instrument creation -------------------------------------------------

    def _check_kind(self, name: str, kind: str) -> None:
        seen = self._kinds.setdefault(name, kind)
        if seen != kind:
            raise ValueError(
                f"metric {name!r} already registered as {seen}, not {kind}")

    def counter(self, name: str, **labels: object) -> Counter:
        self._check_kind(name, "counter")
        key = (name, _labelset(labels))
        found = self._instruments.get(key)
        if found is None:
            found = Counter(name, key[1])
            self._instruments[key] = found
        assert isinstance(found, Counter)
        return found

    def gauge(self, name: str, **labels: object) -> Gauge:
        self._check_kind(name, "gauge")
        key = (name, _labelset(labels))
        found = self._instruments.get(key)
        if found is None:
            found = Gauge(name, key[1])
            self._instruments[key] = found
        assert isinstance(found, Gauge)
        return found

    def histogram(self, name: str, bounds: Iterable[float],
                  **labels: object) -> Histogram:
        self._check_kind(name, "histogram")
        bounds = tuple(float(b) for b in bounds)
        seen = self._bounds.setdefault(name, bounds)
        if seen != bounds:
            raise ValueError(
                f"metric {name!r} already registered with buckets {seen!r}, "
                f"not {bounds!r}")
        key = (name, _labelset(labels))
        found = self._instruments.get(key)
        if found is None:
            found = Histogram(name, bounds, key[1])
            self._instruments[key] = found
        assert isinstance(found, Histogram)
        return found

    # -- collection ----------------------------------------------------------

    def register_collector(self, collector: Collector) -> None:
        self._collectors.append(collector)

    def collect_unsorted(self) -> List[Sample]:
        """All instrument + collector samples, collector order.

        The flush hot path: skips the canonical sort (collector order is
        itself deterministic — wiring order never changes within a run)
        so the per-flush cost is just reading the counters.  Exports
        that promise sorted output call :meth:`collect` or sort rows
        themselves.
        """
        rows = [instrument.sample() for instrument in self._instruments.values()]
        for collector in self._collectors:
            rows.extend(collector())
        return rows

    def collect(self) -> List[Sample]:
        """All instrument + collector samples in deterministic sorted order."""
        rows = self.collect_unsorted()
        rows.sort(key=_sample_order)
        return rows

    # -- checkpoint support --------------------------------------------------

    def instruments_state(self) -> List[Dict[str, object]]:
        """JSON-able snapshot of every first-class instrument's state.

        Collectors re-read their subsystems and need no capture, but the
        registry-owned instruments (the queue-wait / retry histograms)
        hold state nothing else does — without this, a crash-resumed run
        would restart them from zero and its metric rows would diverge
        from an uninterrupted run's.  Rides inside ``RunCheckpoint``.
        """
        rows: List[Dict[str, object]] = []
        for (name, labels), instrument in self._instruments.items():
            row: Dict[str, object] = {
                "name": name,
                "labels": [list(pair) for pair in labels],
            }
            if isinstance(instrument, Histogram):
                row.update(kind="histogram",
                           bounds=list(instrument.bounds),
                           counts=list(instrument.counts),
                           total=instrument.total,
                           count=instrument.count)
            elif isinstance(instrument, Gauge):
                row.update(kind="gauge", value=instrument.value)
            else:
                row.update(kind="counter", value=instrument.value)
            rows.append(row)
        return rows

    def restore_instruments(self,
                            rows: Iterable[Mapping[str, object]]) -> None:
        """Reinstall instrument state captured by :meth:`instruments_state`.

        Get-or-create semantics: instruments the wiring already resolved
        are updated in place (handles stay valid), unseen ones are
        created — so restore order relative to wiring does not matter.
        """
        for row in rows:
            labels = {str(key): value
                      for key, value in row.get("labels", ())}  # type: ignore[union-attr]
            name = str(row["name"])
            kind = row.get("kind")
            if kind == "histogram":
                histogram = self.histogram(
                    name, [float(b) for b in row["bounds"]],  # type: ignore[union-attr]
                    **labels)
                histogram.counts = [int(c) for c in row["counts"]]  # type: ignore[union-attr]
                histogram.total = float(row["total"])  # type: ignore[arg-type]
                histogram.count = int(row["count"])  # type: ignore[arg-type]
            elif kind == "gauge":
                self.gauge(name, **labels).value = float(row["value"])  # type: ignore[arg-type]
            else:
                self.counter(name, **labels).value = float(row["value"])  # type: ignore[arg-type]

    def __len__(self) -> int:
        return len(self._instruments)


class _NullCounter(Counter):
    def inc(self, amount: Number = 1) -> None:
        pass


class _NullGauge(Gauge):
    def set(self, value: Number) -> None:
        pass


class _NullHistogram(Histogram):
    def observe(self, value: Number) -> None:
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null", (1.0,))


class NullRegistry(MetricsRegistry):
    """Same API, zero effect — the obs-off default everywhere."""

    enabled = False

    def counter(self, name: str, **labels: object) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: object) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str, bounds: Iterable[float],
                  **labels: object) -> Histogram:
        return _NULL_HISTOGRAM

    def register_collector(self, collector: Collector) -> None:
        pass

    def collect(self) -> List[Sample]:
        return []

    def instruments_state(self) -> List[Dict[str, object]]:
        return []

    def restore_instruments(self,
                            rows: Iterable[Mapping[str, object]]) -> None:
        pass


#: Shared inert registry; safe because every operation is a no-op.
NULL_REGISTRY = NullRegistry()
