"""One server replica in a sharded split-learning deployment.

A :class:`ServerShard` wraps a full :class:`~repro.core.server.CentralServer`
— its own server-segment copy, optimizer state, scheduling queue and
activation arena — and adds the bookkeeping a multi-server deployment
needs: which topology hub the shard sits on, which end-systems it owns,
and how much work it has absorbed since the last inter-server weight
synchronization (the weighting used by full averaging).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.messages import ActivationMessage, GradientMessage
from ..core.server import CentralServer

__all__ = ["ServerShard"]


class ServerShard:
    """A :class:`CentralServer` replica owning one shard of the clients.

    Parameters
    ----------
    shard_id:
        Index of this shard within the cluster (``0 <= shard_id < S``).
    server:
        The wrapped server instance (exclusively owned by this shard).
    node_name:
        Name of the shard's hub node in the simulated topology.
    """

    def __init__(self, shard_id: int, server: CentralServer, node_name: str) -> None:
        self.shard_id = int(shard_id)
        self.server = server
        self.node_name = node_name
        #: System ids of the end-systems assigned to this shard.
        self.client_ids: List[int] = []
        #: Samples trained on since the last weight sync (averaging weight).
        self.samples_since_sync = 0
        #: Server steps taken since the last weight sync (async merge cadence).
        self.steps_since_sync = 0
        #: Weight synchronizations this shard has participated in.
        self.syncs_applied = 0
        #: Health state (failure injection): a crashed shard accepts no
        #: traffic and is skipped by every sync rendezvous/broadcast.
        self.healthy = True
        self.crashes = 0
        self.recoveries = 0
        #: Simulated time of the crash currently in effect (``None`` while up).
        self.down_since: Optional[float] = None
        #: Total simulated seconds spent down across completed outages.
        self.downtime_s = 0.0
        #: Recovery-point bookkeeping (the RPO metric, ISSUE 6): the
        #: simulated time and processed-sample count of the freshest
        #: durable state this shard could be restored from — its initial
        #: weights at construction, refreshed by every sync install and
        #: every checkpoint capture.
        self.recovery_point_time_s = 0.0
        self.recovery_point_samples = 0
        self.recovery_point_kind = "initial"
        #: Accumulated lost work across this shard's recoveries: the gap
        #: between each crash and the recovery point it was restored from.
        self.rpo_lost_s = 0.0
        self.rpo_lost_samples = 0
        self.recoveries_from_checkpoint = 0
        self.recoveries_from_sync = 0
        self.recoveries_from_initial = 0
        #: Checkpoints captured from this shard (engine cadence).
        self.checkpoints_taken = 0

    # ------------------------------------------------------------------ #
    # Health (failure injection)
    # ------------------------------------------------------------------ #
    def mark_down(self, now: float) -> None:
        """Record a crash at simulated time ``now``."""
        if not self.healthy:
            raise RuntimeError(f"shard {self.shard_id} is already down")
        self.healthy = False
        self.crashes += 1
        self.down_since = float(now)

    def mark_up(self, now: float) -> None:
        """Record a recovery at simulated time ``now``."""
        if self.healthy:
            raise RuntimeError(f"shard {self.shard_id} is already up")
        self.healthy = True
        self.recoveries += 1
        if self.down_since is not None:
            self.downtime_s += max(0.0, float(now) - self.down_since)
        self.down_since = None

    # ------------------------------------------------------------------ #
    # Recovery-point accounting (RPO metric)
    # ------------------------------------------------------------------ #
    def note_recovery_point(self, now: float, kind: str) -> None:
        """Record that a durable restore point for this shard exists at ``now``.

        Called when a checkpoint of this shard is captured and when a
        sync snapshot is installed — from that moment a crash loses only
        the work done *after* ``now``.
        """
        self.recovery_point_time_s = float(now)
        self.recovery_point_samples = self.samples_processed
        self.recovery_point_kind = kind

    def record_recovery(self, crash_time: float, samples_at_crash: int,
                        point_time: float, point_samples: int, kind: str) -> None:
        """Account one recovery's lost work against the chosen restore point.

        ``kind`` names the restore source (``"checkpoint"``, ``"sync"``
        or ``"initial"``); the seconds/samples gaps are clamped at zero
        because a sync can postdate the crash (the snapshot is *newer*
        than anything the dead replica held — nothing of its own work is
        recovered, but the gap measured against its crash state would go
        negative).
        """
        self.rpo_lost_s += max(0.0, float(crash_time) - float(point_time))
        self.rpo_lost_samples += max(0, int(samples_at_crash) - int(point_samples))
        counter = f"recoveries_from_{kind}"
        setattr(self, counter, getattr(self, counter) + 1)

    def rpo_state(self) -> Dict[str, object]:
        """Recovery-point bookkeeping as a plain dict (checkpointed)."""
        return {
            "recovery_point_time_s": self.recovery_point_time_s,
            "recovery_point_samples": self.recovery_point_samples,
            "recovery_point_kind": self.recovery_point_kind,
            "rpo_lost_s": self.rpo_lost_s,
            "rpo_lost_samples": self.rpo_lost_samples,
            "recoveries_from_checkpoint": self.recoveries_from_checkpoint,
            "recoveries_from_sync": self.recoveries_from_sync,
            "recoveries_from_initial": self.recoveries_from_initial,
            "checkpoints_taken": self.checkpoints_taken,
        }

    def load_rpo_state(self, state: Dict[str, object]) -> None:
        """Restore :meth:`rpo_state` output (whole-run restore path)."""
        self.recovery_point_time_s = float(state["recovery_point_time_s"])
        self.recovery_point_samples = int(state["recovery_point_samples"])
        self.recovery_point_kind = str(state["recovery_point_kind"])
        self.rpo_lost_s = float(state["rpo_lost_s"])
        self.rpo_lost_samples = int(state["rpo_lost_samples"])
        self.recoveries_from_checkpoint = int(state["recoveries_from_checkpoint"])
        self.recoveries_from_sync = int(state["recoveries_from_sync"])
        self.recoveries_from_initial = int(state["recoveries_from_initial"])
        self.checkpoints_taken = int(state["checkpoints_taken"])

    # ------------------------------------------------------------------ #
    # Queue interface (delegates to the wrapped server)
    # ------------------------------------------------------------------ #
    def receive(self, message: ActivationMessage) -> bool:
        """Admit an arriving activation message into this shard's queue."""
        return self.server.receive(message)

    def admit(self, message: ActivationMessage) -> str:
        """Idempotent admission: ``"ok"``, ``"full"`` or ``"dup"``.

        Reliable delivery can land several copies of one logical message
        (retransmissions, chaos duplication); the wrapped server rules on
        each sequence number exactly once and deduplicates the rest.
        """
        return self.server.admit(message)

    def has_seen(self, sequence: int) -> bool:
        """Whether this shard's server already ruled on ``sequence``."""
        return self.server.has_seen(sequence)

    def has_pending(self) -> bool:
        return self.server.has_pending()

    @property
    def queue(self):
        return self.server.queue

    # ------------------------------------------------------------------ #
    # Training steps (track per-sync work for weighted averaging)
    # ------------------------------------------------------------------ #
    def process_next(self, now: Optional[float] = None
                     ) -> Tuple[ActivationMessage, GradientMessage]:
        """Pop and train on one message (per-message processing mode)."""
        activation_message, gradient_message = self.server.process_next(now=now)
        self.samples_since_sync += activation_message.batch_size
        self.steps_since_sync += 1
        return activation_message, gradient_message

    def process_pending_batch(self, now: Optional[float] = None
                              ) -> List[Tuple[ActivationMessage, GradientMessage]]:
        """Drain this shard's queue into one concatenated training step."""
        results = self.server.process_pending_batch(now=now)
        self.samples_since_sync += sum(
            activation_message.batch_size for activation_message, _ in results
        )
        if results:
            self.steps_since_sync += 1
        return results

    def flush_queue(self) -> List[ActivationMessage]:
        """Discard pending messages and release their arena rows (shutdown)."""
        return self.server.flush_queue()

    # ------------------------------------------------------------------ #
    # Weight exchange
    # ------------------------------------------------------------------ #
    def weights_snapshot(self) -> Dict[str, np.ndarray]:
        """Deep copy of the server segment's parameters (safe to ship)."""
        return {name: np.array(value, copy=True)
                for name, value in self.server.state_dict().items()}

    def install_weights(self, state: Dict[str, np.ndarray]) -> None:
        """Replace the server segment's parameters (post-sync)."""
        self.server.load_state_dict(state)
        self.syncs_applied += 1
        self.samples_since_sync = 0
        self.steps_since_sync = 0

    def merge_weights(self, state: Dict[str, np.ndarray], weight: float) -> None:
        """Blend remote parameters in: ``w_local = (1-a)*w_local + a*w_remote``.

        Used by the asynchronous staleness-weighted sync mode; unlike
        :meth:`install_weights` the local optimizer state and per-sync
        counters keep running (the merge is a nudge, not a barrier).
        """
        if not 0.0 <= weight <= 1.0:
            raise ValueError(f"merge weight must be in [0, 1], got {weight}")
        local = self.server.state_dict()
        merged = {
            name: (1.0 - weight) * np.asarray(local[name]) + weight * np.asarray(value)
            for name, value in state.items()
        }
        self.server.load_state_dict(merged)
        self.syncs_applied += 1

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    @property
    def batches_processed(self) -> int:
        return self.server.batches_processed

    @property
    def samples_processed(self) -> int:
        return self.server.samples_processed

    def stats(self) -> Dict[str, object]:
        """Flat per-shard statistics for history/metrics rollups."""
        queue = self.server.queue
        return {
            "shard_id": self.shard_id,
            "node": self.node_name,
            "clients": len(self.client_ids),
            "batches_processed": self.batches_processed,
            "samples_processed": self.samples_processed,
            "queue_dropped": queue.dropped,
            "mean_waiting_time_s": queue.mean_waiting_time,
            "fairness_index": queue.fairness_index(),
            "syncs_applied": self.syncs_applied,
            "healthy": self.healthy,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "downtime_s": self.downtime_s,
            "rpo_lost_s": self.rpo_lost_s,
            "rpo_lost_samples": self.rpo_lost_samples,
            "recoveries_from_checkpoint": self.recoveries_from_checkpoint,
            "recoveries_from_sync": self.recoveries_from_sync,
            "recoveries_from_initial": self.recoveries_from_initial,
            "checkpoints_taken": self.checkpoints_taken,
        }

    def __repr__(self) -> str:
        return (
            f"ServerShard(id={self.shard_id}, node={self.node_name!r}, "
            f"clients={len(self.client_ids)}, batches={self.batches_processed})"
        )
