"""Sharded multi-server split learning.

The paper's platform funnels every client through one central server;
this package breaks that bottleneck horizontally: several
:class:`~repro.cluster.shard.ServerShard` replicas each own one shard of
the clients (assigned by a pluggable
:class:`~repro.cluster.assigner.ShardAssigner`), and a
:class:`~repro.cluster.coordinator.ClusterCoordinator` keeps the replicas
consistent with periodic inter-server weight synchronization — a full
sample-weighted average every ``k`` rounds (barrier) or an asynchronous
staleness-weighted gossip merge.

Everything runs on the single discrete-event engine
(:class:`~repro.core.engine.TrainingEngine`): per-shard queues, arenas
and backpressure are preserved, and ``num_servers=1`` reduces exactly to
the single-server deployment.
"""

from .assigner import (
    LatencyAwareAssigner,
    LoadAwareAssigner,
    ShardAssigner,
    StaticHashAssigner,
    available_assigners,
    get_assigner,
)
from .coordinator import ClusterCoordinator
from .failover import (
    FailoverPolicy,
    FailureModel,
    RebalanceFailover,
    ScheduledFailures,
    ShardTransition,
    StandbyFailover,
    StochasticFailures,
    available_failover_policies,
    get_failover_policy,
)
from .shard import ServerShard

__all__ = [
    "ShardAssigner",
    "StaticHashAssigner",
    "LoadAwareAssigner",
    "LatencyAwareAssigner",
    "available_assigners",
    "get_assigner",
    "ClusterCoordinator",
    "ServerShard",
    "FailureModel",
    "ScheduledFailures",
    "StochasticFailures",
    "ShardTransition",
    "FailoverPolicy",
    "RebalanceFailover",
    "StandbyFailover",
    "available_failover_policies",
    "get_failover_policy",
]
