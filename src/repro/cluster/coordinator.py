"""Cluster coordinator: shard assignment and inter-server weight sync.

The coordinator is the control plane of a sharded deployment: it owns the
:class:`~repro.cluster.shard.ServerShard` replicas, the client-to-shard
assignment produced by a :class:`~repro.cluster.assigner.ShardAssigner`,
and the weight-synchronization math that keeps the replicas consistent.
The *data plane* — uplink arrivals, per-shard queue drains, gradient
landings and the sync events themselves — runs on the discrete-event
engine (:class:`~repro.core.engine.TrainingEngine`), which calls back
into the coordinator when a sync fires.

Two synchronization modes are supported (``TrainingConfig.server_sync_mode``):

* ``"average"`` — every ``server_sync_every`` rounds, a **barrier event**:
  all shards exchange weights over the inter-server links and install the
  sample-weighted average (each shard weighted by the samples it trained
  on since the previous sync, exactly like FedAvg's aggregation).  The
  next round starts only after the slowest inter-server transfer lands.
* ``"staleness"`` — asynchronous gossip: every ``server_sync_every`` of a
  shard's own server steps it broadcasts its weights; each recipient
  merges them on arrival with a coefficient that *decays with the
  snapshot's staleness* (transit-delayed weights move the recipient
  less), and nobody ever blocks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..core.messages import ActivationMessage
from ..core.scheduling import jain_fairness_index
from .shard import ServerShard

__all__ = ["ClusterCoordinator"]

#: Base mixing coefficient of the staleness-weighted merge: a perfectly
#: fresh remote snapshot moves the recipient halfway (a plain pairwise
#: average); staleness decays it towards zero.
STALENESS_MERGE_ALPHA = 0.5

#: Staleness (seconds) at which the merge coefficient has halved.
STALENESS_HALF_LIFE_S = 1.0


class ClusterCoordinator:
    """Owns the shard replicas and the weight-synchronization math.

    Parameters
    ----------
    shards:
        The server replicas, indexed by shard id.
    assignment:
        ``system_id -> shard_index`` for every end-system.
    sync_every:
        Synchronization cadence — rounds (``"average"`` mode) or
        per-shard server steps (``"staleness"`` mode).
    sync_mode:
        ``"average"`` or ``"staleness"`` (see module docstring).
    """

    def __init__(
        self,
        shards: Sequence[ServerShard],
        assignment: Dict[int, int],
        sync_every: int = 1,
        sync_mode: str = "average",
    ) -> None:
        if not shards:
            raise ValueError("need at least one shard")
        if sync_every <= 0:
            raise ValueError("sync_every must be positive")
        if sync_mode not in {"average", "staleness"}:
            raise ValueError(
                f"sync_mode must be 'average' or 'staleness', got {sync_mode!r}"
            )
        self.shards: List[ServerShard] = list(shards)
        self.sync_every = int(sync_every)
        self.sync_mode = sync_mode
        self.assignment: Dict[int, int] = {}
        for system_id, shard_index in assignment.items():
            if not 0 <= shard_index < len(self.shards):
                raise ValueError(
                    f"end-system {system_id} assigned to shard {shard_index}, "
                    f"but the cluster has {len(self.shards)} shards"
                )
            self.assignment[int(system_id)] = int(shard_index)
        for shard in self.shards:
            shard.client_ids = []
        for system_id, shard_index in sorted(self.assignment.items()):
            self.shards[shard_index].client_ids.append(system_id)
        #: The home assignment: failover moves clients away from a crashed
        #: shard, failback restores them from this record on recovery.
        self.original_assignment: Dict[int, int] = dict(self.assignment)
        #: Full-averaging barriers completed (gossip merges are tallied
        #: per shard in :attr:`ServerShard.syncs_applied`; the engine's
        #: ``EngineStats.weight_syncs`` is the mode-independent count).
        self.syncs_completed = 0
        #: The most recent synchronized weights — the recovery point a
        #: shard reinstalls when it comes back from a crash.  Updated by
        #: every :meth:`sync_average` install; ``None`` until a sync fires.
        self.last_sync_snapshot: Optional[Dict[str, np.ndarray]] = None
        #: Simulated time :attr:`last_sync_snapshot` was installed (set by
        #: the engine, which owns the clock); ``None`` until a sync fires.
        #: Recovery compares it against checkpoint timestamps to pick the
        #: newest restore point.
        self.last_sync_time_s: Optional[float] = None
        #: Deterministic time-zero weights: every shard is built from the
        #: same server seed, so one copy captures them all.  This is the
        #: recovery point of last resort — a shard that crashes before
        #: any sync or checkpoint exists restarts from here instead of
        #: resuming from whatever diverged state the dead replica held.
        self.initial_snapshot: Dict[str, np.ndarray] = (
            self.shards[0].weights_snapshot()
        )

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_of(self, system_id: int) -> ServerShard:
        """The shard serving one end-system."""
        try:
            return self.shards[self.assignment[system_id]]
        except KeyError:
            raise KeyError(f"end-system {system_id} is not assigned to any shard") from None

    def clients_per_shard(self) -> List[int]:
        """Client counts per shard (assignment balance diagnostic)."""
        return [len(shard.client_ids) for shard in self.shards]

    def healthy_shards(self) -> List[ServerShard]:
        """The shards currently accepting traffic, in shard order."""
        return [shard for shard in self.shards if shard.healthy]

    def original_clients(self, shard_index: int) -> List[int]:
        """System ids whose *home* shard is ``shard_index`` (failback set)."""
        return sorted(
            system_id for system_id, home in self.original_assignment.items()
            if home == shard_index
        )

    def reassign(self, system_id: int, shard_index: int) -> bool:
        """Move one end-system to another shard (failover / failback).

        Returns ``True`` when the assignment actually changed.  The
        engine owns the rest of the move — rerouting the topology edge
        and migrating its per-shard runtime state.
        """
        system_id = int(system_id)
        if not 0 <= shard_index < len(self.shards):
            raise ValueError(
                f"cannot reassign end-system {system_id} to shard {shard_index}: "
                f"the cluster has {len(self.shards)} shards"
            )
        current = self.assignment.get(system_id)
        if current is None:
            raise KeyError(f"end-system {system_id} is not assigned to any shard")
        if current == shard_index:
            return False
        self.assignment[system_id] = int(shard_index)
        self.shards[current].client_ids.remove(system_id)
        target = self.shards[shard_index].client_ids
        target.append(system_id)
        target.sort()
        return True

    # ------------------------------------------------------------------ #
    # Weight synchronization
    # ------------------------------------------------------------------ #
    @staticmethod
    def _weighted_average(snapshots: Sequence[Dict[str, np.ndarray]],
                          raw_weights: Sequence[float]) -> Dict[str, np.ndarray]:
        weights = np.asarray(raw_weights, dtype=np.float64)
        if weights.sum() <= 0:
            weights = np.ones(len(snapshots), dtype=np.float64)
        weights = weights / weights.sum()
        averaged: Dict[str, np.ndarray] = {}
        for name in snapshots[0]:
            accumulator = weights[0] * np.asarray(snapshots[0][name], dtype=np.float64)
            for factor, snapshot in zip(weights[1:], snapshots[1:]):
                accumulator = accumulator + factor * np.asarray(snapshot[name],
                                                                dtype=np.float64)
            averaged[name] = accumulator.astype(snapshots[0][name].dtype, copy=False)
        return averaged

    def sync_average(
        self,
        delivered: Optional[Dict[int, Iterable[int]]] = None,
        snapshots: Optional[Sequence[Dict[str, np.ndarray]]] = None,
        participants: Optional[Sequence[int]] = None,
    ) -> Optional[Dict[str, np.ndarray]]:
        """Barrier sync: install the sample-weighted average on every shard.

        Each shard is weighted by the samples it trained on since the
        previous sync; if no shard trained at all (a degenerate round),
        the average is uniform.  Per-sync counters reset, so consecutive
        syncs weight only fresh work.

        ``snapshots`` (one per shard, in shard order) are the weight
        copies that actually travelled the inter-server links — the
        engine passes the payloads it shipped, so the average is taken
        over the weights *as broadcast* (and nothing is deep-copied a
        second time).  When omitted, fresh snapshots are taken.

        ``delivered`` models lossy inter-server links: it maps each
        destination shard id to the *source* shard ids whose snapshots
        actually arrived (a shard always holds its own).  Every
        destination then averages only what it received — dropped
        snapshots genuinely do not contribute, so replicas can diverge
        under loss exactly as a real deployment's would.  With
        ``delivered=None`` (lossless) every shard installs the same
        global average, which is returned (the float64 reference tests
        compare against it); the partial path returns ``None``.

        **Unhealthy shards are skipped entirely** — a crashed replica
        neither contributes a snapshot nor receives the install, so the
        rendezvous never hangs on (or is polluted by) a dead hub.  Every
        install also refreshes :attr:`last_sync_snapshot`, the recovery
        point a shard reinstalls when it comes back.

        ``participants`` (shard ids) restricts the rendezvous further —
        the quorum-degraded sync path passes only the shards that made
        the barrier before the timeout, and stragglers neither
        contribute nor install.  ``None`` means every healthy shard.
        """
        if participants is None:
            participant_shards = self.healthy_shards()
        else:
            allowed = set(int(shard_id) for shard_id in participants)
            participant_shards = [
                shard for shard in self.healthy_shards()
                if shard.shard_id in allowed
            ]
        if not participant_shards:
            return None
        snapshot_of: Dict[int, Dict[str, np.ndarray]]
        if snapshots is None:
            snapshot_of = {}
        elif isinstance(snapshots, dict):
            snapshot_of = dict(snapshots)
        else:
            if len(snapshots) != len(self.shards):
                raise ValueError(
                    f"expected {len(self.shards)} snapshots, got {len(snapshots)}"
                )
            snapshot_of = {
                shard.shard_id: snapshot
                for shard, snapshot in zip(self.shards, snapshots)
            }
        for shard in participant_shards:
            if shard.shard_id not in snapshot_of:
                snapshot_of[shard.shard_id] = shard.weights_snapshot()
        raw_weights = {
            shard.shard_id: float(shard.samples_since_sync) for shard in participant_shards
        }
        participant_ids = {shard.shard_id for shard in participant_shards}
        if delivered is None:
            averaged = self._weighted_average(
                [snapshot_of[shard.shard_id] for shard in participant_shards],
                [raw_weights[shard.shard_id] for shard in participant_shards],
            )
            for shard in participant_shards:
                shard.install_weights(averaged)
            self.syncs_completed += 1
            self.last_sync_snapshot = averaged
            return averaged
        best_recovery_point: Optional[Dict[str, np.ndarray]] = None
        best_weight = -1.0
        for shard in participant_shards:
            sources = sorted(
                (set(delivered.get(shard.shard_id, [])) & participant_ids)
                | {shard.shard_id}
            )
            partial = self._weighted_average(
                [snapshot_of[source] for source in sources],
                [raw_weights[source] for source in sources],
            )
            shard.install_weights(partial)
            # Under partial delivery the replicas legitimately diverge;
            # record the best-trained replica's view as the recovery point.
            if raw_weights[shard.shard_id] > best_weight:
                best_weight = raw_weights[shard.shard_id]
                best_recovery_point = partial
        self.syncs_completed += 1
        self.last_sync_snapshot = best_recovery_point
        return None

    @staticmethod
    def staleness_merge_weight(staleness_s: float) -> float:
        """Mixing coefficient of a remote snapshot aged ``staleness_s``.

        ``alpha / (1 + staleness / half_life)``: a fresh snapshot is a
        pairwise average (0.5), one delayed by the half-life moves the
        recipient half as far, and ancient snapshots barely register —
        the gossip analogue of staleness-damped asynchronous SGD.
        """
        staleness_s = max(0.0, float(staleness_s))
        return STALENESS_MERGE_ALPHA / (1.0 + staleness_s / STALENESS_HALF_LIFE_S)

    def merge_staleness(self, shard: ServerShard, state: Dict[str, np.ndarray],
                        staleness_s: float) -> float:
        """Apply one staleness-weighted merge; returns the coefficient used.

        Per-destination merges are tallied on the receiving shard
        (:attr:`ServerShard.syncs_applied`), not on
        :attr:`syncs_completed` — one gossip broadcast fans out into up
        to S-1 merges, so counting them here would not be comparable to
        the barrier count (`EngineStats.weight_syncs` is the
        mode-independent event count).

        A snapshot landing at a shard that crashed while it was in
        transit is discarded (returns 0.0) — dead replicas do not merge.
        """
        if not shard.healthy:
            return 0.0
        weight = self.staleness_merge_weight(staleness_s)
        shard.merge_weights(state, weight)
        return weight

    # ------------------------------------------------------------------ #
    # Shutdown / statistics rollup
    # ------------------------------------------------------------------ #
    def flush_all(self) -> List[ActivationMessage]:
        """Flush every shard's queue (budget stops); arena rows released."""
        flushed: List[ActivationMessage] = []
        for shard in self.shards:
            flushed.extend(shard.flush_queue())
        return flushed

    def has_pending(self) -> bool:
        return any(shard.has_pending() for shard in self.shards)

    @property
    def batches_processed(self) -> int:
        return sum(shard.batches_processed for shard in self.shards)

    @property
    def samples_processed(self) -> int:
        return sum(shard.samples_processed for shard in self.shards)

    @property
    def queue_dropped(self) -> int:
        return sum(shard.queue.dropped for shard in self.shards)

    def processed_per_system(self) -> Dict[int, int]:
        """Per-system processed sample counts merged across shards."""
        merged: Dict[int, int] = {}
        for shard in self.shards:
            for system_id, count in shard.queue.processed_per_system().items():
                merged[system_id] = merged.get(system_id, 0) + count
        return merged

    def fairness_index(self) -> float:
        """Jain's index over the cluster-wide per-system sample counts."""
        return jain_fairness_index(self.processed_per_system().values())

    def mean_waiting_time(self) -> float:
        """Mean queue wait over every message processed by any shard."""
        total = 0.0
        count = 0
        for shard in self.shards:
            shard_count = shard.queue.waiting_times_recorded
            total += shard.queue.mean_waiting_time * shard_count
            count += shard_count
        return total / count if count else 0.0

    def shard_stats(self) -> List[Dict[str, object]]:
        """Per-shard statistic rows (for histories and experiment tables)."""
        return [shard.stats() for shard in self.shards]

    def __repr__(self) -> str:
        return (
            f"ClusterCoordinator(shards={self.num_shards}, "
            f"sync_mode={self.sync_mode!r}, sync_every={self.sync_every}, "
            f"syncs_completed={self.syncs_completed})"
        )
