"""Cluster coordinator: shard assignment and inter-server weight sync.

The coordinator is the control plane of a sharded deployment: it owns the
:class:`~repro.cluster.shard.ServerShard` replicas, the client-to-shard
assignment produced by a :class:`~repro.cluster.assigner.ShardAssigner`,
and the weight-synchronization math that keeps the replicas consistent.
The *data plane* — uplink arrivals, per-shard queue drains, gradient
landings and the sync events themselves — runs on the discrete-event
engine (:class:`~repro.core.engine.TrainingEngine`), which calls back
into the coordinator when a sync fires.

Two synchronization modes are supported (``TrainingConfig.server_sync_mode``):

* ``"average"`` — every ``server_sync_every`` rounds, a **barrier event**:
  all shards exchange weights over the inter-server links and install the
  sample-weighted average (each shard weighted by the samples it trained
  on since the previous sync, exactly like FedAvg's aggregation).  The
  next round starts only after the slowest inter-server transfer lands.
* ``"staleness"`` — asynchronous gossip: every ``server_sync_every`` of a
  shard's own server steps it broadcasts its weights; each recipient
  merges them on arrival with a coefficient that *decays with the
  snapshot's staleness* (transit-delayed weights move the recipient
  less), and nobody ever blocks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..core.messages import ActivationMessage
from ..core.scheduling import jain_fairness_index
from .shard import ServerShard

__all__ = ["ClusterCoordinator"]

#: Base mixing coefficient of the staleness-weighted merge: a perfectly
#: fresh remote snapshot moves the recipient halfway (a plain pairwise
#: average); staleness decays it towards zero.
STALENESS_MERGE_ALPHA = 0.5

#: Staleness (seconds) at which the merge coefficient has halved.
STALENESS_HALF_LIFE_S = 1.0


class ClusterCoordinator:
    """Owns the shard replicas and the weight-synchronization math.

    Parameters
    ----------
    shards:
        The server replicas, indexed by shard id.
    assignment:
        ``system_id -> shard_index`` for every end-system.
    sync_every:
        Synchronization cadence — rounds (``"average"`` mode) or
        per-shard server steps (``"staleness"`` mode).
    sync_mode:
        ``"average"`` or ``"staleness"`` (see module docstring).
    """

    def __init__(
        self,
        shards: Sequence[ServerShard],
        assignment: Dict[int, int],
        sync_every: int = 1,
        sync_mode: str = "average",
    ) -> None:
        if not shards:
            raise ValueError("need at least one shard")
        if sync_every <= 0:
            raise ValueError("sync_every must be positive")
        if sync_mode not in {"average", "staleness"}:
            raise ValueError(
                f"sync_mode must be 'average' or 'staleness', got {sync_mode!r}"
            )
        self.shards: List[ServerShard] = list(shards)
        self.sync_every = int(sync_every)
        self.sync_mode = sync_mode
        self.assignment: Dict[int, int] = {}
        for system_id, shard_index in assignment.items():
            if not 0 <= shard_index < len(self.shards):
                raise ValueError(
                    f"end-system {system_id} assigned to shard {shard_index}, "
                    f"but the cluster has {len(self.shards)} shards"
                )
            self.assignment[int(system_id)] = int(shard_index)
        for shard in self.shards:
            shard.client_ids = []
        for system_id, shard_index in sorted(self.assignment.items()):
            self.shards[shard_index].client_ids.append(system_id)
        #: Full-averaging barriers completed (gossip merges are tallied
        #: per shard in :attr:`ServerShard.syncs_applied`; the engine's
        #: ``EngineStats.weight_syncs`` is the mode-independent count).
        self.syncs_completed = 0

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_of(self, system_id: int) -> ServerShard:
        """The shard serving one end-system."""
        try:
            return self.shards[self.assignment[system_id]]
        except KeyError:
            raise KeyError(f"end-system {system_id} is not assigned to any shard") from None

    def clients_per_shard(self) -> List[int]:
        """Client counts per shard (assignment balance diagnostic)."""
        return [len(shard.client_ids) for shard in self.shards]

    # ------------------------------------------------------------------ #
    # Weight synchronization
    # ------------------------------------------------------------------ #
    @staticmethod
    def _weighted_average(snapshots: Sequence[Dict[str, np.ndarray]],
                          raw_weights: Sequence[float]) -> Dict[str, np.ndarray]:
        weights = np.asarray(raw_weights, dtype=np.float64)
        if weights.sum() <= 0:
            weights = np.ones(len(snapshots), dtype=np.float64)
        weights = weights / weights.sum()
        averaged: Dict[str, np.ndarray] = {}
        for name in snapshots[0]:
            accumulator = weights[0] * np.asarray(snapshots[0][name], dtype=np.float64)
            for factor, snapshot in zip(weights[1:], snapshots[1:]):
                accumulator = accumulator + factor * np.asarray(snapshot[name],
                                                                dtype=np.float64)
            averaged[name] = accumulator.astype(snapshots[0][name].dtype, copy=False)
        return averaged

    def sync_average(
        self,
        delivered: Optional[Dict[int, Iterable[int]]] = None,
        snapshots: Optional[Sequence[Dict[str, np.ndarray]]] = None,
    ) -> Optional[Dict[str, np.ndarray]]:
        """Barrier sync: install the sample-weighted average on every shard.

        Each shard is weighted by the samples it trained on since the
        previous sync; if no shard trained at all (a degenerate round),
        the average is uniform.  Per-sync counters reset, so consecutive
        syncs weight only fresh work.

        ``snapshots`` (one per shard, in shard order) are the weight
        copies that actually travelled the inter-server links — the
        engine passes the payloads it shipped, so the average is taken
        over the weights *as broadcast* (and nothing is deep-copied a
        second time).  When omitted, fresh snapshots are taken.

        ``delivered`` models lossy inter-server links: it maps each
        destination shard id to the *source* shard ids whose snapshots
        actually arrived (a shard always holds its own).  Every
        destination then averages only what it received — dropped
        snapshots genuinely do not contribute, so replicas can diverge
        under loss exactly as a real deployment's would.  With
        ``delivered=None`` (lossless) every shard installs the same
        global average, which is returned (the float64 reference tests
        compare against it); the partial path returns ``None``.
        """
        if snapshots is None:
            snapshots = [shard.weights_snapshot() for shard in self.shards]
        elif len(snapshots) != len(self.shards):
            raise ValueError(
                f"expected {len(self.shards)} snapshots, got {len(snapshots)}"
            )
        raw_weights = [float(shard.samples_since_sync) for shard in self.shards]
        if delivered is None:
            averaged = self._weighted_average(snapshots, raw_weights)
            for shard in self.shards:
                shard.install_weights(averaged)
            self.syncs_completed += 1
            return averaged
        for shard in self.shards:
            sources = sorted(set(delivered.get(shard.shard_id, [])) | {shard.shard_id})
            partial = self._weighted_average(
                [snapshots[source] for source in sources],
                [raw_weights[source] for source in sources],
            )
            shard.install_weights(partial)
        self.syncs_completed += 1
        return None

    @staticmethod
    def staleness_merge_weight(staleness_s: float) -> float:
        """Mixing coefficient of a remote snapshot aged ``staleness_s``.

        ``alpha / (1 + staleness / half_life)``: a fresh snapshot is a
        pairwise average (0.5), one delayed by the half-life moves the
        recipient half as far, and ancient snapshots barely register —
        the gossip analogue of staleness-damped asynchronous SGD.
        """
        staleness_s = max(0.0, float(staleness_s))
        return STALENESS_MERGE_ALPHA / (1.0 + staleness_s / STALENESS_HALF_LIFE_S)

    def merge_staleness(self, shard: ServerShard, state: Dict[str, np.ndarray],
                        staleness_s: float) -> float:
        """Apply one staleness-weighted merge; returns the coefficient used.

        Per-destination merges are tallied on the receiving shard
        (:attr:`ServerShard.syncs_applied`), not on
        :attr:`syncs_completed` — one gossip broadcast fans out into up
        to S-1 merges, so counting them here would not be comparable to
        the barrier count (`EngineStats.weight_syncs` is the
        mode-independent event count).
        """
        weight = self.staleness_merge_weight(staleness_s)
        shard.merge_weights(state, weight)
        return weight

    # ------------------------------------------------------------------ #
    # Shutdown / statistics rollup
    # ------------------------------------------------------------------ #
    def flush_all(self) -> List[ActivationMessage]:
        """Flush every shard's queue (budget stops); arena rows released."""
        flushed: List[ActivationMessage] = []
        for shard in self.shards:
            flushed.extend(shard.flush_queue())
        return flushed

    def has_pending(self) -> bool:
        return any(shard.has_pending() for shard in self.shards)

    @property
    def batches_processed(self) -> int:
        return sum(shard.batches_processed for shard in self.shards)

    @property
    def samples_processed(self) -> int:
        return sum(shard.samples_processed for shard in self.shards)

    @property
    def queue_dropped(self) -> int:
        return sum(shard.queue.dropped for shard in self.shards)

    def processed_per_system(self) -> Dict[int, int]:
        """Per-system processed sample counts merged across shards."""
        merged: Dict[int, int] = {}
        for shard in self.shards:
            for system_id, count in shard.queue.processed_per_system().items():
                merged[system_id] = merged.get(system_id, 0) + count
        return merged

    def fairness_index(self) -> float:
        """Jain's index over the cluster-wide per-system sample counts."""
        return jain_fairness_index(self.processed_per_system().values())

    def mean_waiting_time(self) -> float:
        """Mean queue wait over every message processed by any shard."""
        total = 0.0
        count = 0
        for shard in self.shards:
            shard_count = shard.queue.waiting_times_recorded
            total += shard.queue.mean_waiting_time * shard_count
            count += shard_count
        return total / count if count else 0.0

    def shard_stats(self) -> List[Dict[str, object]]:
        """Per-shard statistic rows (for histories and experiment tables)."""
        return [shard.stats() for shard in self.shards]

    def __repr__(self) -> str:
        return (
            f"ClusterCoordinator(shards={self.num_shards}, "
            f"sync_mode={self.sync_mode!r}, sync_every={self.sync_every}, "
            f"syncs_completed={self.syncs_completed})"
        )
