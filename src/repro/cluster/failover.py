"""Failure injection and shard failover for the sharded cluster.

The PR 4 cluster assumed every :class:`~repro.cluster.shard.ServerShard`
lives forever; one crashed hub would strand its whole client band.  This
module supplies the two missing pieces of a dependable deployment:

* a :class:`FailureModel` that produces per-shard **crash / recovery
  transitions** in absolute simulated time — either scripted
  (:class:`ScheduledFailures`, the reproducible regime the failover tests
  pin) or stochastic (:class:`StochasticFailures`, exponential MTBF/MTTR
  churn with a per-shard seeded stream, the regime the
  ``server_failover`` experiment sweeps);
* a :class:`FailoverPolicy` that decides what happens to a dead shard's
  clients: :class:`RebalanceFailover` reassigns them across the healthy
  survivors (reusing the pluggable
  :class:`~repro.cluster.assigner.ShardAssigner` strategies for the
  rebalancing decision, and failing them back on recovery), while
  :class:`StandbyFailover` parks them until their home shard returns.

The :class:`~repro.core.engine.TrainingEngine` owns the *mechanics*:
transitions are injected as simulator events, a crash sheds the shard's
queue/arena contents through ``EndSystem.notify_drop`` (so the leak-free
accounting invariants survive), the topology marks the hub's links down
and reroutes reassigned uplinks, and a recovering shard reinstalls the
coordinator's last synchronization snapshot before catching up through
the regular sync path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Union

import numpy as np

from .assigner import ShardAssigner, get_assigner

__all__ = [
    "ShardTransition",
    "FailureModel",
    "ScheduledFailures",
    "StochasticFailures",
    "FailoverPolicy",
    "RebalanceFailover",
    "StandbyFailover",
    "available_failover_policies",
    "get_failover_policy",
]


@dataclass(frozen=True)
class ShardTransition:
    """One health transition of one shard, in absolute simulated time."""

    time: float
    shard_id: int
    kind: str  # "crash" or "recover"

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"transition time must be non-negative, got {self.time}")
        if self.kind not in {"crash", "recover"}:
            raise ValueError(f"kind must be 'crash' or 'recover', got {self.kind!r}")


class FailureModel:
    """Produces each shard's deterministic crash/recovery timeline.

    The engine consumes the timeline with a peek/advance protocol:
    :meth:`peek` returns the shard's next pending transition (``None``
    when its timeline is exhausted) and :meth:`advance` consumes it once
    it has actually been applied.  A transition that fires after the
    training run has completed is *not* consumed, so the next epoch (a
    fresh simulator sharing the same absolute clock) re-schedules it —
    timelines span epochs, not simulator instances.
    """

    name = "base"

    def peek(self, shard_id: int) -> Optional[ShardTransition]:
        raise NotImplementedError

    def advance(self, shard_id: int) -> None:
        raise NotImplementedError

    # A run checkpoint (repro.state) captures the failure model's live
    # position so a coordinator restart replays the *same* timeline from
    # where the crashed run left off — identical draws, identical churn.
    def state_dict(self) -> Dict[str, object]:
        """JSON-able snapshot of the model's consumed-timeline position."""
        raise NotImplementedError

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        raise NotImplementedError


class ScheduledFailures(FailureModel):
    """Scripted crashes: ``[(time_s, shard_id[, downtime_s]), ...]``.

    Each entry crashes ``shard_id`` at ``time_s``; with a ``downtime_s``
    the shard recovers that many simulated seconds later, without one it
    stays down for the rest of the run.  Scripted timelines contain no
    randomness, so a schedule whose first crash lies beyond the training
    horizon is *provably inert* — the failover tests pin that.
    """

    name = "scheduled"

    def __init__(self, crashes: Sequence[Union[Sequence[float], "ShardTransition"]]) -> None:
        timelines: Dict[int, List[ShardTransition]] = {}
        for entry in crashes:
            if isinstance(entry, ShardTransition):
                timelines.setdefault(entry.shard_id, []).append(entry)
                continue
            if len(entry) not in {2, 3}:
                raise ValueError(
                    "each scheduled failure must be (time_s, shard_id) or "
                    f"(time_s, shard_id, downtime_s), got {entry!r}"
                )
            time_s, shard_id = float(entry[0]), int(entry[1])
            timeline = timelines.setdefault(shard_id, [])
            timeline.append(ShardTransition(time_s, shard_id, "crash"))
            if len(entry) == 3 and entry[2] is not None:
                downtime_s = float(entry[2])
                if downtime_s <= 0:
                    raise ValueError(f"downtime_s must be positive, got {downtime_s}")
                timeline.append(ShardTransition(time_s + downtime_s, shard_id, "recover"))
        self._timelines: Dict[int, Deque[ShardTransition]] = {}
        for shard_id, timeline in timelines.items():
            # At equal timestamps a recovery sorts before a crash, so a
            # back-to-back schedule (outage ending exactly when the next
            # begins) validates the same regardless of entry order.
            ordered = sorted(timeline,
                             key=lambda t: (t.time, t.kind != "recover"))
            # A shard's timeline must alternate crash/recover: overlapping
            # outages (a crash scripted while the shard is already down)
            # would silently end the longer outage at the *shorter*
            # entry's recovery, so reject them outright.
            expected = "crash"
            for transition in ordered:
                if transition.kind != expected:
                    raise ValueError(
                        f"shard {shard_id} has overlapping scripted outages: "
                        f"unexpected {transition.kind!r} at t={transition.time} "
                        "(each crash must end before the next one starts, and "
                        "an open-ended crash must be the shard's last entry)"
                    )
                expected = "recover" if expected == "crash" else "crash"
            self._timelines[shard_id] = deque(ordered)

    def peek(self, shard_id: int) -> Optional[ShardTransition]:
        timeline = self._timelines.get(shard_id)
        return timeline[0] if timeline else None

    def advance(self, shard_id: int) -> None:
        timeline = self._timelines.get(shard_id)
        if not timeline:
            raise LookupError(f"shard {shard_id} has no pending transition")
        timeline.popleft()

    def state_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "timelines": {
                str(shard_id): [[t.time, t.kind] for t in timeline]
                for shard_id, timeline in self._timelines.items()
            },
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self._timelines = {
            int(shard_id): deque(
                ShardTransition(float(time_s), int(shard_id), str(kind))
                for time_s, kind in timeline
            )
            for shard_id, timeline in state["timelines"].items()
        }


class StochasticFailures(FailureModel):
    """Exponential MTBF/MTTR churn with one seeded stream per shard.

    Every shard alternates up/down phases whose lengths are exponential
    draws (mean ``mtbf_s`` while up, ``mttr_s`` while down).  The draws
    come from a per-shard generator derived from the seed, so a run's
    failure timeline is reproducible and independent of how many times
    the engine peeks at it.
    """

    name = "stochastic"

    def __init__(self, mtbf_s: float, mttr_s: float = 1.0, seed: int = 0) -> None:
        if mtbf_s <= 0:
            raise ValueError(f"mtbf_s must be positive, got {mtbf_s}")
        if mttr_s <= 0:
            raise ValueError(f"mttr_s must be positive, got {mttr_s}")
        self.mtbf_s = float(mtbf_s)
        self.mttr_s = float(mttr_s)
        self.seed = int(seed)
        self._rngs: Dict[int, np.random.Generator] = {}
        self._next: Dict[int, ShardTransition] = {}

    def _rng(self, shard_id: int) -> np.random.Generator:
        rng = self._rngs.get(shard_id)
        if rng is None:
            rng = np.random.default_rng(self.seed + 7919 * (shard_id + 1))
            self._rngs[shard_id] = rng
        return rng

    def peek(self, shard_id: int) -> Optional[ShardTransition]:
        transition = self._next.get(shard_id)
        if transition is None:
            first = self._rng(shard_id).exponential(self.mtbf_s)
            transition = ShardTransition(first, shard_id, "crash")
            self._next[shard_id] = transition
        return transition

    def advance(self, shard_id: int) -> None:
        current = self.peek(shard_id)
        assert current is not None
        if current.kind == "crash":
            delay = self._rng(shard_id).exponential(self.mttr_s)
            kind = "recover"
        else:
            delay = self._rng(shard_id).exponential(self.mtbf_s)
            kind = "crash"
        self._next[shard_id] = ShardTransition(current.time + delay, shard_id, kind)

    def state_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "rngs": {str(shard_id): rng.bit_generator.state
                     for shard_id, rng in self._rngs.items()},
            "next": {str(shard_id): [t.time, t.kind]
                     for shard_id, t in self._next.items()},
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self._rngs = {}
        for shard_id, rng_state in state["rngs"].items():
            # The seed is irrelevant here: the restored bit-generator
            # state on the next line is the checkpointed stream position.
            rng = np.random.default_rng()  # repro-lint: ignore[RL002] -- state restored below
            rng.bit_generator.state = rng_state
            self._rngs[int(shard_id)] = rng
        self._next = {
            int(shard_id): ShardTransition(float(time_s), int(shard_id), str(kind))
            for shard_id, (time_s, kind) in state["next"].items()
        }


class FailoverPolicy:
    """Decides where a dead shard's clients go (and whether they return).

    ``failback`` controls recovery: when ``True`` the policy's moves are
    undone once the crashed shard returns — its original clients migrate
    home and catch up through the regular sync path.
    """

    name = "base"
    failback = True

    def reassign(
        self,
        clients: Sequence[int],
        survivors: Sequence[int],
        latencies_s: Optional[Sequence[float]] = None,
        loads: Optional[Sequence[int]] = None,
    ) -> Dict[int, int]:
        """Map each orphaned client id to a surviving shard id.

        An empty mapping strands the clients (they wait for recovery);
        ``latencies_s``/``loads`` are per-client context aligned with
        ``clients``, forwarded to assignment strategies that want them.
        """
        raise NotImplementedError


class RebalanceFailover(FailoverPolicy):
    """Spread the orphans across the survivors via a pluggable assigner.

    The heavy lifting is the same :class:`ShardAssigner` machinery the
    initial placement uses: the orphaned clients are assigned onto the
    *survivor* set (``load_aware`` by default, so a crash does not dogpile
    one survivor), then mapped back to real shard ids.
    """

    name = "rebalance"
    failback = True

    def __init__(self, assigner: Union[str, ShardAssigner] = "load_aware") -> None:
        self.assigner = get_assigner(assigner) if isinstance(assigner, str) else assigner

    def reassign(self, clients, survivors, latencies_s=None, loads=None) -> Dict[int, int]:
        if not clients or not survivors:
            return {}
        placement = self.assigner.assign(
            len(clients), len(survivors), latencies_s=latencies_s, loads=loads
        )
        return {
            client: int(survivors[slot]) for client, slot in zip(clients, placement)
        }


class StandbyFailover(FailoverPolicy):
    """No reassignment: clients park until their home shard recovers.

    The degraded-service baseline every smarter policy must beat — the
    dead shard's band makes no progress during the outage, but nothing
    leaks and nobody else's latency band is disturbed.
    """

    name = "standby"
    failback = False

    def reassign(self, clients, survivors, latencies_s=None, loads=None) -> Dict[int, int]:
        return {}


_POLICIES = {
    RebalanceFailover.name: RebalanceFailover,
    StandbyFailover.name: StandbyFailover,
}


def available_failover_policies() -> List[str]:
    """Names of the registered failover policies."""
    return sorted(_POLICIES)


def get_failover_policy(name: str, assigner: Optional[str] = None) -> FailoverPolicy:
    """Instantiate a failover policy by registry name.

    ``assigner`` names the :class:`ShardAssigner` a rebalancing policy
    should reuse (ignored by policies that never reassign).
    """
    try:
        policy_cls = _POLICIES[name.lower()]
    except KeyError:
        known = ", ".join(available_failover_policies())
        raise KeyError(
            f"unknown failover policy {name!r}; known policies: {known}"
        ) from None
    if policy_cls is RebalanceFailover and assigner is not None:
        return RebalanceFailover(assigner=assigner)
    return policy_cls()
