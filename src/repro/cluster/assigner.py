"""Client-to-shard assignment strategies.

A sharded deployment places every end-system on exactly one
:class:`~repro.cluster.shard.ServerShard`; the :class:`ShardAssigner`
decides which one.  Three strategies cover the regimes the scaling
experiment sweeps:

* :class:`StaticHashAssigner` — ``client i -> i mod num_shards``.  Cheap,
  stateless, and uniform in *count*; blind to both data volume and
  geography (the baseline any smarter strategy must beat).
* :class:`LoadAwareAssigner` — greedy balanced-partition on each client's
  local sample count, so every shard trains on roughly the same number of
  samples per round even under skewed partitions.
* :class:`LatencyAwareAssigner` — sorts clients by their uplink latency
  and hands each shard one contiguous latency band.  Geographically
  clustered clients land on the same shard, which keeps each shard's
  round barrier tight: a shard of nearby clients never waits for the
  far-away stragglers another shard owns.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = [
    "ShardAssigner",
    "StaticHashAssigner",
    "LoadAwareAssigner",
    "LatencyAwareAssigner",
    "get_assigner",
    "available_assigners",
]


class ShardAssigner:
    """Maps ``num_clients`` end-systems onto ``num_shards`` server shards."""

    #: Registry name (set on subclasses).
    name = "base"

    def assign(
        self,
        num_clients: int,
        num_shards: int,
        latencies_s: Optional[Sequence[float]] = None,
        loads: Optional[Sequence[int]] = None,
    ) -> List[int]:
        """Return one shard index (``0 <= s < num_shards``) per client.

        Parameters
        ----------
        latencies_s:
            Mean uplink latency per client (used by latency-aware
            strategies; optional).
        loads:
            Per-client workload proxy — typically the local sample count
            (used by load-aware strategies; optional).
        """
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if latencies_s is not None and len(latencies_s) != num_clients:
            raise ValueError(
                f"expected {num_clients} latencies, got {len(latencies_s)}"
            )
        if loads is not None and len(loads) != num_clients:
            raise ValueError(f"expected {num_clients} loads, got {len(loads)}")
        if num_shards == 1:
            return [0] * num_clients
        return self._assign(num_clients, num_shards, latencies_s, loads)

    def _assign(
        self,
        num_clients: int,
        num_shards: int,
        latencies_s: Optional[Sequence[float]],
        loads: Optional[Sequence[int]],
    ) -> List[int]:
        raise NotImplementedError


class StaticHashAssigner(ShardAssigner):
    """``client i -> i mod num_shards``: uniform counts, zero knowledge."""

    name = "static_hash"

    def _assign(self, num_clients, num_shards, latencies_s, loads) -> List[int]:
        return [index % num_shards for index in range(num_clients)]


class LoadAwareAssigner(ShardAssigner):
    """Greedy balanced partition on per-client load (sample counts).

    Clients are placed heaviest-first onto the currently lightest shard —
    the classic LPT heuristic, within 4/3 of the optimal makespan.  With
    no load information it degrades gracefully to round-robin counts.
    """

    name = "load_aware"

    def _assign(self, num_clients, num_shards, latencies_s, loads) -> List[int]:
        if loads is None:
            loads = [1] * num_clients
        order = sorted(range(num_clients), key=lambda index: (-loads[index], index))
        shard_load = [0.0] * num_shards
        assignment = [0] * num_clients
        for client in order:
            target = min(range(num_shards), key=lambda shard: (shard_load[shard], shard))
            assignment[client] = target
            shard_load[target] += loads[client]
        return assignment


class LatencyAwareAssigner(ShardAssigner):
    """Contiguous latency bands: each shard owns one geographic cluster.

    Clients are sorted by uplink latency and chunked into ``num_shards``
    near-equal groups, so a shard's synchronous round barrier is set by
    its *own* latency band instead of the global straggler.  Without
    latency information the sort is the identity and the result is plain
    contiguous chunking.
    """

    name = "latency_aware"

    def _assign(self, num_clients, num_shards, latencies_s, loads) -> List[int]:
        if latencies_s is None:
            order = list(range(num_clients))
        else:
            order = sorted(range(num_clients),
                           key=lambda index: (latencies_s[index], index))
        assignment = [0] * num_clients
        base, remainder = divmod(num_clients, num_shards)
        cursor = 0
        for shard in range(num_shards):
            size = base + (1 if shard < remainder else 0)
            for client in order[cursor:cursor + size]:
                assignment[client] = shard
            cursor += size
        return assignment


_ASSIGNERS = {
    StaticHashAssigner.name: StaticHashAssigner,
    LoadAwareAssigner.name: LoadAwareAssigner,
    LatencyAwareAssigner.name: LatencyAwareAssigner,
}


def available_assigners() -> List[str]:
    """Names of the registered assignment strategies."""
    return sorted(_ASSIGNERS)


def get_assigner(name: str) -> ShardAssigner:
    """Instantiate a shard assigner by registry name."""
    try:
        return _ASSIGNERS[name.lower()]()
    except KeyError:
        known = ", ".join(available_assigners())
        raise KeyError(f"unknown assigner {name!r}; known assigners: {known}") from None
