"""Plain-text table rendering for experiment reports.

Experiments print their results in the same row layout the paper uses
(e.g. Table I: "Layers at end-systems | Accuracy"), so the harness needs a
small, dependency-free table formatter.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

__all__ = ["format_table"]

Cell = Union[str, int, float]


def _render_cell(cell: Cell, float_format: str) -> str:
    if isinstance(cell, float):
        return float_format.format(cell)
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    float_format: str = "{:.2f}",
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table.

    Parameters
    ----------
    headers:
        Column titles.
    rows:
        Iterable of rows; each row must have ``len(headers)`` cells.
    float_format:
        Format string applied to float cells.
    title:
        Optional title line placed above the table.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        row = list(row)
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers: {row!r}"
            )
        rendered_rows.append([_render_cell(cell, float_format) for cell in row])

    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_line([str(header) for header in headers]))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)
