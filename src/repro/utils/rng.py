"""Deterministic random-number management.

Every stochastic component (weight initialization, data generation, data
partitioning, network latency sampling, dropout) receives its own
``numpy.random.Generator`` derived from a single experiment seed, so that
experiments are reproducible and the per-end-system streams are
independent of how many end-systems participate.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

__all__ = ["seeded_rng", "spawn_rngs", "SeedSequence"]


def seeded_rng(seed: Optional[int] = None) -> np.random.Generator:
    """Return a ``Generator`` seeded with ``seed`` (fresh entropy when ``None``)."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: Optional[int], count: int) -> List[np.random.Generator]:
    """Spawn ``count`` statistically independent generators from one seed."""
    if count <= 0:
        raise ValueError("count must be positive")
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


class SeedSequence:
    """Named, reproducible generator factory for a whole experiment.

    Each component asks for a generator by name; the same (seed, name) pair
    always yields the same stream regardless of request order.

    Example
    -------
    >>> seeds = SeedSequence(42)
    >>> rng_model = seeds.generator("model-init")
    >>> rng_data = seeds.generator("data")
    """

    def __init__(self, seed: Optional[int] = 0) -> None:
        self.seed = seed

    def generator(self, name: Union[str, int]) -> np.random.Generator:
        """Return a generator unique to ``(self.seed, name)``."""
        # Derive a stable 64-bit value from the component name.
        name_digest = np.frombuffer(str(name).encode(), dtype=np.uint8).sum() * 2654435761
        base = 0 if self.seed is None else self.seed
        combined = np.random.SeedSequence([base, int(name_digest) % (2 ** 63)])
        return np.random.default_rng(combined)

    def generators(self, names: Sequence[Union[str, int]]) -> List[np.random.Generator]:
        """Return one generator per name."""
        return [self.generator(name) for name in names]
