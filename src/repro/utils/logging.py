"""Lightweight logging helpers built on the standard library."""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = ["get_logger", "set_verbosity"]

_ROOT_NAME = "repro"
_configured = False


def _configure_root() -> None:
    global _configured
    if _configured:
        return
    root = logging.getLogger(_ROOT_NAME)
    if not root.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s", "%H:%M:%S")
        )
        root.addHandler(handler)
    root.setLevel(logging.WARNING)
    _configured = True


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace."""
    _configure_root()
    if name is None or name == _ROOT_NAME:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(f"{_ROOT_NAME}."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def set_verbosity(level: int) -> None:
    """Set the log level for all ``repro`` loggers (e.g. ``logging.INFO``)."""
    _configure_root()
    logging.getLogger(_ROOT_NAME).setLevel(level)
