"""Preallocated, shape-bucketed arena for queued activation payloads.

The server's batched drain used to rebuild its training batch with
``np.concatenate`` over every pending activation message — a fresh
allocation plus one copy per drain, paid on the latency-critical server
step.  :class:`ActivationArena` moves that copy to **enqueue time**:
:meth:`CentralServer.receive` stages each arriving payload into a
preallocated per-shape bucket, so when the queue is drained the
concatenated batch already exists and the server trains on a contiguous
**zero-copy view** of the bucket.

Buckets are keyed by ``(per-sample activation shape, activation dtype,
label dtype)``; ragged traffic (clients cutting the network at different
layers, mixed dtypes) lands in different buckets and the drain falls
back to the concatenate path — semantics never change, only the copy
moves.  Buckets grow geometrically up to ``max_bytes`` and are rewound
to empty whenever no staged message is live, so steady-state traffic
stages into already-allocated memory.

Arena traffic is recorded in :data:`repro.utils.perf.counters`:

* ``arena_staged`` / ``arena_stage_rejected`` — payloads copied in at
  enqueue time vs refused (byte cap);
* ``arena_grows`` / ``arena_compactions`` / ``arena_bytes_allocated`` —
  bucket growth, and hole reclamation that avoided a growth;
* ``arena_gather_zero_copy`` / ``arena_gather_fallback`` — drains served
  from a contiguous view vs punted to ``np.concatenate``.

Lifetime contract
-----------------
A gathered view is valid until the staged messages backing it are
released (:meth:`ActivationArena.release`).  The server releases a drain
only after its training step has consumed the batch and copied the
per-message gradient slices out, so nothing downstream ever observes a
recycled row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .perf import counters

__all__ = ["ActivationArena", "GatheredBatch"]


@dataclass
class GatheredBatch:
    """A drain's worth of staged payloads as one contiguous view."""

    activations: np.ndarray          #: ``(total_rows, *sample_shape)`` zero-copy view
    labels: np.ndarray               #: ``(total_rows,)`` zero-copy view
    segments: List[Tuple[int, int]]  #: per-message ``(start, stop)`` rows into the view


@dataclass
class _Bucket:
    activations: np.ndarray
    labels: np.ndarray
    used: int = 0    #: write cursor (rows)
    live: int = 0    #: staged-but-unreleased messages

    @property
    def capacity(self) -> int:
        return self.activations.shape[0]

    @property
    def nbytes(self) -> int:
        return self.activations.nbytes + self.labels.nbytes


class ActivationArena:
    """Shape-bucketed staging area for :class:`ActivationMessage` payloads.

    Parameters
    ----------
    initial_rows:
        Rows allocated when a bucket is first created (grown on demand).
    max_bytes:
        Cap on total arena memory; staging that would exceed it is
        refused (the message simply stays un-staged and the drain falls
        back to concatenation for it).
    """

    def __init__(self, initial_rows: int = 256, max_bytes: int = 1 << 30) -> None:
        if initial_rows <= 0:
            raise ValueError("initial_rows must be positive")
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.initial_rows = int(initial_rows)
        self.max_bytes = int(max_bytes)
        self._buckets: Dict[Tuple, _Bucket] = {}
        # message.sequence -> (bucket key, start row, stop row)
        self._segments: Dict[int, Tuple[Tuple, int, int]] = {}

    # ------------------------------------------------------------------ #
    # Staging (enqueue time)
    # ------------------------------------------------------------------ #
    def stage(self, message: Any) -> bool:
        """Copy ``message``'s payload into the arena.

        Returns ``False`` (and counts a rejection) when the payload will
        not fit under ``max_bytes`` — the message keeps its own arrays
        and the eventual drain concatenates as before.
        """
        activations = message.activations
        labels = message.labels
        rows = int(activations.shape[0])
        key = (activations.shape[1:], activations.dtype, labels.dtype)
        if message.sequence in self._segments:
            # Re-staging the same message (e.g. a requeue): drop the old
            # rows first so live counts stay consistent.
            self.discard(message)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._new_bucket(key, max(self.initial_rows, rows))
            if bucket is None:
                counters.add("arena_stage_rejected")
                return False
            self._buckets[key] = bucket
        if bucket.used + rows > bucket.capacity:
            bucket = self._make_room(key, bucket, rows)
            if bucket is None:
                counters.add("arena_stage_rejected")
                return False
        start, stop = bucket.used, bucket.used + rows
        bucket.activations[start:stop] = activations
        bucket.labels[start:stop] = labels
        bucket.used = stop
        bucket.live += 1
        self._segments[message.sequence] = (key, start, stop)
        counters.add("arena_staged")
        counters.add("arena_bytes_staged", int(activations.nbytes + labels.nbytes))
        return True

    def _new_bucket(self, key: Tuple, rows: int,
                    replacing: Optional[_Bucket] = None) -> Optional[_Bucket]:
        sample_shape, act_dtype, label_dtype = key
        row_bytes = (
            int(np.prod(sample_shape, dtype=np.int64)) * np.dtype(act_dtype).itemsize
            + np.dtype(label_dtype).itemsize
        )
        # A growth replaces its old bucket, so the old bucket's bytes do
        # not count against the cap — otherwise a grow that fits after
        # the swap would be refused and the arena would silently degrade
        # to the concatenate path forever.
        budget_used = self.allocated_bytes - (replacing.nbytes if replacing else 0)
        if budget_used + rows * row_bytes > self.max_bytes:
            return None
        counters.add("arena_bytes_allocated", rows * row_bytes)
        return _Bucket(
            activations=np.empty((rows, *sample_shape), dtype=act_dtype),
            labels=np.empty(rows, dtype=label_dtype),
        )

    def _make_room(self, key: Tuple, bucket: _Bucket, rows: int) -> Optional[_Bucket]:
        """Make space for ``rows`` more rows: compact holes, else grow.

        Single-message pops (per-message processing, requeues) leave
        holes behind the write cursor; compacting the live segments to
        the front reclaims them without allocating, which bounds a
        bucket to its true live footprint instead of growing
        geometrically whenever the queue never quite empties.
        """
        # Sorted by *start row*: the in-place compaction below moves
        # segments left in position order, so no move ever overwrites a
        # not-yet-moved segment's source rows (staging order can differ
        # from sequence order under network reordering or re-stages).
        live = sorted(
            (
                (sequence, start, stop)
                for sequence, (seg_key, start, stop) in self._segments.items()
                if seg_key == key
            ),
            key=lambda record: record[1],
        )
        live_rows = sum(stop - start for _, start, stop in live)
        if live_rows + rows <= bucket.capacity:
            # Holes cover the shortfall: slide live segments to the front.
            self._compact(key, bucket, live)
            counters.add("arena_compactions")
            return bucket
        capacity = bucket.capacity
        while capacity < live_rows + rows:
            capacity *= 2
        grown = self._new_bucket(key, capacity, replacing=bucket)
        if grown is None:
            return None
        cursor = 0
        for sequence, start, stop in live:
            length = stop - start
            grown.activations[cursor:cursor + length] = bucket.activations[start:stop]
            grown.labels[cursor:cursor + length] = bucket.labels[start:stop]
            self._segments[sequence] = (key, cursor, cursor + length)
            cursor += length
        grown.used = cursor
        grown.live = bucket.live
        self._buckets[key] = grown
        counters.add("arena_grows")
        return grown

    def _compact(self, key: Tuple, bucket: _Bucket,
                 live: List[Tuple[int, int, int]]) -> None:
        cursor = 0
        for sequence, start, stop in live:
            length = stop - start
            if start != cursor:
                source = bucket.activations[start:stop]
                labels = bucket.labels[start:stop]
                if start < cursor + length:
                    # The move overlaps its own source; copy through a temp.
                    source = source.copy()
                    labels = labels.copy()
                bucket.activations[cursor:cursor + length] = source
                bucket.labels[cursor:cursor + length] = labels
                self._segments[sequence] = (key, cursor, cursor + length)
            cursor += length
        bucket.used = cursor

    # ------------------------------------------------------------------ #
    # Draining
    # ------------------------------------------------------------------ #
    def gather(self, messages: Sequence) -> Optional[GatheredBatch]:
        """Return the drain's payloads as one contiguous zero-copy view.

        Succeeds when every message is staged in the same bucket and
        their rows tile one contiguous span (the common case: they were
        staged consecutively and are all drained together).  Returns
        ``None`` otherwise — un-staged messages, ragged buckets, or
        holes left by single-message pops — and the caller concatenates.
        """
        if not messages:
            return None
        segments = []
        keys = set()
        for message in messages:
            record = self._segments.get(message.sequence)
            if record is None:
                counters.add("arena_gather_fallback")
                return None
            key, start, stop = record
            keys.add(key)
            segments.append((start, stop))
        if len(keys) > 1:
            counters.add("arena_gather_fallback")
            return None
        ordered = sorted(segments)
        for (_, stop), (next_start, _) in zip(ordered, ordered[1:]):
            if stop != next_start:
                counters.add("arena_gather_fallback")
                return None
        low, high = ordered[0][0], ordered[-1][1]
        bucket = self._buckets[keys.pop()]
        counters.add("arena_gather_zero_copy")
        return GatheredBatch(
            activations=bucket.activations[low:high],
            labels=bucket.labels[low:high],
            segments=[(start - low, stop - low) for start, stop in segments],
        )

    def discard(self, message: Any) -> None:
        """Forget one staged message (e.g. popped for per-message processing).

        The freed rows are only reclaimed once the whole bucket goes
        idle; a drain spanning the resulting hole falls back to
        concatenation.
        """
        record = self._segments.pop(message.sequence, None)
        if record is None:
            return
        bucket = self._buckets.get(record[0])
        if bucket is None:
            return
        bucket.live -= 1
        if bucket.live <= 0:
            bucket.live = 0
            bucket.used = 0

    def release(self, messages: Sequence) -> None:
        """Release every staged message of a consumed drain."""
        for message in messages:
            self.discard(message)

    def reset(self) -> None:
        """Forget all staged payloads (keeps the allocated buckets)."""
        self._segments.clear()
        for bucket in self._buckets.values():
            bucket.used = 0
            bucket.live = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def allocated_bytes(self) -> int:
        """Total bytes currently held by every bucket."""
        return sum(bucket.nbytes for bucket in self._buckets.values())

    @property
    def staged_messages(self) -> int:
        """Messages currently staged and not yet released."""
        return len(self._segments)

    def __repr__(self) -> str:
        return (
            f"ActivationArena(buckets={len(self._buckets)}, "
            f"staged={self.staged_messages}, bytes={self.allocated_bytes})"
        )
