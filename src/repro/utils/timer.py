"""Wall-clock timing helper for training loops and benchmarks."""

from __future__ import annotations

import time
from typing import Dict, List, Optional

__all__ = ["Timer"]


class Timer:
    """Accumulating stopwatch with named sections.

    Example
    -------
    >>> timer = Timer()
    >>> with timer.section("forward"):
    ...     _ = sum(range(1000))
    >>> timer.total("forward") >= 0.0
    True
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    class _Section:
        def __init__(self, timer: "Timer", name: str) -> None:
            self._timer = timer
            self._name = name
            self._start: Optional[float] = None

        def __enter__(self) -> "Timer._Section":
            self._start = time.perf_counter()
            return self

        def __exit__(self, exc_type, exc_value, traceback) -> None:
            elapsed = time.perf_counter() - self._start
            self._timer._totals[self._name] = self._timer._totals.get(self._name, 0.0) + elapsed
            self._timer._counts[self._name] = self._timer._counts.get(self._name, 0) + 1

    def section(self, name: str) -> "Timer._Section":
        """Return a context manager that accumulates time into ``name``."""
        return Timer._Section(self, name)

    def total(self, name: str) -> float:
        """Total seconds spent in section ``name``."""
        return self._totals.get(name, 0.0)

    def count(self, name: str) -> int:
        """Number of times section ``name`` was entered."""
        return self._counts.get(name, 0)

    def mean(self, name: str) -> float:
        """Mean seconds per entry of section ``name`` (0 if never entered)."""
        count = self.count(name)
        return self.total(name) / count if count else 0.0

    def sections(self) -> List[str]:
        """Names of every section recorded so far."""
        return sorted(self._totals)

    def summary(self) -> str:
        """Human-readable per-section timing table."""
        lines = [f"{'section':<24s} {'count':>8s} {'total (s)':>12s} {'mean (s)':>12s}"]
        for name in self.sections():
            lines.append(
                f"{name:<24s} {self.count(name):>8d} {self.total(name):>12.4f} {self.mean(name):>12.4f}"
            )
        return "\n".join(lines)
