"""Op-level performance instrumentation and reusable workspaces.

Two facilities back the substrate's allocation-aware hot paths:

* :class:`PerfCounters` — cheap global counters for GEMM calls, conv/pool
  invocations, workspace hits/misses and bytes allocated.  The functional
  ops in :mod:`repro.nn.functional` and :meth:`repro.nn.tensor.Tensor.matmul`
  increment them, so a training run can report *why* it was fast or slow
  (``counters.snapshot()`` / the :func:`track` context manager).
* :class:`WorkspaceCache` — a shape-and-dtype-keyed pool of scratch
  arrays.  The im2col/col2im paths burn most of their time allocating and
  filling large column buffers; buffers obtained through
  :func:`workspace` are reused across calls instead of reallocated.

Workspace safety contract
-------------------------
A workspace buffer is only valid until the *next* request for the same
``(tag, shape, dtype)`` key.  Callers must therefore only use workspaces
for transient scratch whose contents are fully consumed before the op
returns (or, for inference, before the next op of the same shape runs).
Nothing reachable from an autograd closure may live in a workspace unless
the closure never reads its contents again.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterator, Tuple

import numpy as np

__all__ = [
    "PerfCounters",
    "counters",
    "track",
    "WorkspaceCache",
    "workspaces",
    "workspace",
]


class PerfCounters:
    """A dictionary of monotonically increasing named counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> None:
        """Increment ``name`` by ``amount`` (creating it at zero)."""
        self._counts[name] = self._counts.get(name, 0) + int(amount)

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        """Copy of every counter."""
        return dict(self._counts)

    def reset(self) -> None:
        """Zero every counter."""
        self._counts.clear()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"PerfCounters({inner})"


#: Process-global counters used by the nn hot paths.
counters = PerfCounters()


@contextlib.contextmanager
def track() -> Iterator[Dict[str, int]]:
    """Yield a dict that, on exit, holds the counter deltas of the block.

    >>> with track() as delta:
    ...     model(x)
    >>> delta["gemm_calls"]
    6
    """
    before = counters.snapshot()
    delta: Dict[str, int] = {}
    try:
        yield delta
    finally:
        after = counters.snapshot()
        for name, value in after.items():
            diff = value - before.get(name, 0)
            if diff:
                delta[name] = diff


class WorkspaceCache:
    """Shape/dtype-keyed pool of reusable scratch arrays.

    The pool is bounded: buffers are evicted least-recently-used once the
    total cached size exceeds ``max_bytes``, so a long-lived process that
    sweeps many architectures/batch sizes does not accumulate scratch
    forever.  The cap is generous relative to one deployment's working
    set (a paper-CNN training step uses a few tens of MB), so the hot
    loop never thrashes.
    """

    def __init__(self, max_bytes: int = 256 * 1024 * 1024) -> None:
        self._buffers: "Dict[Tuple, np.ndarray]" = {}
        self.max_bytes = int(max_bytes)

    def get(self, tag: str, shape: Tuple[int, ...], dtype: Any) -> np.ndarray:
        """Return a scratch array of ``shape``/``dtype`` for ``tag``.

        Contents are uninitialized (may hold data from a previous use).
        """
        key = (tag, tuple(shape), np.dtype(dtype))
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = np.empty(shape, dtype=dtype)
            self._buffers[key] = buffer
            counters.add("workspace_misses")
            counters.add("workspace_bytes_allocated", buffer.nbytes)
            self._evict(keep=key)
        else:
            # Mark as most recently used (dicts preserve insertion order).
            self._buffers.pop(key)
            self._buffers[key] = buffer
            counters.add("workspace_hits")
        return buffer

    def _evict(self, keep: Tuple) -> None:
        """Drop least-recently-used buffers until under the byte cap."""
        while self.cached_bytes > self.max_bytes and len(self._buffers) > 1:
            oldest = next(iter(self._buffers))
            if oldest == keep:
                break
            evicted = self._buffers.pop(oldest)
            counters.add("workspace_evictions")
            counters.add("workspace_bytes_evicted", evicted.nbytes)

    def clear(self) -> None:
        """Drop every cached buffer (frees the memory)."""
        self._buffers.clear()

    @property
    def cached_bytes(self) -> int:
        """Total bytes currently held by the cache."""
        return sum(buffer.nbytes for buffer in self._buffers.values())

    def __len__(self) -> int:
        return len(self._buffers)


#: Process-global workspace pool used by the im2col/col2im hot paths.
workspaces = WorkspaceCache()


def workspace(tag: str, shape: Tuple[int, ...], dtype: Any) -> np.ndarray:
    """Shorthand for ``workspaces.get(tag, shape, dtype)``."""
    return workspaces.get(tag, shape, dtype)
