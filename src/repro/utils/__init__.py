"""Shared utilities: seeding, logging, timing, perf counters, arenas and tables."""

from . import arena, perf
from .arena import ActivationArena
from .logging import get_logger, set_verbosity
from .rng import SeedSequence, seeded_rng, spawn_rngs
from .timer import Timer
from .tables import format_table

__all__ = [
    "get_logger",
    "set_verbosity",
    "seeded_rng",
    "spawn_rngs",
    "SeedSequence",
    "Timer",
    "format_table",
    "arena",
    "ActivationArena",
    "perf",
]
