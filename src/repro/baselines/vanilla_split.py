"""Vanilla (single-end-system) split learning baseline.

This is the setting of the paper's Fig. 1 and of Vepakomma et al. (2018):
*one* end-system holds the first layers and its data, the server holds
the rest.  When several institutions participate they must take turns —
the model is trained on institution 1's data, then the client weights are
handed to institution 2, and so on (the "peer-to-peer"/sequential
protocol from the split-learning literature).  Spatio-temporal split
learning removes that serialization by letting every end-system stream
activations into one shared server queue; this baseline is what it is
compared against.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.datasets import Dataset
from ..data.loader import DataLoader
from ..data.transforms import Transform
from ..nn import Tensor, no_grad
from ..nn.losses import get_loss
from ..nn.metrics import MetricTracker, accuracy
from ..nn.optim import get_optimizer
from ..utils.logging import get_logger
from ..core.history import EpochRecord, TrainingHistory
from ..core.split import SplitSpec

__all__ = ["SequentialSplitTrainer"]

logger = get_logger("baselines.vanilla_split")


class SequentialSplitTrainer:
    """Split learning with a single shared client segment visited in turns.

    Parameters
    ----------
    split_spec:
        Architecture and cut (the same object the spatio-temporal trainer
        uses, so comparisons are apples-to-apples).
    client_datasets:
        The institutions' local datasets, visited round-robin each epoch.
    """

    def __init__(
        self,
        split_spec: SplitSpec,
        client_datasets: Sequence[Dataset],
        client_optimizer: str = "adam",
        client_lr: float = 1e-3,
        server_optimizer: str = "adam",
        server_lr: float = 1e-3,
        loss_name: str = "cross_entropy",
        batch_size: int = 32,
        seed: int = 0,
        transform: Optional[Transform] = None,
    ) -> None:
        if not client_datasets:
            raise ValueError("need at least one client dataset")
        if split_spec.client_blocks == 0:
            raise ValueError("vanilla split learning requires at least one client block")
        self.split_spec = split_spec
        self.batch_size = batch_size
        self.transform = transform
        # One shared client segment handed from institution to institution.
        self.client_model = split_spec.build_client_segment(seed=seed)
        self.server_model = split_spec.build_server_segment(seed=seed + 1)
        self.client_optimizer = get_optimizer(
            client_optimizer, self.client_model.parameters(), lr=client_lr
        )
        self.server_optimizer = get_optimizer(
            server_optimizer, self.server_model.parameters(), lr=server_lr
        )
        self.loss_fn = get_loss(loss_name)
        self.loaders: List[DataLoader] = [
            DataLoader(dataset, batch_size=batch_size, shuffle=True,
                       transform=transform, seed=seed + index)
            for index, dataset in enumerate(client_datasets)
        ]

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def _train_batch(self, images: np.ndarray, labels: np.ndarray) -> Dict[str, float]:
        self.client_model.train(True)
        self.server_model.train(True)

        client_output = self.client_model(Tensor(images, requires_grad=True))
        smashed = Tensor(client_output.data.copy(), requires_grad=True)
        logits = self.server_model(smashed)
        loss = self.loss_fn(logits, labels)

        self.server_optimizer.zero_grad()
        self.client_optimizer.zero_grad()
        loss.backward()
        self.server_optimizer.step()
        # Relay the boundary gradient back through the client-side graph.
        client_output.backward(smashed.grad)
        self.client_optimizer.step()
        return {"loss": float(loss.item()), "accuracy": accuracy(logits, labels)}

    def train_epoch(self, epoch: int) -> Dict[str, float]:
        """One epoch: visit every institution in turn, exhausting its data."""
        tracker = MetricTracker()
        for loader in self.loaders:
            loader.set_epoch(epoch)
            for images, labels in loader:
                metrics = self._train_batch(images, labels)
                tracker.update(metrics, count=images.shape[0])
        return tracker.averages()

    def evaluate(self, dataset: Dataset, batch_size: int = 128,
                 transform: Optional[Transform] = None) -> Dict[str, float]:
        """Loss and accuracy of the combined client+server model."""
        self.client_model.train(False)
        self.server_model.train(False)
        images, labels = dataset.arrays()
        transform = transform if transform is not None else self.transform
        if transform is not None:
            images = transform(images)
        total_loss, total_correct, total = 0.0, 0.0, 0
        for start in range(0, images.shape[0], batch_size):
            stop = start + batch_size
            batch_images, batch_labels = images[start:stop], labels[start:stop]
            with no_grad():
                logits = self.server_model(self.client_model(Tensor(batch_images)))
                loss = self.loss_fn(logits, batch_labels)
            total_loss += float(loss.item()) * batch_images.shape[0]
            total_correct += accuracy(logits, batch_labels) * batch_images.shape[0]
            total += batch_images.shape[0]
        return {"loss": total_loss / total, "accuracy": total_correct / total}

    def fit(self, test_dataset: Optional[Dataset] = None, epochs: int = 10,
            eval_transform: Optional[Transform] = None) -> TrainingHistory:
        """Train for ``epochs`` rounds of sequential institution visits."""
        history = TrainingHistory(config={
            "baseline": "sequential_split",
            "epochs": epochs,
            "client_blocks": self.split_spec.client_blocks,
            "num_clients": len(self.loaders),
        })
        for epoch in range(epochs):
            start = time.perf_counter()
            averages = self.train_epoch(epoch)
            record = EpochRecord(
                epoch=epoch,
                train_loss=averages["loss"],
                train_accuracy=averages["accuracy"],
                wall_time_s=time.perf_counter() - start,
            )
            if test_dataset is not None:
                evaluation = self.evaluate(test_dataset, transform=eval_transform)
                record.test_loss = evaluation["loss"]
                record.test_accuracy = evaluation["accuracy"]
            history.append(record)
            logger.info(
                "sequential split epoch %d: train_acc=%.4f test_acc=%s",
                epoch, record.train_accuracy,
                f"{record.test_accuracy:.4f}" if record.test_accuracy is not None else "n/a",
            )
        return history
