"""Federated averaging (FedAvg) baseline.

The paper positions split learning as one member of the federated-
learning family ("among various federated learning algorithms, this paper
considers split learning").  FedAvg (McMahan et al., 2017) is the
canonical alternative: every client trains a *complete* local copy of the
model on its own data for a few local epochs and the server averages the
resulting weights, so no activations are exchanged but every client must
be able to run the full network.  The baseline-comparison benchmark puts
the two side by side on the same data partition.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.datasets import Dataset
from ..data.loader import DataLoader
from ..data.transforms import Transform
from ..nn import Sequential, Tensor, no_grad
from ..nn.losses import get_loss
from ..nn.metrics import MetricTracker, accuracy
from ..nn.optim import get_optimizer
from ..utils.logging import get_logger
from ..core.history import EpochRecord, TrainingHistory
from ..core.models import CNNArchitecture

__all__ = ["FedAvgTrainer", "average_state_dicts"]

logger = get_logger("baselines.fedavg")


def average_state_dicts(states: Sequence[Dict[str, np.ndarray]],
                        weights: Optional[Sequence[float]] = None) -> Dict[str, np.ndarray]:
    """Weighted average of parameter dictionaries (FedAvg aggregation step)."""
    if not states:
        raise ValueError("need at least one state dict to average")
    if weights is None:
        weights = [1.0] * len(states)
    if len(weights) != len(states):
        raise ValueError("weights and states must have the same length")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    keys = states[0].keys()
    for state in states[1:]:
        if state.keys() != keys:
            raise ValueError("state dicts have mismatching keys")
    averaged: Dict[str, np.ndarray] = {}
    for key in keys:
        stacked = np.stack([state[key] * (weight / total)
                            for state, weight in zip(states, weights)])
        averaged[key] = stacked.sum(axis=0)
    return averaged


class FedAvgTrainer:
    """Federated averaging over the same client partition used for split learning.

    Parameters
    ----------
    architecture:
        Full-model factory (every client instantiates a complete copy).
    client_datasets:
        The clients' local datasets.
    local_epochs:
        Local passes each client performs per communication round.
    """

    def __init__(
        self,
        architecture: CNNArchitecture,
        client_datasets: Sequence[Dataset],
        optimizer_name: str = "sgd",
        lr: float = 0.05,
        local_epochs: int = 1,
        loss_name: str = "cross_entropy",
        batch_size: int = 32,
        seed: int = 0,
        transform: Optional[Transform] = None,
    ) -> None:
        if not client_datasets:
            raise ValueError("need at least one client dataset")
        if local_epochs <= 0:
            raise ValueError("local_epochs must be positive")
        self.architecture = architecture
        self.global_model: Sequential = architecture.build(seed=seed)
        self.optimizer_name = optimizer_name
        self.lr = lr
        self.local_epochs = local_epochs
        self.loss_fn = get_loss(loss_name)
        self.batch_size = batch_size
        self.seed = seed
        self.transform = transform
        self.loaders: List[DataLoader] = [
            DataLoader(dataset, batch_size=batch_size, shuffle=True,
                       transform=transform, seed=seed + index)
            for index, dataset in enumerate(client_datasets)
        ]
        self.client_sizes = [len(dataset) for dataset in client_datasets]

    # ------------------------------------------------------------------ #
    # One communication round
    # ------------------------------------------------------------------ #
    def _local_update(self, loader: DataLoader, round_index: int) -> Dict[str, object]:
        """Train a fresh local copy starting from the global weights."""
        local_model = self.architecture.build(seed=self.seed)
        local_model.load_state_dict(self.global_model.state_dict())
        optimizer = get_optimizer(self.optimizer_name, local_model.parameters(), lr=self.lr)
        tracker = MetricTracker()
        for local_epoch in range(self.local_epochs):
            loader.set_epoch(round_index * self.local_epochs + local_epoch)
            for images, labels in loader:
                optimizer.zero_grad()
                logits = local_model(Tensor(images))
                loss = self.loss_fn(logits, labels)
                loss.backward()
                optimizer.step()
                tracker.update(
                    {"loss": float(loss.item()), "accuracy": accuracy(logits, labels)},
                    count=images.shape[0],
                )
        return {"state": local_model.state_dict(), "metrics": tracker.averages()}

    def train_round(self, round_index: int) -> Dict[str, float]:
        """One FedAvg round: local training on every client + weighted averaging."""
        states = []
        tracker = MetricTracker()
        for loader, size in zip(self.loaders, self.client_sizes):
            result = self._local_update(loader, round_index)
            states.append(result["state"])
            tracker.update(result["metrics"], count=size)
        averaged = average_state_dicts(states, weights=self.client_sizes)
        self.global_model.load_state_dict(averaged)
        return tracker.averages()

    # ------------------------------------------------------------------ #
    # Evaluation / full run
    # ------------------------------------------------------------------ #
    def evaluate(self, dataset: Dataset, batch_size: int = 128,
                 transform: Optional[Transform] = None) -> Dict[str, float]:
        """Loss and accuracy of the current global model."""
        self.global_model.train(False)
        images, labels = dataset.arrays()
        transform = transform if transform is not None else self.transform
        if transform is not None:
            images = transform(images)
        total_loss, total_correct, total = 0.0, 0.0, 0
        for start in range(0, images.shape[0], batch_size):
            stop = start + batch_size
            batch_images, batch_labels = images[start:stop], labels[start:stop]
            with no_grad():
                logits = self.global_model(Tensor(batch_images))
                loss = self.loss_fn(logits, batch_labels)
            total_loss += float(loss.item()) * batch_images.shape[0]
            total_correct += accuracy(logits, batch_labels) * batch_images.shape[0]
            total += batch_images.shape[0]
        return {"loss": total_loss / total, "accuracy": total_correct / total}

    def fit(self, test_dataset: Optional[Dataset] = None, rounds: int = 10,
            eval_transform: Optional[Transform] = None) -> TrainingHistory:
        """Run ``rounds`` communication rounds."""
        history = TrainingHistory(config={
            "baseline": "fedavg",
            "rounds": rounds,
            "local_epochs": self.local_epochs,
            "num_clients": len(self.loaders),
        })
        for round_index in range(rounds):
            start = time.perf_counter()
            averages = self.train_round(round_index)
            record = EpochRecord(
                epoch=round_index,
                train_loss=averages["loss"],
                train_accuracy=averages["accuracy"],
                wall_time_s=time.perf_counter() - start,
            )
            if test_dataset is not None:
                evaluation = self.evaluate(test_dataset, transform=eval_transform)
                record.test_loss = evaluation["loss"]
                record.test_accuracy = evaluation["accuracy"]
            history.append(record)
            logger.info(
                "fedavg round %d: train_acc=%.4f test_acc=%s",
                round_index, record.train_accuracy,
                f"{record.test_accuracy:.4f}" if record.test_accuracy is not None else "n/a",
            )
        return history
