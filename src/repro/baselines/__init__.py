"""Baselines the paper's framework is compared against.

* :class:`CentralizedTrainer` — all layers and all raw data on the server
  (Table I's first row; the non-private accuracy upper bound).
* :class:`SequentialSplitTrainer` — classic single-client split learning
  (Vepakomma et al.), where institutions take turns with one shared client
  segment.
* :class:`FedAvgTrainer` — federated averaging, the canonical
  full-model-on-every-client alternative.
"""

from .centralized import CentralizedTrainer
from .fedavg import FedAvgTrainer, average_state_dicts
from .vanilla_split import SequentialSplitTrainer

__all__ = [
    "CentralizedTrainer",
    "SequentialSplitTrainer",
    "FedAvgTrainer",
    "average_state_dicts",
]
