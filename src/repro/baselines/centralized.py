"""Centralized training baseline.

This is the first row of the paper's Table I — "Nothing (All layers are
in the server)": every layer lives on the server and all raw training
data is uploaded, so there is no privacy but also no split-induced
accuracy loss.  Split-learning configurations are compared against this
upper bound.
"""

from __future__ import annotations

import time
from typing import Dict, Optional


from ..data.datasets import Dataset
from ..data.loader import DataLoader
from ..data.transforms import Transform
from ..nn import Sequential, Tensor, no_grad
from ..nn.losses import get_loss
from ..nn.metrics import MetricTracker, accuracy
from ..nn.optim import get_optimizer
from ..utils.logging import get_logger
from ..core.history import EpochRecord, TrainingHistory

__all__ = ["CentralizedTrainer"]

logger = get_logger("baselines.centralized")


class CentralizedTrainer:
    """Plain single-machine training of a full model on pooled data.

    Parameters
    ----------
    model:
        The full network (e.g. ``paper_cnn_architecture().build()``).
    optimizer_name / optimizer_kwargs:
        Optimizer configuration for all parameters.
    loss_name:
        Training loss.
    """

    def __init__(
        self,
        model: Sequential,
        optimizer_name: str = "adam",
        optimizer_kwargs: Optional[Dict] = None,
        loss_name: str = "cross_entropy",
    ) -> None:
        self.model = model
        optimizer_kwargs = dict(optimizer_kwargs or {"lr": 1e-3})
        self.optimizer = get_optimizer(optimizer_name, model.parameters(), **optimizer_kwargs)
        self.loss_fn = get_loss(loss_name)

    def train_epoch(self, loader: DataLoader, epoch: int = 0) -> Dict[str, float]:
        """Run one epoch over ``loader`` and return averaged metrics."""
        self.model.train(True)
        loader.set_epoch(epoch)
        tracker = MetricTracker()
        for images, labels in loader:
            self.optimizer.zero_grad()
            logits = self.model(Tensor(images))
            loss = self.loss_fn(logits, labels)
            loss.backward()
            self.optimizer.step()
            tracker.update(
                {"loss": float(loss.item()), "accuracy": accuracy(logits, labels)},
                count=images.shape[0],
            )
        return tracker.averages()

    def evaluate(self, dataset: Dataset, batch_size: int = 128,
                 transform: Optional[Transform] = None) -> Dict[str, float]:
        """Loss and accuracy on a held-out dataset."""
        self.model.train(False)
        images, labels = dataset.arrays()
        if transform is not None:
            images = transform(images)
        total_loss = 0.0
        total_correct = 0.0
        total = 0
        for start in range(0, images.shape[0], batch_size):
            stop = start + batch_size
            batch_images, batch_labels = images[start:stop], labels[start:stop]
            with no_grad():
                logits = self.model(Tensor(batch_images))
                loss = self.loss_fn(logits, batch_labels)
            total_loss += float(loss.item()) * batch_images.shape[0]
            total_correct += accuracy(logits, batch_labels) * batch_images.shape[0]
            total += batch_images.shape[0]
        return {"loss": total_loss / total, "accuracy": total_correct / total}

    def fit(
        self,
        train_dataset: Dataset,
        test_dataset: Optional[Dataset] = None,
        epochs: int = 10,
        batch_size: int = 32,
        transform: Optional[Transform] = None,
        eval_transform: Optional[Transform] = None,
        seed: int = 0,
    ) -> TrainingHistory:
        """Train for ``epochs`` passes over the pooled dataset."""
        loader = DataLoader(
            train_dataset, batch_size=batch_size, shuffle=True, transform=transform, seed=seed
        )
        eval_transform = eval_transform if eval_transform is not None else transform
        history = TrainingHistory(config={
            "baseline": "centralized", "epochs": epochs, "batch_size": batch_size,
        })
        for epoch in range(epochs):
            start = time.perf_counter()
            averages = self.train_epoch(loader, epoch)
            record = EpochRecord(
                epoch=epoch,
                train_loss=averages["loss"],
                train_accuracy=averages["accuracy"],
                wall_time_s=time.perf_counter() - start,
                samples=loader.num_samples,
            )
            if test_dataset is not None:
                evaluation = self.evaluate(test_dataset, transform=eval_transform)
                record.test_loss = evaluation["loss"]
                record.test_accuracy = evaluation["accuracy"]
            history.append(record)
            logger.info(
                "centralized epoch %d: train_acc=%.4f test_acc=%s",
                epoch, record.train_accuracy,
                f"{record.test_accuracy:.4f}" if record.test_accuracy is not None else "n/a",
            )
        return history
