"""Pluggable compute backends for the substrate's array primitives.

The NumPy substrate funnels its heavy math through three primitives —
GEMM, elementwise maps and axis reductions — so swapping the
implementation of those three operations retargets every hot path at
once (conv2d's im2col GEMMs, the fused dense layer, the fused
cross-entropy loss, the server's batched drain).  A backend is a small
object implementing

* :meth:`Backend.gemm` — matrix multiply with an optional **fused
  epilogue** (``bias`` add and/or ``activation``) applied while the
  output tile is still cache-hot, and an optional ``out=`` destination
  so callers can supply workspace-cached buffers;
* :meth:`Backend.elementwise` — named elementwise maps (``relu``,
  ``exp``, ``add``, …) with ``out=`` support;
* :meth:`Backend.reduce` — named axis reductions (``sum``, ``max``,
  ``mean``, ``argmax``) with ``out=`` support.

Two implementations ship in-tree:

* :class:`NumpyBackend` — the trivially readable reference: one
  ``np.matmul`` per GEMM, ufuncs for the rest.
* :class:`BlockedBackend` — tiles large GEMMs over blocks of output
  rows and applies the bias/activation epilogue per tile, so the
  epilogue never costs an extra full pass over a cache-cold output.
  Tiling splits only the *M* dimension (full *K* per tile), so partial
  sums are computed in the same order as the direct product and results
  match the reference backend to round-off.

The active backend is process-global:

>>> from repro import backend
>>> backend.set_backend("blocked")
>>> with backend.use_backend("numpy"):
...     ...  # reference semantics inside the block

``TrainingConfig.compute_backend`` threads the same selection through
the trainer.  Backend traffic is recorded in
:data:`repro.utils.perf.counters` (``gemm_calls``,
``backend_gemm_blocked``, ``backend_gemm_tiles``,
``backend_fused_bias``, ``backend_fused_activation``).
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

import numpy as np

from ..utils.perf import counters

__all__ = [
    "Backend",
    "NumpyBackend",
    "BlockedBackend",
    "available_backends",
    "get_backend",
    "set_backend",
    "use_backend",
]


class Backend:
    """Interface every compute backend implements.

    All three primitives accept ``out=``: when given, the result is
    written into that array (which is also returned), so hot paths can
    reuse workspace-cached buffers instead of allocating.
    """

    name: str = "abstract"

    def gemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        out: Optional[np.ndarray] = None,
        *,
        bias: Optional[np.ndarray] = None,
        activation: Optional[str] = None,
    ) -> np.ndarray:
        """Matrix product ``a @ b`` with an optional fused epilogue.

        ``bias`` (broadcast-added over the output rows) and
        ``activation`` (a named elementwise map, e.g. ``"relu"``) are
        applied in place on the output — blocked implementations apply
        them per tile while the tile is cache-hot.
        """
        raise NotImplementedError

    def elementwise(self, op: str, *operands: np.ndarray,
                    out: Optional[np.ndarray] = None) -> np.ndarray:
        """Apply the named elementwise map to ``operands``."""
        raise NotImplementedError

    def reduce(self, op: str, operand: np.ndarray, axis: Any = None,
               out: Optional[np.ndarray] = None, keepdims: bool = False) -> np.ndarray:
        """Apply the named reduction along ``axis``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def _relu(x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    # 0 is passed as a python scalar so float32 operands stay float32.
    return np.maximum(x, 0, out=out)


_UNARY: Dict[str, Callable] = {
    "relu": _relu,
    "exp": np.exp,
    "log": np.log,
    "neg": np.negative,
    "abs": np.abs,
    "sqrt": np.sqrt,
    "tanh": np.tanh,
}

_BINARY: Dict[str, Callable] = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.true_divide,
    "maximum": np.maximum,
    "minimum": np.minimum,
}

_REDUCTIONS: Dict[str, Callable] = {
    "sum": np.sum,
    "max": np.max,
    "min": np.min,
    "mean": np.mean,
    "argmax": np.argmax,
}


class NumpyBackend(Backend):
    """Reference backend: plain NumPy calls, nothing clever."""

    name = "numpy"

    def gemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        out: Optional[np.ndarray] = None,
        *,
        bias: Optional[np.ndarray] = None,
        activation: Optional[str] = None,
    ) -> np.ndarray:
        self._count_gemm(bias, activation)
        result = np.matmul(a, b, out=out)
        return self._epilogue(result, bias, activation)

    @staticmethod
    def _count_gemm(bias: Optional[np.ndarray], activation: Optional[str]) -> None:
        # Counted once per fused op (never per tile), so the counters
        # mean the same thing on every backend.
        counters.add("gemm_calls")
        if bias is not None:
            counters.add("backend_fused_bias")
        if activation is not None:
            counters.add("backend_fused_activation")

    @staticmethod
    def _epilogue(out: np.ndarray, bias: Optional[np.ndarray],
                  activation: Optional[str]) -> np.ndarray:
        if bias is not None:
            out += bias
        if activation is not None:
            _UNARY[activation](out, out=out)
        return out

    def elementwise(self, op: str, *operands: np.ndarray,
                    out: Optional[np.ndarray] = None) -> np.ndarray:
        if op in _UNARY:
            (x,) = operands
            return _UNARY[op](x, out=out)
        if op in _BINARY:
            x, y = operands
            return _BINARY[op](x, y, out=out)
        known = ", ".join(sorted(_UNARY) + sorted(_BINARY))
        raise KeyError(f"unknown elementwise op {op!r}; known ops: {known}")

    def reduce(self, op: str, operand: np.ndarray, axis: Any = None,
               out: Optional[np.ndarray] = None, keepdims: bool = False) -> np.ndarray:
        try:
            fn = _REDUCTIONS[op]
        except KeyError:
            known = ", ".join(sorted(_REDUCTIONS))
            raise KeyError(f"unknown reduction {op!r}; known reductions: {known}") from None
        if op == "argmax":
            # np.argmax has no keepdims before numpy 1.22 semantics we rely
            # on; keep its signature minimal.
            return fn(operand, axis=axis, out=out)
        return fn(operand, axis=axis, out=out, keepdims=keepdims)


class BlockedBackend(NumpyBackend):
    """Row-tiled GEMM with cache-hot fused epilogues.

    Large products are computed ``block_rows`` output rows at a time;
    the bias/activation epilogue runs on each tile right after its
    product, while the tile is still in cache, instead of as a second
    full pass over the output.  Only the *M* dimension is tiled — every
    tile sees the full *K* — so the summation order (and therefore the
    result, up to BLAS round-off) matches the direct product.

    Small problems (fewer than ``2 * block_rows`` output rows) and
    non-2D operands defer to the reference implementation.
    """

    name = "blocked"

    def __init__(self, block_rows: int = 2048) -> None:
        if block_rows <= 0:
            raise ValueError("block_rows must be positive")
        self.block_rows = int(block_rows)

    def gemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        out: Optional[np.ndarray] = None,
        *,
        bias: Optional[np.ndarray] = None,
        activation: Optional[str] = None,
    ) -> np.ndarray:
        if a.ndim != 2 or b.ndim != 2 or a.shape[0] < 2 * self.block_rows:
            return super().gemm(a, b, out=out, bias=bias, activation=activation)
        self._count_gemm(bias, activation)
        counters.add("backend_gemm_blocked")
        m = a.shape[0]
        if out is None:
            out = np.empty((m, b.shape[1]), dtype=np.result_type(a, b))
        for start in range(0, m, self.block_rows):
            stop = min(m, start + self.block_rows)
            tile = out[start:stop]
            np.matmul(a[start:stop], b, out=tile)
            self._epilogue(tile, bias, activation)
            counters.add("backend_gemm_tiles")
        return out


_BACKENDS: Dict[str, Callable[[], Backend]] = {
    "numpy": NumpyBackend,
    "blocked": BlockedBackend,
}

#: Process-global active backend.  ``blocked`` is the default: it defers
#: to the reference implementation for small problems, so it is never
#: slower and needs no configuration.
_ACTIVE: Backend = BlockedBackend()


def available_backends() -> List[str]:
    """Names accepted by :func:`set_backend`."""
    return sorted(_BACKENDS)


def get_backend() -> Backend:
    """The currently active backend."""
    return _ACTIVE


def set_backend(backend: Union[str, Backend]) -> Backend:
    """Install ``backend`` (a name or an instance) as the active backend."""
    global _ACTIVE
    if isinstance(backend, str):
        try:
            backend = _BACKENDS[backend.lower()]()
        except KeyError:
            known = ", ".join(available_backends())
            raise KeyError(
                f"unknown backend {backend!r}; known backends: {known}"
            ) from None
    if not isinstance(backend, Backend):
        raise TypeError(f"expected a Backend or a name, got {type(backend).__name__}")
    _ACTIVE = backend
    return _ACTIVE


@contextlib.contextmanager
def use_backend(backend: Union[str, Backend]) -> Iterator[Backend]:
    """Temporarily switch the active backend within a ``with`` block."""
    previous = get_backend()
    installed = set_backend(backend)
    try:
        yield installed
    finally:
        set_backend(previous)
