"""Checkpoint snapshot formats: per-shard, per-client and whole-run.

A :class:`ShardCheckpoint` is the unit of crash recovery: everything one
:class:`~repro.cluster.shard.ServerShard` needs to resume exactly where
it was — server-segment weights, the **full** optimizer state (moment
buffers included, via the extended ``Optimizer.state_dict``), any live
module RNG streams, the per-sync counters that weight the next
synchronization, and a drop-accounting ledger (the shard-side queue
counters) so a restore rejoins the cluster-wide invariant
``notified == queue + transport - nack - sync + failover``.

A :class:`RunCheckpoint` extends that to the whole deployment: every
shard, every client, the coordinator's assignment and sync snapshot, the
engine clock/statistics, the transport log, every link's RNG stream
position and counters, and the failure model's progress.  At an epoch
boundary the engine is quiescent (no in-flight messages, queues drained),
so this is a *replay-exact* restore point: a fresh trainer rebuilt from a
``RunCheckpoint`` continues the run bit-for-bit.

Both formats convert to a flat ``(arrays, meta)`` payload — arrays for
the npz path, a JSON-able ``meta`` for everything scalar — which is what
the :mod:`repro.state.store` backends persist.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..nn.serialization import (
    flatten_optimizer_state,
    pack_rng_state,
    restore_rng_state,
    unflatten_optimizer_state,
)

__all__ = [
    "ShardCheckpoint",
    "ClientCheckpoint",
    "RunCheckpoint",
    "queue_counter_state",
    "restore_queue_counters",
    "module_rng_states",
    "restore_module_rng_states",
]


# --------------------------------------------------------------------------- #
# Small capture/restore helpers shared by the snapshot formats
# --------------------------------------------------------------------------- #
def queue_counter_state(queue: Any) -> Dict[str, Any]:
    """Capture a :class:`ParameterQueue`'s statistics and policy feedback.

    The queue itself is empty at every capture point the engine uses
    (checkpoints fire between steps; run checkpoints at epoch
    boundaries), so only the counters need to travel: the drop ledger,
    waiting times, per-system processed samples and — for the stateful
    scheduling policies — the feedback the next selection depends on.
    """
    policy = queue.policy
    policy_state: Dict[str, Any] = {}
    if hasattr(policy, "_last_served"):  # RoundRobinPolicy
        policy_state["last_served"] = policy._last_served
    if hasattr(policy, "_processed_samples"):  # WeightedFairPolicy
        policy_state["processed_samples"] = dict(policy._processed_samples)
    return {
        "dropped": queue.dropped,
        "waiting_times": [float(value) for value in queue._waiting_times],
        "processed_per_system": {
            int(system): int(count)
            for system, count in queue.processed_per_system().items()
        },
        "policy": policy_state,
    }


def restore_queue_counters(queue: Any, state: Dict[str, Any]) -> None:
    """Reinstall counters captured by :func:`queue_counter_state`."""
    queue._dropped = int(state["dropped"])
    queue._waiting_times = [float(value) for value in state["waiting_times"]]
    queue._processed_per_system.clear()
    for system, count in state["processed_per_system"].items():
        queue._processed_per_system[int(system)] = int(count)
    policy_state = state.get("policy", {})
    policy = queue.policy
    if "last_served" in policy_state and hasattr(policy, "_last_served"):
        policy._last_served = policy_state["last_served"]
    if "processed_samples" in policy_state and hasattr(policy, "_processed_samples"):
        policy._processed_samples.clear()
        for system, count in policy_state["processed_samples"].items():
            policy._processed_samples[int(system)] = int(count)


def module_rng_states(module: Any) -> Dict[str, np.ndarray]:
    """Stream positions of any live generators inside a module tree.

    Walks the module graph in registration order and packs every
    ``_rng`` generator found (e.g. :class:`Dropout`'s), keyed by walk
    index — the rebuilt model walks identically, so restore is
    positional.
    """
    states: Dict[str, np.ndarray] = {}
    for index, submodule in enumerate(module.modules()):
        rng = getattr(submodule, "_rng", None)
        if isinstance(rng, np.random.Generator):
            states[str(index)] = pack_rng_state(rng)
    return states


def restore_module_rng_states(module: Any, states: Dict[str, np.ndarray]) -> None:
    """Rewind a module tree's generators captured by :func:`module_rng_states`."""
    for index, submodule in enumerate(module.modules()):
        packed = states.get(str(index))
        if packed is None:
            continue
        rng = getattr(submodule, "_rng", None)
        if isinstance(rng, np.random.Generator):
            restore_rng_state(rng, np.asarray(packed, dtype=np.uint8))


def _copy_weights(weights: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    return {name: np.array(value, copy=True) for name, value in weights.items()}


# --------------------------------------------------------------------------- #
# Per-shard snapshot
# --------------------------------------------------------------------------- #
@dataclass
class ShardCheckpoint:
    """Crash-consistent snapshot of one server shard."""

    shard_id: int
    sim_time: float
    round_index: int
    generation: int
    weights: Dict[str, np.ndarray]
    optimizer_state: Dict[str, Any]
    samples_since_sync: int
    steps_since_sync: int
    syncs_applied: int
    batches_processed: int
    samples_processed: int
    #: Drop-accounting ledger: the shard-side queue counters
    #: (:func:`queue_counter_state`) whose restore rejoins the
    #: cluster-wide drop invariant.
    ledger: Dict[str, Any] = field(default_factory=dict)
    health: Dict[str, Any] = field(default_factory=dict)
    rpo: Dict[str, Any] = field(default_factory=dict)
    rng: Dict[str, np.ndarray] = field(default_factory=dict)

    @classmethod
    def capture(cls, shard: Any, *, sim_time: float, round_index: int = -1,
                generation: int = 0) -> "ShardCheckpoint":
        """Snapshot ``shard`` at simulated time ``sim_time`` (read-only)."""
        return cls(
            shard_id=shard.shard_id,
            sim_time=float(sim_time),
            round_index=int(round_index),
            generation=int(generation),
            weights=shard.weights_snapshot(),
            optimizer_state=shard.server.optimizer.state_dict(),
            samples_since_sync=shard.samples_since_sync,
            steps_since_sync=shard.steps_since_sync,
            syncs_applied=shard.syncs_applied,
            batches_processed=shard.batches_processed,
            samples_processed=shard.samples_processed,
            ledger=queue_counter_state(shard.queue),
            health={
                "healthy": shard.healthy,
                "crashes": shard.crashes,
                "recoveries": shard.recoveries,
                "down_since": shard.down_since,
                "downtime_s": shard.downtime_s,
            },
            rpo=shard.rpo_state(),
            rng=module_rng_states(shard.server.model),
        )

    def restore(self, shard: Any, *, include_counters: bool = False) -> None:
        """Reinstall this snapshot onto ``shard``.

        The default (failover recovery) restores the *training* state
        only — weights, optimizer moments, module RNG streams and the
        per-sync counters — and leaves the monotone monitoring counters
        (processed totals, drop ledger, crash history) at their live
        values, because the work and drops that happened before the
        crash really did happen.  ``include_counters=True`` (whole-run
        restore into a freshly built trainer) reinstates those too.
        """
        shard.server.load_state_dict(self.weights)
        shard.server.optimizer.load_state_dict(
            copy.deepcopy(self.optimizer_state)
        )
        restore_module_rng_states(shard.server.model, self.rng)
        shard.samples_since_sync = int(self.samples_since_sync)
        shard.steps_since_sync = int(self.steps_since_sync)
        if not include_counters:
            return
        shard.syncs_applied = int(self.syncs_applied)
        shard.server.batches_processed = int(self.batches_processed)
        shard.server.samples_processed = int(self.samples_processed)
        restore_queue_counters(shard.queue, self.ledger)
        shard.healthy = bool(self.health["healthy"])
        shard.crashes = int(self.health["crashes"])
        shard.recoveries = int(self.health["recoveries"])
        down_since = self.health["down_since"]
        shard.down_since = None if down_since is None else float(down_since)
        shard.downtime_s = float(self.health["downtime_s"])
        shard.load_rpo_state(self.rpo)

    # ------------------------------------------------------------------ #
    # Flat payload for the persistent stores
    # ------------------------------------------------------------------ #
    def to_payload(self) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
        """Flatten into ``(arrays, meta)`` for a store backend."""
        arrays: Dict[str, np.ndarray] = {}
        for name, value in self.weights.items():
            arrays[f"weights::{name}"] = np.asarray(value)
        for key, value in flatten_optimizer_state(self.optimizer_state).items():
            arrays[f"optim::{key}"] = value
        for key, packed in self.rng.items():
            arrays[f"rng::{key}"] = np.asarray(packed, dtype=np.uint8)
        meta = {
            "shard_id": self.shard_id,
            "sim_time": self.sim_time,
            "round_index": self.round_index,
            "generation": self.generation,
            "samples_since_sync": self.samples_since_sync,
            "steps_since_sync": self.steps_since_sync,
            "syncs_applied": self.syncs_applied,
            "batches_processed": self.batches_processed,
            "samples_processed": self.samples_processed,
            "ledger": self.ledger,
            "health": self.health,
            "rpo": self.rpo,
            "weight_names": list(self.weights.keys()),
        }
        return arrays, meta

    @classmethod
    def from_payload(cls, arrays: Dict[str, np.ndarray],
                     meta: Dict[str, Any]) -> "ShardCheckpoint":
        """Rebuild a snapshot from a store payload."""
        weights = {name: np.asarray(arrays[f"weights::{name}"])
                   for name in meta["weight_names"]}
        optim_flat = {key[len("optim::"):]: value for key, value in arrays.items()
                      if key.startswith("optim::")}
        rng = {key[len("rng::"):]: np.asarray(value, dtype=np.uint8)
               for key, value in arrays.items() if key.startswith("rng::")}
        ledger = dict(meta["ledger"])
        # JSON round-trips stringify integer dict keys; normalize back.
        ledger["processed_per_system"] = {
            int(system): int(count)
            for system, count in ledger.get("processed_per_system", {}).items()
        }
        policy = dict(ledger.get("policy", {}))
        if "processed_samples" in policy:
            policy["processed_samples"] = {
                int(system): int(count)
                for system, count in policy["processed_samples"].items()
            }
        ledger["policy"] = policy
        return cls(
            shard_id=int(meta["shard_id"]),
            sim_time=float(meta["sim_time"]),
            round_index=int(meta["round_index"]),
            generation=int(meta["generation"]),
            weights=weights,
            optimizer_state=unflatten_optimizer_state(optim_flat),
            samples_since_sync=int(meta["samples_since_sync"]),
            steps_since_sync=int(meta["steps_since_sync"]),
            syncs_applied=int(meta["syncs_applied"]),
            batches_processed=int(meta["batches_processed"]),
            samples_processed=int(meta["samples_processed"]),
            ledger=ledger,
            health=dict(meta["health"]),
            rpo=dict(meta["rpo"]),
            rng=rng,
        )


# --------------------------------------------------------------------------- #
# Per-client snapshot
# --------------------------------------------------------------------------- #
@dataclass
class ClientCheckpoint:
    """Snapshot of one end-system's segment, optimizer and counters."""

    system_id: int
    weights: Dict[str, np.ndarray]
    optimizer_state: Optional[Dict[str, Any]]
    next_batch_id: int
    samples_seen: int
    updates_applied: int
    drops_notified: int
    rng: Dict[str, np.ndarray] = field(default_factory=dict)

    @classmethod
    def capture(cls, end_system: Any) -> "ClientCheckpoint":
        optimizer = end_system.optimizer
        return cls(
            system_id=end_system.system_id,
            weights=_copy_weights(end_system.state_dict()),
            optimizer_state=None if optimizer is None else optimizer.state_dict(),
            next_batch_id=end_system._next_batch_id,
            samples_seen=end_system.samples_seen,
            updates_applied=end_system.updates_applied,
            drops_notified=end_system.drops_notified,
            rng=module_rng_states(end_system.model),
        )

    def restore(self, end_system: Any) -> None:
        end_system.load_state_dict(self.weights)
        if self.optimizer_state is not None and end_system.optimizer is not None:
            end_system.optimizer.load_state_dict(copy.deepcopy(self.optimizer_state))
        restore_module_rng_states(end_system.model, self.rng)
        end_system._next_batch_id = int(self.next_batch_id)
        end_system.samples_seen = int(self.samples_seen)
        end_system.updates_applied = int(self.updates_applied)
        end_system.drops_notified = int(self.drops_notified)

    def to_payload(self) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
        arrays: Dict[str, np.ndarray] = {}
        for name, value in self.weights.items():
            arrays[f"weights::{name}"] = np.asarray(value)
        if self.optimizer_state is not None:
            for key, value in flatten_optimizer_state(self.optimizer_state).items():
                arrays[f"optim::{key}"] = value
        for key, packed in self.rng.items():
            arrays[f"rng::{key}"] = np.asarray(packed, dtype=np.uint8)
        meta = {
            "system_id": self.system_id,
            "next_batch_id": self.next_batch_id,
            "samples_seen": self.samples_seen,
            "updates_applied": self.updates_applied,
            "drops_notified": self.drops_notified,
            "has_optimizer": self.optimizer_state is not None,
            "weight_names": list(self.weights.keys()),
        }
        return arrays, meta

    @classmethod
    def from_payload(cls, arrays: Dict[str, np.ndarray],
                     meta: Dict[str, Any]) -> "ClientCheckpoint":
        weights = {name: np.asarray(arrays[f"weights::{name}"])
                   for name in meta["weight_names"]}
        optimizer_state = None
        if meta["has_optimizer"]:
            optim_flat = {key[len("optim::"):]: value for key, value in arrays.items()
                          if key.startswith("optim::")}
            optimizer_state = unflatten_optimizer_state(optim_flat)
        rng = {key[len("rng::"):]: np.asarray(value, dtype=np.uint8)
               for key, value in arrays.items() if key.startswith("rng::")}
        return cls(
            system_id=int(meta["system_id"]),
            weights=weights,
            optimizer_state=optimizer_state,
            next_batch_id=int(meta["next_batch_id"]),
            samples_seen=int(meta["samples_seen"]),
            updates_applied=int(meta["updates_applied"]),
            drops_notified=int(meta["drops_notified"]),
            rng=rng,
        )


# --------------------------------------------------------------------------- #
# Whole-run snapshot (coordinator restart)
# --------------------------------------------------------------------------- #
@dataclass
class RunCheckpoint:
    """Replay-exact epoch-boundary snapshot of the entire deployment.

    ``epoch`` counts *completed* epochs: a restore resumes training at
    that epoch index.  ``link_states`` maps a link key (``"up::<node>"``,
    ``"down::<node>"`` or ``"sync::<a>::<b>"``) to that link's RNG
    stream position and traffic counters; ``rng_streams`` carries any
    other named generator positions (the failure model's per-shard
    streams).  The trainer owns capture/restore — this class is the
    container plus the flat payload conversion the stores persist.
    """

    epoch: int
    engine_clock: float
    config: Dict[str, Any]
    engine_stats: Dict[str, Any]
    shards: List[ShardCheckpoint]
    clients: List[ClientCheckpoint]
    assignment: Dict[int, int]
    original_assignment: Dict[int, int]
    last_sync_snapshot: Optional[Dict[str, np.ndarray]]
    last_sync_time_s: Optional[float]
    syncs_completed: int
    node_health: Dict[str, bool]
    traffic: Dict[str, Any]
    link_states: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    rng_streams: Dict[str, np.ndarray] = field(default_factory=dict)
    failure_state: Optional[Dict[str, Any]] = None
    #: Fault-plan timeline position (``FaultPlan.state_dict``) and the
    #: per-message chaos stream positions (``MessageChaos.state_dict``);
    #: ``None`` when the corresponding chaos mechanism is off.
    chaos_state: Optional[Dict[str, Any]] = None
    message_chaos_state: Optional[Dict[str, Any]] = None
    #: Registry-owned obs instrument state (the queue-wait / retry
    #: histograms — ``MetricsRegistry.instruments_state``): without it a
    #: resumed run's metric rows would restart those series from zero
    #: instead of continuing the crashed run's.  ``None`` with obs off.
    obs_instruments: Optional[List[Dict[str, Any]]] = None

    def to_payload(self) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
        arrays: Dict[str, np.ndarray] = {}
        shard_metas = []
        for index, shard in enumerate(self.shards):
            shard_arrays, shard_meta = shard.to_payload()
            for key, value in shard_arrays.items():
                arrays[f"shard{index}::{key}"] = value
            shard_metas.append(shard_meta)
        client_metas = []
        for index, client in enumerate(self.clients):
            client_arrays, client_meta = client.to_payload()
            for key, value in client_arrays.items():
                arrays[f"client{index}::{key}"] = value
            client_metas.append(client_meta)
        if self.last_sync_snapshot is not None:
            for name, value in self.last_sync_snapshot.items():
                arrays[f"sync_snapshot::{name}"] = np.asarray(value)
        arrays["transit_times"] = np.asarray(
            self.traffic.get("transit_times", []), dtype=np.float64
        )
        link_meta: Dict[str, Dict[str, Any]] = {}
        for key, state in self.link_states.items():
            arrays[f"link_rng::{key}"] = np.asarray(state["rng"], dtype=np.uint8)
            link_meta[key] = {
                name: value for name, value in state.items() if name != "rng"
            }
        for key, packed in self.rng_streams.items():
            arrays[f"stream::{key}"] = np.asarray(packed, dtype=np.uint8)
        traffic_meta = {key: value for key, value in self.traffic.items()
                        if key != "transit_times"}
        meta = {
            "epoch": self.epoch,
            "engine_clock": self.engine_clock,
            "config": self.config,
            "engine_stats": self.engine_stats,
            "shards": shard_metas,
            "clients": client_metas,
            "assignment": {str(k): int(v) for k, v in self.assignment.items()},
            "original_assignment": {
                str(k): int(v) for k, v in self.original_assignment.items()
            },
            "has_sync_snapshot": self.last_sync_snapshot is not None,
            "sync_snapshot_names": (
                list(self.last_sync_snapshot.keys())
                if self.last_sync_snapshot is not None else []
            ),
            "last_sync_time_s": self.last_sync_time_s,
            "syncs_completed": self.syncs_completed,
            "node_health": self.node_health,
            "traffic": traffic_meta,
            "links": link_meta,
            "failure_state": self.failure_state,
            "chaos_state": self.chaos_state,
            "message_chaos_state": self.message_chaos_state,
            "obs_instruments": self.obs_instruments,
        }
        return arrays, meta

    @classmethod
    def from_payload(cls, arrays: Dict[str, np.ndarray],
                     meta: Dict[str, Any]) -> "RunCheckpoint":
        def sub_arrays(prefix: str) -> Dict[str, np.ndarray]:
            return {key[len(prefix):]: value for key, value in arrays.items()
                    if key.startswith(prefix)}

        shards = [
            ShardCheckpoint.from_payload(sub_arrays(f"shard{index}::"), shard_meta)
            for index, shard_meta in enumerate(meta["shards"])
        ]
        clients = [
            ClientCheckpoint.from_payload(sub_arrays(f"client{index}::"), client_meta)
            for index, client_meta in enumerate(meta["clients"])
        ]
        last_sync_snapshot = None
        if meta["has_sync_snapshot"]:
            last_sync_snapshot = {
                name: np.asarray(arrays[f"sync_snapshot::{name}"])
                for name in meta["sync_snapshot_names"]
            }
        traffic = dict(meta["traffic"])
        traffic["transit_times"] = [
            float(value) for value in np.asarray(arrays.get("transit_times", []))
        ]
        link_states: Dict[str, Dict[str, Any]] = {}
        for key, counters in meta["links"].items():
            state = dict(counters)
            state["rng"] = np.asarray(arrays[f"link_rng::{key}"], dtype=np.uint8)
            link_states[key] = state
        rng_streams = {key[len("stream::"):]: np.asarray(value, dtype=np.uint8)
                       for key, value in arrays.items()
                       if key.startswith("stream::")}
        return cls(
            epoch=int(meta["epoch"]),
            engine_clock=float(meta["engine_clock"]),
            config=dict(meta["config"]),
            engine_stats=dict(meta["engine_stats"]),
            shards=shards,
            clients=clients,
            assignment={int(k): int(v) for k, v in meta["assignment"].items()},
            original_assignment={
                int(k): int(v) for k, v in meta["original_assignment"].items()
            },
            last_sync_snapshot=last_sync_snapshot,
            last_sync_time_s=meta["last_sync_time_s"],
            syncs_completed=int(meta["syncs_completed"]),
            node_health=dict(meta["node_health"]),
            traffic=traffic,
            link_states=link_states,
            rng_streams=rng_streams,
            failure_state=meta["failure_state"],
            # ``.get``: run checkpoints written before the chaos plane
            # existed simply restore with chaos off.
            chaos_state=meta.get("chaos_state"),
            message_chaos_state=meta.get("message_chaos_state"),
            # ``.get``: pre-obs-checkpoint stores resume with fresh streams.
            obs_instruments=meta.get("obs_instruments"),
        )
