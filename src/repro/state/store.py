"""Checkpoint stores: the durability layer under the snapshot formats.

Two backends share one record-oriented API.  A record is
``(kind, scope, version, sim_time, arrays, meta)`` — ``kind`` is
``"shard"`` or ``"run"``, ``scope`` identifies the object (``"shard-0"``,
``"run"``), ``version`` is a store-wide monotone counter, ``arrays`` is
the flat npz payload and ``meta`` a JSON-able dict.

:class:`MemoryCheckpointStore` is the in-process reference: deep copies
in, deep copies out, nothing shared with the live objects.

:class:`FileCheckpointStore` is the durable backend.  Every write is
crash-consistent:

1. the payload is written to a ``*.tmp`` file in the store directory,
2. the temp file is atomically renamed onto its final name
   (``os.replace``), and only then
3. the versioned ``manifest.json`` — also written temp-then-rename — is
   updated to reference the new file together with its CRC-32 checksum.

A crash at any point leaves either the old manifest (the new payload is
an unreferenced orphan) or the new one (the payload rename already
happened), never a manifest pointing at a half-written file.  Loads walk
the manifest newest-first and verify each candidate's checksum, falling
back to the previous intact checkpoint when the newest is truncated or
corrupted; stale ``*.tmp`` droppings are ignored by loads and swept by
the next save.
"""

from __future__ import annotations

import copy
import json
import logging
import os
import time
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..nn.serialization import load_state_dict, save_state_dict
from .checkpoint import RunCheckpoint, ShardCheckpoint

__all__ = ["CheckpointStore", "MemoryCheckpointStore", "FileCheckpointStore"]

logger = logging.getLogger(__name__)

_RUN_SCOPE = "run"


class CheckpointStore:
    """Abstract store API plus the typed convenience layer.

    Subclasses implement the record-level primitives
    (:meth:`_write_record`, :meth:`_read_latest`, :meth:`versions`); the
    typed helpers (``save_shard``/``latest_shard``/``save_run``/
    ``latest_run``) and the write-overhead accounting the experiments
    report live here so every backend measures identically.
    """

    def __init__(self) -> None:
        #: Write-overhead accounting (surfaced by history ``queue_stats``
        #: and the ``server_failover`` RPO-vs-overhead sweep).
        self.checkpoints_written = 0
        self.bytes_written = 0
        self.write_wall_s = 0.0

    # ------------------------------------------------------------------ #
    # Record-level primitives (backend-specific)
    # ------------------------------------------------------------------ #
    def _write_record(self, kind: str, scope: str, sim_time: float,
                      arrays: Dict[str, np.ndarray],
                      meta: Dict[str, Any]) -> Tuple[int, int]:
        """Persist one record; return ``(version, payload_bytes)``."""
        raise NotImplementedError

    def _read_latest(self, kind: str, scope: str
                     ) -> Optional[Tuple[Dict[str, np.ndarray], Dict[str, Any]]]:
        """Newest intact record for ``(kind, scope)``, or ``None``."""
        raise NotImplementedError

    def versions(self, kind: Optional[str] = None,
                 scope: Optional[str] = None) -> List[Dict[str, Any]]:
        """Metadata of stored records (oldest first), optionally filtered."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Shared save path (timing + accounting)
    # ------------------------------------------------------------------ #
    def save(self, kind: str, scope: str, sim_time: float,
             arrays: Dict[str, np.ndarray], meta: Dict[str, Any]) -> int:
        """Persist a record and account the write cost; returns its version."""
        started = time.perf_counter()
        version, payload_bytes = self._write_record(kind, scope, sim_time,
                                                    arrays, meta)
        self.write_wall_s += time.perf_counter() - started
        self.checkpoints_written += 1
        self.bytes_written += payload_bytes
        return version

    # ------------------------------------------------------------------ #
    # Typed convenience layer
    # ------------------------------------------------------------------ #
    def save_shard(self, checkpoint: ShardCheckpoint) -> int:
        arrays, meta = checkpoint.to_payload()
        return self.save("shard", f"shard-{checkpoint.shard_id}",
                         checkpoint.sim_time, arrays, meta)

    def latest_shard(self, shard_id: int) -> Optional[ShardCheckpoint]:
        record = self._read_latest("shard", f"shard-{shard_id}")
        if record is None:
            return None
        arrays, meta = record
        return ShardCheckpoint.from_payload(arrays, meta)

    def save_run(self, checkpoint: RunCheckpoint) -> int:
        arrays, meta = checkpoint.to_payload()
        return self.save("run", _RUN_SCOPE, checkpoint.engine_clock, arrays, meta)

    def latest_run(self) -> Optional[RunCheckpoint]:
        record = self._read_latest("run", _RUN_SCOPE)
        if record is None:
            return None
        arrays, meta = record
        return RunCheckpoint.from_payload(arrays, meta)


class MemoryCheckpointStore(CheckpointStore):
    """In-memory reference backend: deep copies, no shared buffers."""

    def __init__(self, keep: Optional[int] = None) -> None:
        super().__init__()
        if keep is not None and keep <= 0:
            raise ValueError(f"keep must be positive (or None), got {keep}")
        self.keep = keep
        self._records: Dict[Tuple[str, str], List[Dict[str, Any]]] = {}
        self._next_version = 1

    def _write_record(self, kind: str, scope: str, sim_time: float,
                      arrays: Dict[str, np.ndarray],
                      meta: Dict[str, Any]) -> Tuple[int, int]:
        version = self._next_version
        self._next_version += 1
        stored_arrays = {key: np.array(value, copy=True)
                         for key, value in arrays.items()}
        payload_bytes = sum(value.nbytes for value in stored_arrays.values())
        records = self._records.setdefault((kind, scope), [])
        records.append({
            "version": version,
            "kind": kind,
            "scope": scope,
            "sim_time": float(sim_time),
            "arrays": stored_arrays,
            "meta": copy.deepcopy(meta),
        })
        if self.keep is not None and len(records) > self.keep:
            del records[: len(records) - self.keep]
        return version, payload_bytes

    def _read_latest(self, kind: str, scope: str
                     ) -> Optional[Tuple[Dict[str, np.ndarray], Dict[str, Any]]]:
        records = self._records.get((kind, scope))
        if not records:
            return None
        record = records[-1]
        arrays = {key: np.array(value, copy=True)
                  for key, value in record["arrays"].items()}
        return arrays, copy.deepcopy(record["meta"])

    def versions(self, kind: Optional[str] = None,
                 scope: Optional[str] = None) -> List[Dict[str, Any]]:
        rows: List[Dict[str, Any]] = []
        for records in self._records.values():
            for record in records:
                if kind is not None and record["kind"] != kind:
                    continue
                if scope is not None and record["scope"] != scope:
                    continue
                rows.append({key: record[key]
                             for key in ("version", "kind", "scope", "sim_time")})
        return sorted(rows, key=lambda row: row["version"])


class FileCheckpointStore(CheckpointStore):
    """Durable npz-per-record backend with a versioned JSON manifest."""

    MANIFEST_NAME = "manifest.json"
    FORMAT = 1

    def __init__(self, directory: Union[str, Path],
                 keep: Optional[int] = None) -> None:
        super().__init__()
        if keep is not None and keep <= 0:
            raise ValueError(f"keep must be positive (or None), got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self._manifest = self._load_manifest()

    # ------------------------------------------------------------------ #
    # Manifest handling
    # ------------------------------------------------------------------ #
    @property
    def _manifest_path(self) -> Path:
        return self.directory / self.MANIFEST_NAME

    def _load_manifest(self) -> Dict[str, Any]:
        empty: Dict[str, Any] = {"format": self.FORMAT, "next_version": 1, "records": []}
        path = self._manifest_path
        if not path.exists():
            return empty
        try:
            manifest = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            logger.warning("unreadable checkpoint manifest at %s; starting fresh", path)
            return empty
        if manifest.get("format") != self.FORMAT:
            raise ValueError(
                f"checkpoint store at {self.directory} uses format "
                f"{manifest.get('format')!r}, expected {self.FORMAT}"
            )
        return manifest

    def _write_manifest(self) -> None:
        tmp = self._manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(self._manifest, indent=2))
        os.replace(tmp, self._manifest_path)

    # ------------------------------------------------------------------ #
    # Record primitives
    # ------------------------------------------------------------------ #
    def _write_record(self, kind: str, scope: str, sim_time: float,
                      arrays: Dict[str, np.ndarray],
                      meta: Dict[str, Any]) -> Tuple[int, int]:
        self._sweep_stale_temps()
        version = int(self._manifest["next_version"])
        self._manifest["next_version"] = version + 1
        file_name = f"ckpt_{version:06d}_{kind}_{scope}.npz"
        final_path = self.directory / file_name
        temp_path = self.directory / (file_name + ".tmp")
        save_state_dict(arrays, temp_path)
        payload = temp_path.read_bytes()
        checksum = zlib.crc32(payload) & 0xFFFFFFFF
        # Payload first, manifest second: a crash in between leaves an
        # orphan file the manifest never references — not a manifest
        # entry pointing at garbage.
        os.replace(temp_path, final_path)
        self._manifest["records"].append({
            "version": version,
            "kind": kind,
            "scope": scope,
            "sim_time": float(sim_time),
            "file": file_name,
            "checksum": checksum,
            "meta": meta,
        })
        self._prune(kind, scope)
        self._write_manifest()
        return version, len(payload)

    def _read_latest(self, kind: str, scope: str
                     ) -> Optional[Tuple[Dict[str, np.ndarray], Dict[str, Any]]]:
        candidates = [record for record in self._manifest["records"]
                      if record["kind"] == kind and record["scope"] == scope]
        for record in sorted(candidates, key=lambda r: r["version"], reverse=True):
            path = self.directory / record["file"]
            if not self._intact(path, record["checksum"]):
                logger.warning(
                    "checkpoint %s (version %s) is missing or corrupted; "
                    "falling back to the previous intact checkpoint",
                    path, record["version"],
                )
                continue
            try:
                arrays = load_state_dict(path)
            except Exception:  # pragma: no cover - checksum already vetted
                logger.warning("checkpoint %s failed to parse; falling back", path)
                continue
            return arrays, copy.deepcopy(record["meta"])
        return None

    def versions(self, kind: Optional[str] = None,
                 scope: Optional[str] = None) -> List[Dict[str, Any]]:
        rows: List[Dict[str, Any]] = []
        for record in self._manifest["records"]:
            if kind is not None and record["kind"] != kind:
                continue
            if scope is not None and record["scope"] != scope:
                continue
            rows.append({key: record[key]
                         for key in ("version", "kind", "scope", "sim_time", "file")})
        return sorted(rows, key=lambda row: row["version"])

    # ------------------------------------------------------------------ #
    # Durability helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _intact(path: Path, checksum: int) -> bool:
        try:
            payload = path.read_bytes()
        except OSError:
            return False
        return (zlib.crc32(payload) & 0xFFFFFFFF) == int(checksum)

    def _sweep_stale_temps(self) -> None:
        """Remove ``*.tmp`` droppings a killed writer left behind."""
        for stale in self.directory.glob("*.tmp"):
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    def _prune(self, kind: str, scope: str) -> None:
        """Enforce the per-scope retention bound (``keep`` newest records)."""
        if self.keep is None:
            return
        matching = [record for record in self._manifest["records"]
                    if record["kind"] == kind and record["scope"] == scope]
        excess = len(matching) - self.keep
        if excess <= 0:
            return
        doomed = sorted(matching, key=lambda r: r["version"])[:excess]
        doomed_versions = {record["version"] for record in doomed}
        for record in doomed:
            try:
                (self.directory / record["file"]).unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        self._manifest["records"] = [
            record for record in self._manifest["records"]
            if record["version"] not in doomed_versions
        ]
