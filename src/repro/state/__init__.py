"""Durable training state: checkpoint formats and checkpoint stores.

The durability subsystem ISSUE 6 adds on top of the fault-tolerant
cluster: :class:`ShardCheckpoint`/:class:`ClientCheckpoint`/
:class:`RunCheckpoint` are the snapshot formats (weights, full optimizer
state, RNG stream positions, counters and the drop-accounting ledger),
and :class:`CheckpointStore` is the persistence API with an in-memory
reference backend and a crash-consistent file backend (atomic
temp-then-rename writes, versioned manifest, checksum verification with
fallback to the previous intact checkpoint).

The :class:`~repro.core.engine.TrainingEngine` writes per-shard
checkpoints on a configurable cadence and prefers the newest intact one
at crash recovery; the trainer writes a :class:`RunCheckpoint` at every
epoch boundary, from which a coordinator restart resumes replay-exact.
"""

from .checkpoint import (
    ClientCheckpoint,
    RunCheckpoint,
    ShardCheckpoint,
    module_rng_states,
    queue_counter_state,
    restore_module_rng_states,
    restore_queue_counters,
)
from .store import CheckpointStore, FileCheckpointStore, MemoryCheckpointStore

__all__ = [
    "ShardCheckpoint",
    "ClientCheckpoint",
    "RunCheckpoint",
    "CheckpointStore",
    "MemoryCheckpointStore",
    "FileCheckpointStore",
    "queue_counter_state",
    "restore_queue_counters",
    "module_rng_states",
    "restore_module_rng_states",
]
