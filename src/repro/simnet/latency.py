"""Latency models for geo-distributed links.

The paper's Fig. 2 motivates the server-side scheduling queue with the
observation that an end-system "located very far from the centralized
server" delivers its parameters late or sparsely.  These models map a link
(or a pair of geographic coordinates) to a per-message one-way delay.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "GaussianLatency",
    "DistanceLatency",
    "great_circle_km",
]

EARTH_RADIUS_KM = 6371.0
# Signal propagation in optical fibre is roughly 2/3 of the speed of light.
FIBRE_KM_PER_SECOND = 200_000.0


def great_circle_km(coord_a: Tuple[float, float], coord_b: Tuple[float, float]) -> float:
    """Great-circle distance in kilometres between two (lat, lon) pairs in degrees."""
    lat1, lon1 = map(math.radians, coord_a)
    lat2, lon2 = map(math.radians, coord_b)
    delta_lat = lat2 - lat1
    delta_lon = lon2 - lon1
    a = math.sin(delta_lat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(delta_lon / 2) ** 2
    return 2 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))


class LatencyModel:
    """Base class: produces a one-way delay sample per message."""

    def sample(self, rng: Optional[np.random.Generator] = None) -> float:
        """Return one delay sample in seconds."""
        raise NotImplementedError

    def mean(self) -> float:
        """Expected delay in seconds (used by deterministic schedulers)."""
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Fixed delay for every message."""

    def __init__(self, delay_s: float) -> None:
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        self.delay_s = float(delay_s)

    def sample(self, rng: Optional[np.random.Generator] = None) -> float:
        return self.delay_s

    def mean(self) -> float:
        return self.delay_s

    def __repr__(self) -> str:
        return f"ConstantLatency({self.delay_s * 1e3:.1f} ms)"


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low_s, high_s]``."""

    def __init__(self, low_s: float, high_s: float) -> None:
        if low_s < 0 or high_s < low_s:
            raise ValueError("require 0 <= low_s <= high_s")
        self.low_s = float(low_s)
        self.high_s = float(high_s)

    def sample(self, rng: Optional[np.random.Generator] = None) -> float:
        rng = rng if rng is not None else np.random.default_rng()  # repro-lint: ignore[RL002] -- seeded-rng callers are the simulated path; bare default is interactive convenience
        return float(rng.uniform(self.low_s, self.high_s))

    def mean(self) -> float:
        return (self.low_s + self.high_s) / 2.0

    def __repr__(self) -> str:
        return f"UniformLatency([{self.low_s * 1e3:.1f}, {self.high_s * 1e3:.1f}] ms)"


class GaussianLatency(LatencyModel):
    """Gaussian delay (truncated at a configurable floor)."""

    def __init__(self, mean_s: float, std_s: float, floor_s: float = 1e-4) -> None:
        if mean_s < 0 or std_s < 0 or floor_s < 0:
            raise ValueError("latency parameters must be non-negative")
        self.mean_s = float(mean_s)
        self.std_s = float(std_s)
        self.floor_s = float(floor_s)

    def sample(self, rng: Optional[np.random.Generator] = None) -> float:
        rng = rng if rng is not None else np.random.default_rng()  # repro-lint: ignore[RL002] -- seeded-rng callers are the simulated path; bare default is interactive convenience
        return float(max(self.floor_s, rng.normal(self.mean_s, self.std_s)))

    def mean(self) -> float:
        return self.mean_s

    def __repr__(self) -> str:
        return f"GaussianLatency({self.mean_s * 1e3:.1f} ± {self.std_s * 1e3:.1f} ms)"


class DistanceLatency(LatencyModel):
    """Propagation delay derived from geographic distance plus jitter.

    ``delay = distance / fibre_speed * path_stretch + base + jitter`` where
    ``path_stretch`` accounts for the fact that fibre routes are longer
    than the great-circle path.
    """

    def __init__(
        self,
        coord_a: Tuple[float, float],
        coord_b: Tuple[float, float],
        base_s: float = 0.001,
        path_stretch: float = 2.0,
        jitter_std_s: float = 0.002,
    ) -> None:
        if path_stretch < 1.0:
            raise ValueError("path_stretch must be at least 1.0")
        self.distance_km = great_circle_km(coord_a, coord_b)
        self.base_s = float(base_s)
        self.path_stretch = float(path_stretch)
        self.jitter_std_s = float(jitter_std_s)
        self.propagation_s = self.distance_km * self.path_stretch / FIBRE_KM_PER_SECOND

    def sample(self, rng: Optional[np.random.Generator] = None) -> float:
        rng = rng if rng is not None else np.random.default_rng()  # repro-lint: ignore[RL002] -- seeded-rng callers are the simulated path; bare default is interactive convenience
        jitter = abs(rng.normal(0.0, self.jitter_std_s)) if self.jitter_std_s else 0.0
        return self.base_s + self.propagation_s + jitter

    def mean(self) -> float:
        # E[|N(0, s)|] = s * sqrt(2/pi)
        expected_jitter = self.jitter_std_s * math.sqrt(2.0 / math.pi)
        return self.base_s + self.propagation_s + expected_jitter

    def __repr__(self) -> str:
        return (
            f"DistanceLatency({self.distance_km:.0f} km, "
            f"~{self.mean() * 1e3:.1f} ms)"
        )
