"""Discrete-event simulation engine.

The spatio-temporal split-learning server receives smashed activations
from geographically distributed end-systems; the paper notes that
parameters from far-away end-systems "arrive late or sparsely", which is
why a scheduling queue is needed.  This engine provides the simulated
clock and event ordering those experiments need.

The design is a classic event-calendar simulator: events carry a
timestamp, a priority (for deterministic tie-breaking) and a callback;
:meth:`Simulator.run` pops events in time order and executes them, letting
callbacks schedule further events.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

__all__ = ["Event", "Simulator"]


@dataclass(order=True)
class Event:
    """A scheduled occurrence in simulated time.

    Ordering is by ``(time, priority, sequence)`` so that simultaneous
    events execute in a deterministic order.
    """

    time: float
    priority: int
    sequence: int
    callback: Callable[["Simulator"], None] = field(compare=False)
    label: str = field(default="", compare=False)
    payload: Any = field(default=None, compare=False)
    cancelled: bool = field(default=False, compare=False)


class Simulator:
    """Event-calendar discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(2.0, lambda s: fired.append(s.now))
    >>> sim.schedule(1.0, lambda s: fired.append(s.now))
    >>> sim.run()
    >>> fired
    [1.0, 2.0]
    """

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._stop_requested = False

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still scheduled."""
        return len(self._queue)

    def schedule(
        self,
        time: float,
        callback: Callable[["Simulator"], None],
        priority: int = 0,
        label: str = "",
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` to run at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule an event at {time:.6f}s, simulation time is already "
                f"{self._now:.6f}s"
            )
        event = Event(time, priority, next(self._sequence), callback, label, payload)
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(
        self,
        delay: float,
        callback: Callable[["Simulator"], None],
        priority: int = 0,
        label: str = "",
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, callback, priority, label, payload)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Execute events in time order.

        Parameters
        ----------
        until:
            Stop once the next event's time exceeds this value (the clock
            is still advanced to ``until``).
        max_events:
            Stop after executing this many events (safety valve for
            self-perpetuating schedules).

        Returns
        -------
        The simulated time when the run stopped.
        """
        executed = 0
        while self._queue:
            if self._stop_requested:
                break
            if max_events is not None and executed >= max_events:
                break
            event = self._queue[0]
            if event.cancelled:
                # A cancelled event is discarded without running its
                # callback or advancing the clock — retracting a pending
                # timeout must not stretch the simulation's end time.
                heapq.heappop(self._queue)
                continue
            if until is not None and event.time > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._now = event.time
            event.callback(self)
            self._processed += 1
            executed += 1
        if until is not None and self._now < until and not self._stop_requested:
            self._now = until
        return self._now

    def cancel(self, event: Event) -> None:
        """Retract a scheduled event.

        The event stays in the calendar but is discarded when reached —
        its callback never runs and, unlike a fired no-op guard event,
        it does not advance the clock (a retracted timeout must not
        stretch the simulation's end time).  Cancelling an event that
        already ran is a no-op.
        """
        event.cancelled = True

    def stop(self) -> None:
        """Request that :meth:`run` return once the current event finishes.

        Used by callbacks that decide the simulation is over (e.g. a
        training run hitting its simulated-time budget) while later events
        are still on the calendar.  The stop is terminal for this
        simulation: the abandoned events stay queued for inspection
        (:attr:`pending_events`) until :meth:`reset` discards them along
        with the rest of the simulator state.
        """
        self._stop_requested = True

    @property
    def stopped(self) -> bool:
        """True once :meth:`stop` has been requested."""
        return self._stop_requested

    def reset(self) -> None:
        """Clear all pending events and reset the clock to zero."""
        # repro-lint: ignore[RL003] -- simulator event heap, not a drop-accounted queue
        self._queue.clear()
        self._now = 0.0
        self._processed = 0
        self._stop_requested = False
