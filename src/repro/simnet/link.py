"""Network links and messages.

A :class:`Link` models the uplink from an end-system to the centralized
server (and the downlink carrying the gradient back): a one-way delay
drawn from a :class:`~repro.simnet.latency.LatencyModel` plus a
serialization/transmission time proportional to the payload size.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from .latency import ConstantLatency, LatencyModel

__all__ = ["Message", "Link", "payload_bytes"]

_MESSAGE_COUNTER = itertools.count()


def payload_bytes(payload: Any) -> int:
    """Estimate the wire size of a payload.

    NumPy arrays report their buffer size; dictionaries/lists are summed
    recursively; everything else contributes a small fixed overhead.
    """
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, dict):
        return sum(payload_bytes(value) for value in payload.values()) + 64
    if isinstance(payload, (list, tuple)):
        return sum(payload_bytes(value) for value in payload) + 16
    if payload is None:
        return 0
    return 64


@dataclass
class Message:
    """A payload in flight between two nodes of the simulated network."""

    source: str
    destination: str
    payload: Any
    created_at: float = 0.0
    arrival_time: float = 0.0
    size_bytes: int = 0
    kind: str = "data"
    message_id: int = field(default_factory=lambda: next(_MESSAGE_COUNTER))
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def transit_time(self) -> float:
        """Seconds spent between creation and arrival."""
        return self.arrival_time - self.created_at


class Link:
    """Point-to-point link with latency and finite bandwidth.

    Parameters
    ----------
    latency:
        One-way delay model (defaults to 1 ms constant).
    bandwidth_bps:
        Link throughput in bits per second; ``None`` models an
        infinitely fast link (only propagation delay matters).
    drop_probability:
        Probability that a message is silently lost (used by the
        failure-injection tests; the trainer falls back to skipping the
        lost batch).
    direction:
        Free-form label (``"up"``/``"down"``/``"both"``) recorded in
        :meth:`stats` so asymmetric-link deployments can tell uplink and
        downlink traffic apart.
    """

    def __init__(
        self,
        latency: Optional[LatencyModel] = None,
        bandwidth_bps: Optional[float] = 100e6,
        drop_probability: float = 0.0,
        seed: Optional[int] = None,
        direction: str = "both",
    ) -> None:
        if bandwidth_bps is not None and bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive (or None for infinite)")
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")
        self.latency = latency if latency is not None else ConstantLatency(0.001)
        self.bandwidth_bps = bandwidth_bps
        self.drop_probability = drop_probability
        self.direction = direction
        #: Administrative state: a link incident to a crashed hub is
        #: marked down (``GeoTopology.set_node_up``) and loses every
        #: message deterministically until the hub recovers.
        self.up = True
        self._rng = np.random.default_rng(seed)
        self.messages_sent = 0
        self.messages_dropped = 0
        #: Subset of ``messages_dropped`` lost to administrative outages
        #: (node down / hub partition) rather than stochastic loss — the
        #: chaos tests use it to attribute flap- and partition-induced
        #: losses.
        self.admin_dropped = 0
        self.bytes_sent = 0

    def transfer_time(self, size_bytes: int) -> float:
        """Seconds needed to deliver ``size_bytes`` over this link (one sample)."""
        delay = self.latency.sample(self._rng)
        if self.bandwidth_bps is not None:
            delay += (size_bytes * 8.0) / self.bandwidth_bps
        return delay

    def expected_transfer_time(self, size_bytes: int) -> float:
        """Expected delivery time (no sampling), for deterministic planning."""
        delay = self.latency.mean()
        if self.bandwidth_bps is not None:
            delay += (size_bytes * 8.0) / self.bandwidth_bps
        return delay

    def send(self, source: str, destination: str, payload: Any, now: float,
             kind: str = "data") -> Optional[Message]:
        """Create a message and stamp its arrival time.

        Returns ``None`` when the message is dropped.
        """
        size = payload_bytes(payload)
        self.messages_sent += 1
        if not self.up:
            # One of the endpoints is down: the message is lost without
            # consuming a drop draw, so the loss RNG stream stays aligned
            # with an identically-seeded run that never saw the outage.
            self.messages_dropped += 1
            self.admin_dropped += 1
            return None
        if self.drop_probability and self._rng.random() < self.drop_probability:
            self.messages_dropped += 1
            return None
        self.bytes_sent += size
        message = Message(
            source=source,
            destination=destination,
            payload=payload,
            created_at=now,
            arrival_time=now + self.transfer_time(size),
            size_bytes=size,
            kind=kind,
        )
        return message

    def stats(self) -> Dict[str, float]:
        """Traffic counters for this link."""
        return {
            "direction": self.direction,
            "messages_sent": self.messages_sent,
            "messages_dropped": self.messages_dropped,
            "admin_dropped": self.admin_dropped,
            "bytes_sent": self.bytes_sent,
            "drop_rate": self.messages_dropped / max(self.messages_sent, 1),
        }

    def __repr__(self) -> str:
        bandwidth = "inf" if self.bandwidth_bps is None else f"{self.bandwidth_bps / 1e6:.0f} Mbps"
        return f"Link(latency={self.latency!r}, bandwidth={bandwidth}, direction={self.direction!r})"
