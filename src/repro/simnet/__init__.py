"""Discrete-event geo-distributed network simulation.

This package simulates the networking substrate the paper assumes:
end-systems (hospitals) spread across the globe, each connected to one
centralized server over a WAN link with non-trivial latency, limited
bandwidth and jitter.  The split-learning trainer uses it to stamp
arrival times on smashed-activation messages, which is what makes the
server-side parameter-scheduling queue (Fig. 2) meaningful.
"""

from .events import Event, Simulator
from .latency import (
    ConstantLatency,
    DistanceLatency,
    GaussianLatency,
    LatencyModel,
    UniformLatency,
    great_circle_km,
)
from .link import Link, Message, payload_bytes
from .topology import (
    WORLD_CITIES,
    GeoTopology,
    geo_star_topology,
    multi_hub_star_topology,
    star_topology,
)
from .transport import TrafficLog, Transport

__all__ = [
    "Event",
    "Simulator",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "GaussianLatency",
    "DistanceLatency",
    "great_circle_km",
    "Link",
    "Message",
    "payload_bytes",
    "GeoTopology",
    "star_topology",
    "geo_star_topology",
    "multi_hub_star_topology",
    "WORLD_CITIES",
    "Transport",
    "TrafficLog",
]
