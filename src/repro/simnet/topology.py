"""Geo-distributed topology of end-systems and the centralized server.

The paper's deployment scenario is a set of hospitals (end-systems)
spread across a region, all connected to one centralized server — a star
topology.  :class:`GeoTopology` stores the nodes, their coordinates and
the per-edge :class:`~repro.simnet.link.Link` objects in a
:mod:`networkx` graph, and provides factory helpers for the common
configurations used in the experiments.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from .latency import ConstantLatency, DistanceLatency, GaussianLatency, LatencyModel
from .link import Link

__all__ = [
    "GeoTopology",
    "star_topology",
    "geo_star_topology",
    "multi_hub_star_topology",
    "WORLD_CITIES",
]

# A handful of city coordinates (latitude, longitude) used to synthesize
# realistic geo-distributed deployments without external data.
WORLD_CITIES: Dict[str, Tuple[float, float]] = {
    "seoul": (37.5665, 126.9780),
    "tokyo": (35.6762, 139.6503),
    "singapore": (1.3521, 103.8198),
    "sydney": (-33.8688, 151.2093),
    "frankfurt": (50.1109, 8.6821),
    "london": (51.5074, -0.1278),
    "new_york": (40.7128, -74.0060),
    "san_francisco": (37.7749, -122.4194),
    "sao_paulo": (-23.5505, -46.6333),
    "mumbai": (19.0760, 72.8777),
    "johannesburg": (-26.2041, 28.0473),
    "toronto": (43.6532, -79.3832),
}


class GeoTopology:
    """Star (or arbitrary) topology of named nodes connected by links."""

    SERVER = "server"

    def __init__(self) -> None:
        self.graph = nx.Graph()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(self, name: str, coordinates: Optional[Tuple[float, float]] = None,
                 role: str = "end_system") -> None:
        """Add a node (``role`` is ``"server"`` or ``"end_system"``)."""
        if name in self.graph:
            raise ValueError(f"node {name!r} already exists")
        self.graph.add_node(name, coordinates=coordinates, role=role)

    def add_link(self, node_a: str, node_b: str, link: Link,
                 downlink: Optional[Link] = None) -> None:
        """Connect two existing nodes with a link.

        ``link`` carries traffic from ``node_a`` towards ``node_b`` (for an
        end-system/server pair: the uplink).  When ``downlink`` is given the
        reverse direction gets its own :class:`Link` — independent latency
        samples, drop draws and traffic counters — which is how the paper's
        WAN deployments behave: the gradient-return path is not the same
        queue as the activation-upload path.  Without it the single link is
        shared by both directions (the legacy symmetric behaviour).
        """
        for node in (node_a, node_b):
            if node not in self.graph:
                raise KeyError(f"unknown node {node!r}")
        # "source" records the edge's orientation so directional lookups
        # (uplink/downlink/inter-server) work regardless of the order the
        # undirected graph reports the endpoints in.
        self.graph.add_edge(node_a, node_b, link=link, downlink=downlink,
                            source=node_a)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def link(self, node_a: str, node_b: str) -> Link:
        """Return the link between two nodes."""
        try:
            return self.graph.edges[node_a, node_b]["link"]
        except KeyError:
            raise KeyError(f"no link between {node_a!r} and {node_b!r}") from None

    def nodes(self, role: Optional[str] = None) -> List[str]:
        """Return node names, optionally filtered by role."""
        if role is None:
            return list(self.graph.nodes)
        return [name for name, data in self.graph.nodes(data=True) if data.get("role") == role]

    @property
    def end_systems(self) -> List[str]:
        """Names of all end-system nodes."""
        return self.nodes(role="end_system")

    @property
    def server(self) -> str:
        """Name of the (single) server node."""
        servers = self.nodes(role="server")
        if len(servers) != 1:
            raise ValueError(f"expected exactly one server node, found {servers}")
        return servers[0]

    @property
    def servers(self) -> List[str]:
        """Names of all server (hub) nodes, in insertion order."""
        return self.nodes(role="server")

    def hub_of(self, end_system: str) -> str:
        """The server hub an end-system is connected to.

        Single-server stars return the one server; in a multi-hub
        topology every end-system must hang off exactly one hub.
        """
        if end_system not in self.graph:
            raise KeyError(f"unknown node {end_system!r}")
        hubs = [
            neighbor for neighbor in self.graph.neighbors(end_system)
            if self.graph.nodes[neighbor].get("role") == "server"
        ]
        if len(hubs) != 1:
            raise ValueError(
                f"end-system {end_system!r} is connected to {len(hubs)} server "
                f"hubs ({hubs}); expected exactly one"
            )
        return hubs[0]

    def coordinates(self, name: str) -> Optional[Tuple[float, float]]:
        """Coordinates of a node (``None`` if it has none)."""
        return self.graph.nodes[name].get("coordinates")

    # ------------------------------------------------------------------ #
    # Failure injection: node health and uplink rerouting
    # ------------------------------------------------------------------ #
    def is_up(self, name: str) -> bool:
        """Whether a node is administratively up (default ``True``)."""
        if name not in self.graph:
            raise KeyError(f"unknown node {name!r}")
        return self.graph.nodes[name].get("up", True)

    def _refresh_edge_health(self, node_a: str, node_b: str) -> None:
        data = self.graph.edges[node_a, node_b]
        status = (
            self.is_up(node_a)
            and self.is_up(node_b)
            and not data.get("partitioned", False)
        )
        data["link"].up = status
        downlink = data.get("downlink")
        if downlink is not None:
            downlink.up = status

    def set_node_up(self, name: str, up: bool = True) -> None:
        """Mark a node up or down, propagating to every incident link.

        A link is usable only while *both* endpoints are up, so crashing
        a server hub takes down the uplinks/downlinks of every end-system
        hanging off it plus its inter-server links — anything sent over
        them is deterministically lost (and counted on the link) until
        the hub recovers.
        """
        if name not in self.graph:
            raise KeyError(f"unknown node {name!r}")
        self.graph.nodes[name]["up"] = bool(up)
        for _, neighbor in self.graph.edges(name):
            self._refresh_edge_health(name, neighbor)

    def set_edge_partitioned(self, node_a: str, node_b: str,
                             partitioned: bool = True) -> None:
        """Administratively partition (or heal) the edge between two nodes.

        The chaos plane's hub↔hub partition: both directions of the edge
        deterministically lose everything while partitioned, independent
        of the endpoints' own health — and a node crash/recovery during
        the partition cannot accidentally heal it, because
        :meth:`_refresh_edge_health` folds the flag into every
        recomputation.
        """
        try:
            data = self.graph.edges[node_a, node_b]
        except KeyError:
            raise KeyError(f"no link between {node_a!r} and {node_b!r}") from None
        data["partitioned"] = bool(partitioned)
        self._refresh_edge_health(node_a, node_b)

    def is_edge_partitioned(self, node_a: str, node_b: str) -> bool:
        """Whether the edge between two nodes is administratively partitioned."""
        try:
            return bool(self.graph.edges[node_a, node_b].get("partitioned", False))
        except KeyError:
            raise KeyError(f"no link between {node_a!r} and {node_b!r}") from None

    def reroute_end_system(self, end_system: str, new_hub: str) -> None:
        """Reattach an end-system's access links to a different server hub.

        Failover for a crashed hub: the client keeps its physical access
        links (same latency model, RNG streams and traffic counters — the
        WAN last mile does not change), but they now terminate at
        ``new_hub``.  No-op when the end-system already hangs off
        ``new_hub``.
        """
        if self.graph.nodes.get(end_system, {}).get("role") != "end_system":
            raise KeyError(f"{end_system!r} is not an end-system node")
        if self.graph.nodes.get(new_hub, {}).get("role") != "server":
            raise KeyError(f"{new_hub!r} is not a server node")
        old_hub = self.hub_of(end_system)
        if old_hub == new_hub:
            return
        data = dict(self.graph.edges[end_system, old_hub])
        self.graph.remove_edge(end_system, old_hub)
        self.graph.add_edge(end_system, new_hub, link=data["link"],
                            downlink=data.get("downlink"), source=end_system)
        self._refresh_edge_health(end_system, new_hub)

    def _directional_link(self, src: str, dst: str) -> Link:
        """The link carrying traffic from ``src`` towards ``dst``."""
        try:
            data = self.graph.edges[src, dst]
        except KeyError:
            raise KeyError(f"no link between {src!r} and {dst!r}") from None
        if data.get("source", src) == src:
            return data["link"]
        downlink = data.get("downlink")
        return downlink if downlink is not None else data["link"]

    def uplink(self, end_system: str) -> Link:
        """Link from an end-system to its server hub."""
        return self._directional_link(end_system, self.hub_of(end_system))

    def downlink(self, end_system: str) -> Link:
        """Link from the server hub back to an end-system.

        Falls back to the uplink when the edge was registered without a
        dedicated downlink (symmetric legacy topologies).
        """
        return self._directional_link(self.hub_of(end_system), end_system)

    def inter_server_link(self, src: str, dst: str) -> Link:
        """Link carrying synchronization traffic between two server hubs."""
        for node in (src, dst):
            if self.graph.nodes.get(node, {}).get("role") != "server":
                raise KeyError(f"{node!r} is not a server node")
        return self._directional_link(src, dst)

    def mean_latencies(self) -> Dict[str, float]:
        """Expected one-way latency (s) from each end-system to the server."""
        return {name: self.uplink(name).latency.mean() for name in self.end_systems}

    def stats(self, direction: str = "up") -> Dict[str, Dict[str, float]]:
        """Per-end-system traffic statistics for one direction.

        ``direction="up"`` (default) reports the uplinks, ``"down"`` the
        downlinks (which alias the uplinks on symmetric topologies).
        """
        if direction not in {"up", "down"}:
            raise ValueError(f"direction must be 'up' or 'down', got {direction!r}")
        pick = self.uplink if direction == "up" else self.downlink
        return {name: pick(name).stats() for name in self.end_systems}

    def dropped_totals(self) -> Dict[str, int]:
        """Link-level drop counts summed over every edge, by direction.

        Used by the drop-accounting regression tests: the transport log's
        ``dropped_messages`` must equal ``uplink + downlink + sync`` from
        here.  NACK losses ride the downlink, so they count there.
        """
        uplink_drops = sum(self.uplink(name).messages_dropped for name in self.end_systems)
        downlink_drops = 0
        for name in self.end_systems:
            down = self.downlink(name)
            if down is not self.uplink(name):
                downlink_drops += down.messages_dropped
        sync_drops = 0
        servers = self.servers
        for index, src in enumerate(servers):
            for dst in servers[index + 1:]:
                if not self.graph.has_edge(src, dst):
                    continue
                forward = self._directional_link(src, dst)
                backward = self._directional_link(dst, src)
                sync_drops += forward.messages_dropped
                if backward is not forward:
                    sync_drops += backward.messages_dropped
        return {"uplink": uplink_drops, "downlink": downlink_drops, "sync": sync_drops}


def _make_latency_model(latency_s: float, jitter_std_s: float) -> LatencyModel:
    if jitter_std_s > 0:
        return GaussianLatency(latency_s, jitter_std_s)
    return ConstantLatency(latency_s)


def star_topology(
    num_end_systems: int,
    latencies_s: Optional[Iterable[float]] = None,
    bandwidth_bps: Optional[float] = 100e6,
    jitter_std_s: float = 0.0,
    drop_probability: float = 0.0,
    seed: Optional[int] = 0,
    downlink_latencies_s: Optional[Iterable[float]] = None,
    downlink_bandwidth_bps: Optional[float] = None,
    downlink_drop_probability: Optional[float] = None,
) -> GeoTopology:
    """Build a star topology with configurable per-end-system latencies.

    Every end-system gets *two* links: an uplink carrying activations to
    the server and a downlink carrying gradients back.  The downlink
    defaults to the uplink's parameters but is always an independent
    :class:`Link` instance (its own RNG stream and traffic counters), so
    gradient-return traffic is modeled and logged separately.

    Parameters
    ----------
    latencies_s:
        One mean uplink latency per end-system; defaults to 5 ms for
        everyone.  Heterogeneous values reproduce the paper's "far-away
        end-system" scenario.
    jitter_std_s:
        When non-zero, latencies are Gaussian around the mean instead of
        constant.
    downlink_latencies_s / downlink_bandwidth_bps / downlink_drop_probability:
        Optional asymmetric overrides for the gradient-return direction;
        each defaults to the corresponding uplink value.
    """
    if num_end_systems <= 0:
        raise ValueError("need at least one end-system")
    latencies = list(latencies_s) if latencies_s is not None else [0.005] * num_end_systems
    if len(latencies) != num_end_systems:
        raise ValueError(
            f"expected {num_end_systems} latencies, got {len(latencies)}"
        )
    down_latencies = (
        list(downlink_latencies_s) if downlink_latencies_s is not None else list(latencies)
    )
    if len(down_latencies) != num_end_systems:
        raise ValueError(
            f"expected {num_end_systems} downlink latencies, got {len(down_latencies)}"
        )
    down_bandwidth = (
        downlink_bandwidth_bps if downlink_bandwidth_bps is not None else bandwidth_bps
    )
    down_drop = (
        downlink_drop_probability if downlink_drop_probability is not None else drop_probability
    )
    topology = GeoTopology()
    topology.add_node(GeoTopology.SERVER, role="server")
    for index, latency_s in enumerate(latencies):
        name = f"end_system_{index}"
        topology.add_node(name, role="end_system")
        uplink = Link(
            latency=_make_latency_model(latency_s, jitter_std_s),
            bandwidth_bps=bandwidth_bps,
            drop_probability=drop_probability,
            seed=None if seed is None else seed + index,
            direction="up",
        )
        downlink = Link(
            latency=_make_latency_model(down_latencies[index], jitter_std_s),
            bandwidth_bps=down_bandwidth,
            drop_probability=down_drop,
            seed=None if seed is None else seed + num_end_systems + index,
            direction="down",
        )
        topology.add_link(name, GeoTopology.SERVER, uplink, downlink=downlink)
    return topology


def multi_hub_star_topology(
    num_end_systems: int,
    num_servers: int,
    assignment: Optional[Iterable[int]] = None,
    assigner: str = "static_hash",
    latencies_s: Optional[Iterable[float]] = None,
    bandwidth_bps: Optional[float] = 100e6,
    jitter_std_s: float = 0.0,
    drop_probability: float = 0.0,
    seed: Optional[int] = 0,
    downlink_latencies_s: Optional[Iterable[float]] = None,
    downlink_bandwidth_bps: Optional[float] = None,
    downlink_drop_probability: Optional[float] = None,
    inter_server_latency_s: float = 0.01,
    inter_server_bandwidth_bps: Optional[float] = 1e9,
    inter_server_drop_probability: float = 0.0,
) -> GeoTopology:
    """Build a sharded star: one hub per server shard plus inter-server links.

    Every end-system connects (uplink + downlink, exactly like
    :func:`star_topology`) to the single hub its shard assignment names;
    the hubs are pairwise connected by dedicated per-direction links that
    carry the weight-synchronization traffic, typically a datacenter
    interconnect — lower latency and higher bandwidth than the WAN edges.

    With ``num_servers=1`` the result is link-for-link identical to
    :func:`star_topology` (same per-link RNG streams), which is what the
    cluster equivalence tests pin.

    Parameters
    ----------
    assignment:
        Shard index per end-system.  When omitted, the named ``assigner``
        strategy computes it from ``latencies_s``.
    inter_server_latency_s / inter_server_bandwidth_bps / inter_server_drop_probability:
        Parameters shared by every inter-server link.
    """
    if num_end_systems <= 0:
        raise ValueError("need at least one end-system")
    if num_servers <= 0:
        raise ValueError("need at least one server")
    latencies = list(latencies_s) if latencies_s is not None else [0.005] * num_end_systems
    if len(latencies) != num_end_systems:
        raise ValueError(f"expected {num_end_systems} latencies, got {len(latencies)}")
    if assignment is None:
        from ..cluster.assigner import get_assigner

        assignment = get_assigner(assigner).assign(
            num_end_systems, num_servers, latencies_s=latencies
        )
    assignment = [int(shard) for shard in assignment]
    if len(assignment) != num_end_systems:
        raise ValueError(
            f"expected {num_end_systems} assignment entries, got {len(assignment)}"
        )
    if assignment and not all(0 <= shard < num_servers for shard in assignment):
        raise ValueError(f"assignment indices must be in [0, {num_servers})")
    down_latencies = (
        list(downlink_latencies_s) if downlink_latencies_s is not None else list(latencies)
    )
    if len(down_latencies) != num_end_systems:
        raise ValueError(
            f"expected {num_end_systems} downlink latencies, got {len(down_latencies)}"
        )
    down_bandwidth = (
        downlink_bandwidth_bps if downlink_bandwidth_bps is not None else bandwidth_bps
    )
    down_drop = (
        downlink_drop_probability if downlink_drop_probability is not None else drop_probability
    )
    topology = GeoTopology()
    hubs = [f"server_{index}" for index in range(num_servers)]
    for hub in hubs:
        topology.add_node(hub, role="server")
    # Client-edge link seeds replicate star_topology (uplink: seed+i,
    # downlink: seed+M+i) so a 1-hub cluster is RNG-identical to the
    # classic star; inter-server links draw from seed+2M onwards.
    for index, latency_s in enumerate(latencies):
        name = f"end_system_{index}"
        topology.add_node(name, role="end_system")
        uplink = Link(
            latency=_make_latency_model(latency_s, jitter_std_s),
            bandwidth_bps=bandwidth_bps,
            drop_probability=drop_probability,
            seed=None if seed is None else seed + index,
            direction="up",
        )
        downlink = Link(
            latency=_make_latency_model(down_latencies[index], jitter_std_s),
            bandwidth_bps=down_bandwidth,
            drop_probability=down_drop,
            seed=None if seed is None else seed + num_end_systems + index,
            direction="down",
        )
        topology.add_link(name, hubs[assignment[index]], uplink, downlink=downlink)
    pair_index = 0
    for left in range(num_servers):
        for right in range(left + 1, num_servers):
            forward = Link(
                latency=_make_latency_model(inter_server_latency_s, jitter_std_s),
                bandwidth_bps=inter_server_bandwidth_bps,
                drop_probability=inter_server_drop_probability,
                seed=None if seed is None else seed + 2 * num_end_systems + 2 * pair_index,
                direction="sync",
            )
            backward = Link(
                latency=_make_latency_model(inter_server_latency_s, jitter_std_s),
                bandwidth_bps=inter_server_bandwidth_bps,
                drop_probability=inter_server_drop_probability,
                seed=None if seed is None else seed + 2 * num_end_systems + 2 * pair_index + 1,
                direction="sync",
            )
            topology.add_link(hubs[left], hubs[right], forward, downlink=backward)
            pair_index += 1
    return topology


def geo_star_topology(
    city_names: Iterable[str],
    server_city: str = "seoul",
    bandwidth_bps: Optional[float] = 100e6,
    jitter_std_s: float = 0.002,
    seed: Optional[int] = 0,
) -> GeoTopology:
    """Build a star topology whose latencies follow real geographic distances.

    Parameters
    ----------
    city_names:
        Cities hosting the end-systems (keys of :data:`WORLD_CITIES`).
    server_city:
        City hosting the centralized server.
    """
    city_names = list(city_names)
    unknown = [city for city in [server_city, *city_names] if city not in WORLD_CITIES]
    if unknown:
        raise KeyError(f"unknown cities {unknown}; known cities: {sorted(WORLD_CITIES)}")
    num_end_systems = len(city_names)
    topology = GeoTopology()
    topology.add_node(GeoTopology.SERVER, coordinates=WORLD_CITIES[server_city], role="server")
    for index, city in enumerate(city_names):
        name = f"end_system_{index}_{city}"
        topology.add_node(name, coordinates=WORLD_CITIES[city], role="end_system")
        uplink = Link(
            latency=DistanceLatency(
                WORLD_CITIES[city], WORLD_CITIES[server_city], jitter_std_s=jitter_std_s
            ),
            bandwidth_bps=bandwidth_bps,
            seed=None if seed is None else seed + index,
            direction="up",
        )
        downlink = Link(
            latency=DistanceLatency(
                WORLD_CITIES[server_city], WORLD_CITIES[city], jitter_std_s=jitter_std_s
            ),
            bandwidth_bps=bandwidth_bps,
            seed=None if seed is None else seed + num_end_systems + index,
            direction="down",
        )
        topology.add_link(name, GeoTopology.SERVER, uplink, downlink=downlink)
    return topology
