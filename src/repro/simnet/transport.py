"""Transport layer: shipping activation/gradient payloads over a topology.

``Transport`` bridges the split-learning trainer and the network
simulation: the trainer hands it a payload (smashed activations going up,
gradients coming back) and the transport stamps the message with an
arrival time sampled from the corresponding link.  A per-round
:class:`TrafficLog` records volumes and delays so experiments can report
communication cost alongside accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from .link import Message
from .topology import GeoTopology

__all__ = ["Transport", "TrafficLog"]


@dataclass
class TrafficLog:
    """Aggregate statistics of the traffic a transport has carried.

    Four directions are tracked: ``"up"`` (activations), ``"down"``
    (gradients), ``"nack"`` (queue-overflow notifications — they ride
    the downlink :class:`~repro.simnet.link.Link`, so their *drops*
    count towards ``downlink_dropped`` for link-level parity, but their
    deliveries are logged separately so gradient traffic stays clean)
    and ``"sync"`` (inter-server weight synchronization).
    """

    uplink_messages: int = 0
    downlink_messages: int = 0
    uplink_bytes: int = 0
    downlink_bytes: int = 0
    nack_messages: int = 0
    nack_bytes: int = 0
    sync_messages: int = 0
    sync_bytes: int = 0
    dropped_messages: int = 0
    uplink_dropped: int = 0
    downlink_dropped: int = 0
    nack_dropped: int = 0
    sync_dropped: int = 0
    retried_messages: int = 0
    uplink_retried: int = 0
    downlink_retried: int = 0
    corrupted_messages: int = 0
    uplink_corrupted: int = 0
    downlink_corrupted: int = 0
    sync_corrupted: int = 0
    duplicated_messages: int = 0
    reordered_messages: int = 0
    transit_times: List[float] = field(default_factory=list)

    def record(self, message: Optional[Message], direction: str,
               absorbed: bool = False) -> None:
        """Record one message (``None`` means it was dropped).

        ``absorbed=True`` marks a loss covered by the reliability
        layer's retry chain: the sender will retransmit, so the loss
        lands in the ``retried`` counters instead of surfacing as a
        drop (only a chain that exhausts its retries ever reaches the
        drop ledger, as a single ``gave_up``).
        """
        if direction not in {"up", "down", "nack", "sync"}:
            raise ValueError(f"unknown traffic direction {direction!r}")
        if message is None:
            if absorbed:
                if direction not in {"up", "down"}:
                    raise ValueError(
                        f"only payload directions can absorb losses, got {direction!r}"
                    )
                self.retried_messages += 1
                if direction == "up":
                    self.uplink_retried += 1
                else:
                    self.downlink_retried += 1
                return
            self.dropped_messages += 1
            if direction == "up":
                self.uplink_dropped += 1
            elif direction == "down":
                self.downlink_dropped += 1
            elif direction == "nack":
                # The NACK was lost on the downlink link, so the
                # per-link counters see it there; mirror that here.
                self.nack_dropped += 1
                self.downlink_dropped += 1
            else:
                self.sync_dropped += 1
            return
        if direction == "up":
            self.uplink_messages += 1
            self.uplink_bytes += message.size_bytes
        elif direction == "down":
            self.downlink_messages += 1
            self.downlink_bytes += message.size_bytes
        elif direction == "nack":
            self.nack_messages += 1
            self.nack_bytes += message.size_bytes
        else:
            self.sync_messages += 1
            self.sync_bytes += message.size_bytes
        # Only the payload-bearing directions feed the transit-time
        # statistics; control traffic would skew the latency headline.
        if direction in {"up", "down"}:
            self.transit_times.append(message.transit_time)

    # ------------------------------------------------------------------ #
    # Chaos-plane bookkeeping (repro.chaos.MessageChaos calls these; the
    # loss itself still flows through record(None, ...) so corruption is
    # visible both as a corruption and as a drop/absorbed-retry).
    def note_corrupted(self, direction: str) -> None:
        """Count one in-flight corruption on a payload direction."""
        self.corrupted_messages += 1
        if direction == "up":
            self.uplink_corrupted += 1
        elif direction == "down":
            self.downlink_corrupted += 1
        elif direction == "sync":
            self.sync_corrupted += 1
        else:
            raise ValueError(f"unknown corruption direction {direction!r}")

    def note_duplicated(self) -> None:
        """Count one chaos-duplicated uplink message."""
        self.duplicated_messages += 1

    def note_reordered(self) -> None:
        """Count one chaos-reordered (arrival-delayed) message."""
        self.reordered_messages += 1

    @property
    def total_bytes(self) -> int:
        """Total bytes moved in both directions."""
        return self.uplink_bytes + self.downlink_bytes

    @property
    def mean_transit_time(self) -> float:
        """Mean per-message delay in seconds (0 when nothing was sent)."""
        return float(np.mean(self.transit_times)) if self.transit_times else 0.0

    @property
    def max_transit_time(self) -> float:
        """Worst per-message delay in seconds (0 when nothing was sent)."""
        return float(np.max(self.transit_times)) if self.transit_times else 0.0

    def summary(self) -> Dict[str, float]:
        """Flat dictionary of the log's headline numbers."""
        return {
            "uplink_messages": self.uplink_messages,
            "downlink_messages": self.downlink_messages,
            "uplink_megabytes": self.uplink_bytes / 1e6,
            "downlink_megabytes": self.downlink_bytes / 1e6,
            "nack_messages": self.nack_messages,
            "sync_messages": self.sync_messages,
            "sync_megabytes": self.sync_bytes / 1e6,
            "dropped_messages": self.dropped_messages,
            "uplink_dropped": self.uplink_dropped,
            "downlink_dropped": self.downlink_dropped,
            "nack_dropped": self.nack_dropped,
            "sync_dropped": self.sync_dropped,
            "retried_messages": self.retried_messages,
            "uplink_retried": self.uplink_retried,
            "downlink_retried": self.downlink_retried,
            "corrupted_messages": self.corrupted_messages,
            "duplicated_messages": self.duplicated_messages,
            "reordered_messages": self.reordered_messages,
            "mean_transit_time_s": self.mean_transit_time,
            "max_transit_time_s": self.max_transit_time,
        }


class Transport:
    """Moves payloads between end-systems and the server over a topology.

    ``chaos`` (a :class:`repro.chaos.MessageChaos`) is applied to every
    message a link delivered — corruption turns a delivery back into a
    loss, reordering delays its arrival, duplication tags an uplink
    message with a second arrival time for the engine to schedule.
    ``None`` (the default) leaves every send exactly as the link stamped
    it.
    """

    def __init__(self, topology: GeoTopology, chaos: Optional[Any] = None) -> None:
        self.topology = topology
        self.chaos = chaos
        self.log = TrafficLog()
        self._clock = 0.0

    @property
    def now(self) -> float:
        """Transport-local clock: the latest send time seen so far."""
        return self._clock

    def send_to_server(self, end_system: str, payload: Any, now: Optional[float] = None,
                       kind: str = "activation",
                       reliable: bool = False) -> Optional[Message]:
        """Ship a payload from an end-system to the server.

        Returns the stamped :class:`Message`, or ``None`` if the link
        dropped it.  ``reliable=True`` marks the send as covered by a
        retry chain: a loss is absorbed into the retried counters
        instead of the drop ledger.
        """
        now = self._advance(now)
        link = self.topology.uplink(end_system)
        message = link.send(end_system, self.topology.hub_of(end_system), payload,
                            now, kind=kind)
        if message is not None and self.chaos is not None:
            message = self.chaos.apply(message, "up", self.log)
        self.log.record(message, "up", absorbed=reliable and message is None)
        return message

    def send_to_end_system(self, end_system: str, payload: Any, now: Optional[float] = None,
                           kind: str = "gradient",
                           reliable: bool = False) -> Optional[Message]:
        """Ship a payload from the server back to an end-system.

        Gradient-return traffic travels over the topology's *downlink*
        for that end-system, so its latency samples, drop draws and
        per-link counters never commingle with the uplink's.  Queue-drop
        NACKs (``kind="nack"``) ride the same downlink but are logged in
        their own direction so gradient counts stay meaningful; the NACK
        control channel is exempt from both chaos and retries (its PR 2
        lost-NACK fallback already makes it loss-safe).
        """
        now = self._advance(now)
        link = self.topology.downlink(end_system)
        message = link.send(self.topology.hub_of(end_system), end_system, payload,
                            now, kind=kind)
        if kind == "nack":
            self.log.record(message, "nack")
            return message
        if message is not None and self.chaos is not None:
            message = self.chaos.apply(message, "down", self.log)
        self.log.record(message, "down", absorbed=reliable and message is None)
        return message

    def send_between_servers(self, source: str, destination: str, payload: Any,
                             now: Optional[float] = None,
                             kind: str = "sync") -> Optional[Message]:
        """Ship a weight-synchronization payload between two server hubs."""
        now = self._advance(now)
        link = self.topology.inter_server_link(source, destination)
        message = link.send(source, destination, payload, now, kind=kind)
        if message is not None and self.chaos is not None:
            message = self.chaos.apply(message, "sync", self.log)
        self.log.record(message, "sync")
        return message

    def _advance(self, now: Optional[float]) -> float:
        """Track the latest send time seen without rewriting the caller's.

        The transport clock (:attr:`now`) stays monotone for
        introspection, but a message is stamped with the time its sender
        actually handed it over — concurrent transfers on independent
        links must not delay each other just because the transport
        observed a later send first.
        """
        if now is None:
            return self._clock
        now = float(now)
        self._clock = max(self._clock, now)
        return now

    def reset_log(self) -> TrafficLog:
        """Replace the traffic log with a fresh one and return the old log."""
        old = self.log
        self.log = TrafficLog()
        return old
