"""``python -m repro.server.worker <job_dir>`` — run one job to completion.

The worker is a throwaway process: it reads the job directory the
:class:`~repro.server.jobs.JobManager` prepared, trains, and writes its
progress and outcome back into that directory.  It holds **no** state
the directory doesn't — which is exactly why the manager may kill it
with SIGKILL at any moment and a *different* worker process can pick
the job back up:

* Start vs resume is decided by the checkpoint store alone: if
  ``checkpoints/`` holds an intact :class:`RunCheckpoint`, the trainer
  is rebuilt from it (replay-exact, per ``tests/state``); otherwise the
  job starts fresh.
* Metrics stream live: every obs flush appends one row to
  ``metrics.jsonl`` (byte-identical to the end-of-run export).  On
  resume the file is first *repaired* — a partially-written trailing
  line and any rows from past the restored sim-clock (work that will be
  replayed) are dropped, keeping the surviving raw bytes untouched — and
  then appended to, so the finished file is byte-identical to the one an
  uninterrupted run would have written.
* Progress is published through ``status.json`` from the trainer's
  ``on_epoch_end`` hook, after each epoch's run checkpoint is durable —
  so ``epochs_completed`` never claims an epoch the store can't replay.

On success the worker writes ``result.json`` (history summary + per-
epoch records), ``final_state.npz`` (the deployment's weights, for
equivalence checks against an uninterrupted twin) and ``trace.json``,
then marks the job ``completed``.  Any exception marks it ``failed``
with the traceback in both ``status.json`` and ``worker.log``.
"""

from __future__ import annotations

import json
import os
import sys
import traceback
from pathlib import Path
from typing import Any, Dict, List

from ..api.jobspec import JobSpec
from ..api.runtime import build_trainer, build_workload, resume_trainer
from ..core.history import EpochRecord, TrainingHistory
from ..core.trainer import SpatioTemporalTrainer
from ..state.store import FileCheckpointStore, save_state_dict
from .jobs import read_json, write_json_atomic

__all__ = ["main", "repair_metrics", "repair_epoch_ledger",
           "flatten_state_dict"]


def repair_metrics(path: Path, restored_clock: float) -> None:
    """Trim ``metrics.jsonl`` back to the restored checkpoint's horizon.

    Keeps every complete row with ``t <= restored_clock`` — those flushes
    happened before the checkpoint and will *not* fire again.  Drops
    rows from after it (the resumed run replays that span and re-emits
    identical rows) and a torn trailing line (a flush caught mid-write
    by the kill).  Surviving lines are preserved byte-for-byte, which is
    what makes the finished file byte-identical to an uninterrupted
    run's export.
    """
    if not path.exists():
        return
    kept = bytearray()
    with open(path, "rb") as handle:
        for line in handle.read().splitlines(keepends=True):
            if not line.endswith(b"\n"):
                break  # torn trailing write — not a durable row
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                break
            if not isinstance(row, dict) or float(row.get("t", 0.0)) > restored_clock:
                break
            kept.extend(line)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(bytes(kept))
    os.replace(tmp, path)


def flatten_state_dict(state: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """``{component: {param: array}}`` → ``{"component::param": array}``
    (the flat shape :func:`repro.state.store.save_state_dict` persists)."""
    flat: Dict[str, Any] = {}
    for component, params in state.items():
        for name, value in params.items():
            flat[f"{component}::{name}"] = value
    return flat


def repair_epoch_ledger(path: Path, start_epoch: int) -> None:
    """Trim ``epochs.jsonl`` to records the resumed run won't re-emit.

    Epochs >= ``start_epoch`` are replayed (and re-appended) by the
    resumed run; a torn trailing line is dropped like in
    :func:`repair_metrics`.
    """
    if not path.exists():
        return
    kept = bytearray()
    with open(path, "rb") as handle:
        for line in handle.read().splitlines(keepends=True):
            if not line.endswith(b"\n"):
                break
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break
            if not isinstance(record, dict) or int(record.get("epoch", -1)) >= start_epoch:
                break
            kept.extend(line)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(bytes(kept))
    os.replace(tmp, path)


def _publish(status_path: Path, **updates: Any) -> None:
    status = read_json(status_path)
    status.update(updates)
    write_json_atomic(status_path, status)


def _result_payload(history: TrainingHistory,
                    ledger_path: Path) -> Dict[str, Any]:
    """Final result: the run-level summary plus the *full* epoch ledger.

    ``history`` belongs to the last worker attempt, so its records cover
    only the epochs that attempt trained; the ledger the workers
    appended to across attempts covers the whole job.  Aggregate engine
    state (traffic, queue, reliability) rides the checkpoint, so the
    summary's run-level numbers already span every attempt — only the
    epoch count needs the ledger.
    """
    epochs: List[Dict[str, Any]] = []
    if ledger_path.exists():
        for line in ledger_path.read_text(encoding="utf-8").splitlines():
            epochs.append(json.loads(line))
    summary = history.summary()
    summary["epochs"] = len(epochs)
    return {"summary": summary, "epochs": epochs}


def run_job_dir(job_dir: Path) -> None:
    """Train the job described by ``job_dir`` (fresh or resumed)."""
    spec = JobSpec.from_json_dict(read_json(job_dir / "spec.json"))
    status_path = job_dir / "status.json"
    metrics_path = job_dir / "metrics.jsonl"
    ledger_path = job_dir / "epochs.jsonl"
    store = FileCheckpointStore(job_dir / "checkpoints")
    pieces = build_workload(spec.workload)

    if store.latest_run() is not None:
        trainer: SpatioTemporalTrainer = resume_trainer(spec, store,
                                                        pieces=pieces)
        repair_metrics(metrics_path, trainer.engine.clock)
        repair_epoch_ledger(ledger_path, trainer._start_epoch)
        trainer.obs.stream_to(metrics_path, append=True)
    else:
        trainer = build_trainer(spec, checkpoint_store=store, pieces=pieces)
        trainer.obs.stream_to(metrics_path, append=False)

    def on_epoch_end(record: EpochRecord) -> None:
        # Fires after the epoch's run checkpoint is durable, so neither
        # the count nor the ledger gets ahead of what a resume replays.
        with open(ledger_path, "a", encoding="utf-8") as ledger:
            ledger.write(json.dumps(record.as_dict()) + "\n")
        _publish(status_path, epochs_completed=record.epoch + 1)

    try:
        history = trainer.train(
            test_dataset=pieces.test if spec.evaluate else None,
            on_epoch_end=on_epoch_end,
        )
    finally:
        trainer.obs.close_stream()

    if trainer.obs.enabled:
        trainer.obs.write_trace(job_dir / "trace.json")
    save_state_dict(flatten_state_dict(trainer.state_dict()),
                    job_dir / "final_state.npz")
    write_json_atomic(job_dir / "result.json",
                      _result_payload(history, ledger_path))
    _publish(status_path, state="completed", pid=None, error=None)


def main(argv: Any = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.server.worker <job_dir>",
              file=sys.stderr)
        return 2
    job_dir = Path(argv[0])
    try:
        run_job_dir(job_dir)
    except Exception as exc:  # noqa: BLE001 - the job dir is the error channel
        traceback.print_exc()
        try:
            _publish(job_dir / "status.json", state="failed", pid=None,
                     error=f"{type(exc).__name__}: {exc}")
        except OSError:
            pass  # status write failing must not mask the real error
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
