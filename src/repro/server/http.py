"""The run-server's REST surface (stdlib ``http.server``, versioned ``/v1``).

Endpoints — every body is JSON unless noted:

========  =================================  =====================================
method    path                               meaning
========  =================================  =====================================
GET       ``/v1/healthz``                    liveness + API version
POST      ``/v1/jobs``                       submit a JobSpec payload → ``job_id``
GET       ``/v1/jobs``                       all jobs' status records
GET       ``/v1/jobs/<id>``                  one status record (+ effective spec)
POST      ``/v1/jobs/<id>/pause``            SIGKILL worker, keep job resumable
POST      ``/v1/jobs/<id>/resume``           new worker from newest checkpoint
POST      ``/v1/jobs/<id>/cancel``           SIGKILL worker, end job
GET       ``/v1/jobs/<id>/metrics``          flushed obs rows (``?since=N``);
                                             ``?raw=1`` = the metrics.jsonl bytes
                                             verbatim; ``?snapshot=1`` = flat
                                             ``{series: value}`` of the last row
GET       ``/v1/jobs/<id>/report``           the ``repro.obs report`` JSON payload
GET       ``/v1/jobs/<id>/result``           final history (completed jobs)
========  =================================  =====================================

Error mapping: schema violations → 400, unknown job → 404, illegal
lifecycle transition → 409, everything carries ``{"error": ...}``.

The metrics endpoint reads the worker's live ``metrics.jsonl`` through
the same tolerant reader the CLI report uses
(:func:`repro.obs.report.load_rows`) — a flush caught mid-write is
simply not served yet.  ``?raw=1`` returns the file bytes untouched,
which is the byte-identity contract the lifecycle tests pin.
"""

from __future__ import annotations

import json
import logging
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlparse

from ..obs.report import flatten_row, load_rows, report_payload
from .jobs import InvalidTransition, JobManager, UnknownJob

__all__ = ["API_VERSION", "RunServer", "create_server"]

#: Version segment of every route (``/v1/...``) and the ``healthz`` echo.
API_VERSION = 1

logger = logging.getLogger(__name__)

_JOB_ROUTE = re.compile(r"^/v1/jobs/(?P<job_id>[A-Za-z0-9._-]+)"
                        r"(?:/(?P<verb>[a-z]+))?$")


class RunServer(ThreadingHTTPServer):
    """ThreadingHTTPServer with the :class:`JobManager` attached."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int],
                 manager: JobManager) -> None:
        super().__init__(address, _Handler)
        self.manager = manager

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def shutdown_workers(self) -> None:
        self.manager.shutdown()


def create_server(root: Union[str, Path], host: str = "127.0.0.1",
                  port: int = 0) -> RunServer:
    """Bind a run-server on ``host:port`` (0 = ephemeral) over ``root``."""
    return RunServer((host, port), JobManager(root))


class _Handler(BaseHTTPRequestHandler):
    server: RunServer  # narrowed from BaseServer for self.server.manager

    # -- plumbing ------------------------------------------------------ #
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        logger.debug("%s - %s", self.address_string(), format % args)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_bytes(self, status: int, body: bytes,
                    content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("request body must be a JSON object")
        payload = json.loads(raw)
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    # -- dispatch ------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        try:
            self._route(method)
        except (ValueError, TypeError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": str(exc)})
        except UnknownJob as exc:
            self._send_json(404, {"error": f"unknown job: {exc.args[0]}"})
        except InvalidTransition as exc:
            self._send_json(409, {"error": str(exc)})
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            logger.exception("unhandled error serving %s %s", method, self.path)
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _route(self, method: str) -> None:
        parsed = urlparse(self.path)
        path = parsed.path.rstrip("/") or "/"
        query = {key: values[-1]
                 for key, values in parse_qs(parsed.query).items()}
        manager = self.server.manager

        if method == "GET" and path == "/v1/healthz":
            self._send_json(200, {"ok": True, "api_version": API_VERSION,
                                  "jobs": len(manager.job_ids())})
            return
        if path == "/v1/jobs":
            if method == "POST":
                job_id = manager.submit(self._read_body())
                self._send_json(201, {"job_id": job_id,
                                      "status": manager.status(job_id)})
            else:
                self._send_json(200, {"jobs": manager.list_jobs()})
            return

        match = _JOB_ROUTE.match(path)
        if match is None:
            self._send_json(404, {"error": f"no such route: {path}"})
            return
        job_id = match.group("job_id")
        verb = match.group("verb")

        if method == "POST":
            actions = {"pause": manager.pause, "resume": manager.resume,
                       "cancel": manager.cancel}
            action = actions.get(verb or "")
            if action is None:
                self._send_json(404, {"error": f"no such action: {verb}"})
                return
            self._send_json(200, action(job_id))
            return

        if verb is None:
            record = manager.status(job_id)
            record["spec"] = manager.spec(job_id)
            self._send_json(200, record)
        elif verb == "metrics":
            self._serve_metrics(job_id, query)
        elif verb == "report":
            rows = self._load_metrics_rows(job_id)
            self._send_json(200, dict(report_payload(rows)))
        elif verb == "result":
            self._send_json(200, manager.result(job_id))
        else:
            self._send_json(404, {"error": f"no such resource: {verb}"})

    # -- metrics ------------------------------------------------------- #
    def _load_metrics_rows(self, job_id: str) -> Any:
        path = self.server.manager.metrics_path(job_id)
        if not path.exists():
            return []
        return load_rows(path, tolerant=True)

    def _serve_metrics(self, job_id: str, query: Dict[str, str]) -> None:
        manager = self.server.manager
        if query.get("raw"):
            path = manager.metrics_path(job_id)
            body = path.read_bytes() if path.exists() else b""
            self._send_bytes(200, body, "application/jsonl")
            return
        rows = self._load_metrics_rows(job_id)
        if query.get("snapshot"):
            snapshot = flatten_row(rows[-1]) if rows else {}
            self._send_json(200, {"job_id": job_id, "snapshot": snapshot})
            return
        since = int(query.get("since", 0))
        self._send_json(200, {"job_id": job_id, "total": len(rows),
                              "since": since, "rows": rows[since:]})
