"""``repro.server`` — the long-lived run-server control plane.

``python -m repro.server --root DIR --port N`` serves the versioned
``/v1`` REST API over a directory of jobs: submit a
:class:`~repro.api.jobspec.JobSpec`, a worker subprocess trains it with
checkpoints and live metrics wired into the job directory, and the
lifecycle endpoints pause / resume / cancel / inspect it.  Because all
job state is on disk, jobs survive worker kills *and* server restarts —
resume replays from the newest epoch-boundary checkpoint, replay-exact.

Layers: :mod:`~repro.server.jobs` (directories + worker processes),
:mod:`~repro.server.worker` (the training subprocess),
:mod:`~repro.server.http` (the REST surface).  Clients should use
:class:`repro.api.RunClient` rather than raw HTTP.
"""

from .http import API_VERSION, RunServer, create_server
from .jobs import (InvalidTransition, JobManager, UnknownJob, JOB_STATES,
                   RESUMABLE_STATES, TERMINAL_STATES)

__all__ = [
    "API_VERSION",
    "RunServer",
    "create_server",
    "JobManager",
    "UnknownJob",
    "InvalidTransition",
    "JOB_STATES",
    "RESUMABLE_STATES",
    "TERMINAL_STATES",
]
