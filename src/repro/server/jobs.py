"""Job directories, status records and the worker-process manager.

Every job the run-server accepts lives in its own directory under
``<root>/jobs/`` and is fully described by what's on disk:

* ``spec.json`` — the *effective* :class:`~repro.api.jobspec.JobSpec`
  (client payload + the server's control-plane overrides).  The worker
  reads this, and resume re-reads the identical file, so a crashed and
  a resumed worker are guaranteed the same inputs.
* ``status.json`` — the reconciled lifecycle record (state, pid,
  epochs completed, attempts, error).  Written atomically
  (tmp + :func:`os.replace`) by whichever side owns the transition.
* ``checkpoints/`` — a :class:`~repro.state.store.FileCheckpointStore`
  the trainer writes epoch-boundary run checkpoints into.
* ``metrics.jsonl`` — the live :mod:`repro.obs` stream
  (``Observability.stream_to``), one row per flush.
* ``result.json`` / ``final_state.npz`` / ``trace.json`` — written by
  the worker on successful completion.
* ``worker.log`` — the worker's combined stdout/stderr, append-mode
  across attempts.

Because the directory *is* the job, the manager itself is stateless
apart from the ``Popen`` handles of workers it spawned: a restarted
server pointed at the same root reconciles every job from disk (a
``running`` record whose pid is gone becomes ``interrupted``) and can
resume them.

States: ``pending`` → ``running`` → {``paused``, ``interrupted``,
``completed``, ``failed``, ``cancelled``}; ``paused`` / ``interrupted``
/ ``failed`` → ``running`` again via resume.  Pause and cancel stop the
worker with SIGKILL on purpose — the recovery contract is replay-exact
resume from the newest epoch-boundary checkpoint, so a graceful
shutdown path would only hide bugs in the brutal one.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from ..api.jobspec import JobSpec

__all__ = [
    "InvalidTransition",
    "JobManager",
    "UnknownJob",
    "read_json",
    "write_json_atomic",
    "JOB_STATES",
    "RESUMABLE_STATES",
    "TERMINAL_STATES",
]

#: Every state a status record may carry.
JOB_STATES = ("pending", "running", "paused", "interrupted",
              "completed", "failed", "cancelled")

#: States a job can be resumed from (plus ``failed`` — a failed run may
#: still hold intact checkpoints, and retrying it is the operator's call).
RESUMABLE_STATES = ("paused", "interrupted", "failed")

#: States with no outgoing transitions except nothing.
TERMINAL_STATES = ("completed", "cancelled")

#: Default control-plane cadences injected when the submitted config
#: leaves them unset: sim-seconds between run checkpoints and between
#: metric flushes.  Small enough that even a ``fast_debug`` job crosses
#: several of each.
_DEFAULT_CHECKPOINT_EVERY_S = 0.05
_DEFAULT_OBS_FLUSH_EVERY_S = 0.05


class UnknownJob(KeyError):
    """No job directory with that id exists under this root."""


class InvalidTransition(Exception):
    """The requested lifecycle action is not legal from the job's state."""


def read_json(path: Union[str, Path]) -> Dict[str, Any]:
    """Load one JSON object from ``path``."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: expected a JSON object")
    return payload


def write_json_atomic(path: Union[str, Path], payload: Mapping[str, Any]) -> None:
    """Write ``payload`` to ``path`` via tmp + rename — readers never see
    a torn file, even across a kill -9 of the writer."""
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    os.replace(tmp, target)


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a non-child process (signal 0)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by another user
        return True
    return True


def _slug(name: str) -> str:
    kept = [ch if ch.isalnum() else "-" for ch in name.lower()]
    collapsed = "".join(kept).strip("-")
    while "--" in collapsed:
        collapsed = collapsed.replace("--", "-")
    return collapsed[:40] or "job"


class JobManager:
    """Owns the job directories under one root and the workers they run.

    Thread-safe: the HTTP layer serves from a ``ThreadingHTTPServer``,
    so every mutating path takes ``self._lock``.  All durable state is
    on disk; the only in-memory extras are the ``Popen`` handles of
    workers this process spawned (needed to reap children — a zombie
    child would still answer ``os.kill(pid, 0)``).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._procs: Dict[str, subprocess.Popen[bytes]] = {}

    # ------------------------------------------------------------------ #
    # Directory layout
    # ------------------------------------------------------------------ #
    def job_dir(self, job_id: str) -> Path:
        path = self.jobs_dir / job_id
        if not path.is_dir():
            raise UnknownJob(job_id)
        return path

    def metrics_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "metrics.jsonl"

    def _status_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "status.json"

    def job_ids(self) -> List[str]:
        return sorted(p.name for p in self.jobs_dir.iterdir() if p.is_dir())

    def _next_job_id(self, name: str) -> str:
        taken = 0
        for existing in self.jobs_dir.iterdir():
            head = existing.name.split("-", 2)
            if len(head) >= 2 and head[0] == "job" and head[1].isdigit():
                taken = max(taken, int(head[1]))
        return f"job-{taken + 1:04d}-{_slug(name)}"

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def _effective_spec(self, spec: JobSpec, job_dir: Path) -> JobSpec:
        """Apply the server's control-plane overrides to a submitted spec.

        The server owns *where* artifacts live and guarantees the job is
        recoverable and observable: checkpoints are redirected into the
        job directory, observability is forced on (metrics stream to the
        job's ``metrics.jsonl``; the worker exports the trace itself, so
        ``obs_dir`` stays unset), and unset cadences get defaults.  The
        result is persisted as ``spec.json`` — resume re-reads exactly
        this config, and the twin tests rebuild from it.
        """
        overrides: Dict[str, Any] = {
            "checkpoint_dir": str(job_dir / "checkpoints"),
            "obs_enabled": True,
            "obs_dir": None,
        }
        if spec.config.checkpoint_every_s is None:
            overrides["checkpoint_every_s"] = _DEFAULT_CHECKPOINT_EVERY_S
        if spec.config.obs_flush_every_s is None:
            overrides["obs_flush_every_s"] = _DEFAULT_OBS_FLUSH_EVERY_S
        return replace(spec, config=replace(spec.config, **overrides))

    def submit(self, payload: Mapping[str, Any]) -> str:
        """Validate a JobSpec payload, create its directory, start a worker.

        Raises ``ValueError`` / ``TypeError`` (→ HTTP 400) before
        anything touches disk, so a rejected submission leaves no trace.
        """
        spec = JobSpec.from_json_dict(payload)
        with self._lock:
            job_id = self._next_job_id(spec.name)
            job_dir = self.jobs_dir / job_id
            job_dir.mkdir(parents=True)
            effective = self._effective_spec(spec, job_dir)
            write_json_atomic(job_dir / "spec.json", effective.to_json_dict())
            write_json_atomic(job_dir / "status.json", {
                "job_id": job_id,
                "name": spec.name,
                "state": "pending",
                "pid": None,
                "epochs_completed": 0,
                "epochs_total": effective.config.epochs,
                "attempts": 0,
                "error": None,
            })
            self._spawn_worker(job_id)
        return job_id

    # ------------------------------------------------------------------ #
    # Worker processes
    # ------------------------------------------------------------------ #
    def _spawn_worker(self, job_id: str) -> None:
        job_dir = self.job_dir(job_id)
        env = dict(os.environ)
        src_dir = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (src_dir if not existing
                             else os.pathsep.join([src_dir, existing]))
        log = open(job_dir / "worker.log", "ab")
        try:
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.server.worker", str(job_dir)],
                stdout=log, stderr=subprocess.STDOUT, env=env,
            )
        finally:
            log.close()
        self._procs[job_id] = proc
        status = read_json(self._status_path(job_id))
        status.update(state="running", pid=proc.pid, error=None,
                      attempts=int(status.get("attempts", 0)) + 1)
        write_json_atomic(self._status_path(job_id), status)

    def _worker_alive(self, job_id: str, pid: Optional[int]) -> bool:
        proc = self._procs.get(job_id)
        if proc is not None:
            return proc.poll() is None  # also reaps — no zombie false-positives
        if pid is None:
            return False
        return _pid_alive(int(pid))

    def _kill_worker(self, job_id: str, pid: Optional[int]) -> None:
        proc = self._procs.pop(job_id, None)
        if proc is not None:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
            return
        if pid is not None and _pid_alive(int(pid)):
            os.kill(int(pid), signal.SIGKILL)

    # ------------------------------------------------------------------ #
    # Status
    # ------------------------------------------------------------------ #
    def status(self, job_id: str) -> Dict[str, Any]:
        """The job's reconciled status record.

        Reconciliation is the crash detector: a record claiming
        ``running`` whose worker process is gone means the worker died
        without writing a terminal state (kill -9, OOM, power cut) —
        the job becomes ``interrupted`` and is eligible for resume.
        Works identically after a server restart, from disk alone.
        """
        with self._lock:
            status = read_json(self._status_path(job_id))
            if (status.get("state") == "running"
                    and not self._worker_alive(job_id, status.get("pid"))):
                status.update(state="interrupted", pid=None)
                write_json_atomic(self._status_path(job_id), status)
        return status

    def list_jobs(self) -> List[Dict[str, Any]]:
        return [self.status(job_id) for job_id in self.job_ids()]

    def spec(self, job_id: str) -> Dict[str, Any]:
        """The persisted *effective* JobSpec payload."""
        return read_json(self.job_dir(job_id) / "spec.json")

    def result(self, job_id: str) -> Dict[str, Any]:
        path = self.job_dir(job_id) / "result.json"
        if not path.exists():
            raise InvalidTransition(
                f"job {job_id} has no result yet "
                f"(state {self.status(job_id).get('state')!r})")
        return read_json(path)

    # ------------------------------------------------------------------ #
    # Lifecycle actions
    # ------------------------------------------------------------------ #
    def pause(self, job_id: str) -> Dict[str, Any]:
        """Stop the worker; the job stays resumable from its newest
        epoch-boundary checkpoint (work past it is re-run on resume)."""
        with self._lock:
            status = self.status(job_id)
            if status["state"] != "running":
                raise InvalidTransition(
                    f"cannot pause job in state {status['state']!r}")
            self._kill_worker(job_id, status.get("pid"))
            status = read_json(self._status_path(job_id))  # keep worker updates
            status.update(state="paused", pid=None)
            write_json_atomic(self._status_path(job_id), status)
        return status

    def resume(self, job_id: str) -> Dict[str, Any]:
        """Start a fresh worker that resumes from the checkpoint store
        (or from scratch if no checkpoint was ever written)."""
        with self._lock:
            status = self.status(job_id)
            if status["state"] not in RESUMABLE_STATES:
                raise InvalidTransition(
                    f"cannot resume job in state {status['state']!r} "
                    f"(resumable: {', '.join(RESUMABLE_STATES)})")
            self._spawn_worker(job_id)
            status = read_json(self._status_path(job_id))
        return status

    def cancel(self, job_id: str) -> Dict[str, Any]:
        with self._lock:
            status = self.status(job_id)
            if status["state"] in TERMINAL_STATES:
                raise InvalidTransition(
                    f"cannot cancel job in state {status['state']!r}")
            self._kill_worker(job_id, status.get("pid"))
            status = read_json(self._status_path(job_id))
            status.update(state="cancelled", pid=None)
            write_json_atomic(self._status_path(job_id), status)
        return status

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def shutdown(self) -> None:
        """Kill every worker this process spawned (jobs stay resumable)."""
        with self._lock:
            for job_id in list(self._procs):
                proc = self._procs.pop(job_id)
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=30)
