"""CLI entry point: ``python -m repro.server --root DIR --port N``."""

from __future__ import annotations

import argparse
import logging
import sys
from typing import Optional, Sequence

from .http import create_server

__all__ = ["main"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve the /v1 job API over a run-server root directory.",
    )
    parser.add_argument("--root", default="run-server",
                        help="directory holding jobs/ (created if missing; "
                             "default: ./run-server)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8321,
                        help="bind port, 0 for ephemeral (default: 8321)")
    parser.add_argument("--verbose", action="store_true",
                        help="log every request")
    args = parser.parse_args(argv)

    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    server = create_server(args.root, host=args.host, port=args.port)
    print(f"run-server listening on {server.url} (root: {args.root})",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        # Workers are killed (not drained): every job is designed to be
        # resumed replay-exact from its newest checkpoint on restart.
        server.shutdown_workers()
        server.server_close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
