"""Spatio-temporal split learning: the paper's primary contribution.

The public API mirrors the paper's Fig. 2: a :class:`SplitSpec` describes
which blocks live on the end-systems, :class:`EndSystem` and
:class:`CentralServer` are the two halves of the network, the
:class:`ParameterQueue` with its scheduling policies sits in front of the
server, and :class:`SpatioTemporalTrainer` orchestrates the spatially
(multiple end-systems) and temporally (split forward/backward) separated
training over a simulated geo-distributed network.
"""

from .compression import (
    ActivationTransform,
    GaussianNoisePerturbation,
    NoCompression,
    TopKSparsifier,
    Uint8Quantizer,
    get_transform,
)
from .config import TrainingConfig
from .end_system import EndSystem
from .engine import EngineStats, TrainingEngine
from .history import EpochRecord, TrainingHistory
from .messages import ActivationMessage, GradientMessage
from .models import (
    CNNArchitecture,
    build_paper_cnn,
    mnist_cnn_architecture,
    paper_cnn_architecture,
    tiny_cnn_architecture,
)
from .privacy import (
    LayerLeakage,
    LinearReconstructionAttack,
    activation_to_images,
    leakage_report,
    normalized_mse,
    pixel_correlation,
    psnr,
    ssim,
    upsample_nearest,
)
from .scheduling import (
    FIFOPolicy,
    ParameterQueue,
    RoundRobinPolicy,
    SchedulingPolicy,
    StalenessPriorityPolicy,
    WeightedFairPolicy,
    get_policy,
)
from .server import CentralServer
from .split import SplitSpec
from .trainer import SpatioTemporalTrainer

__all__ = [
    "TrainingConfig",
    "EndSystem",
    "CentralServer",
    "SpatioTemporalTrainer",
    "TrainingEngine",
    "EngineStats",
    "SplitSpec",
    "TrainingHistory",
    "EpochRecord",
    "ActivationMessage",
    "GradientMessage",
    "CNNArchitecture",
    "paper_cnn_architecture",
    "tiny_cnn_architecture",
    "mnist_cnn_architecture",
    "build_paper_cnn",
    "ParameterQueue",
    "SchedulingPolicy",
    "FIFOPolicy",
    "RoundRobinPolicy",
    "StalenessPriorityPolicy",
    "WeightedFairPolicy",
    "get_policy",
    # activation compression / perturbation (extension)
    "ActivationTransform",
    "NoCompression",
    "Uint8Quantizer",
    "TopKSparsifier",
    "GaussianNoisePerturbation",
    "get_transform",
    # privacy
    "LayerLeakage",
    "LinearReconstructionAttack",
    "activation_to_images",
    "leakage_report",
    "normalized_mse",
    "pixel_correlation",
    "psnr",
    "ssim",
    "upsample_nearest",
]
