"""Privacy analysis of the smashed activations (the paper's Fig. 4).

Fig. 4 of the paper shows three image captures: (a) an original CIFAR-10
training image, (b) the activation after the Conv2D of block ``L1`` —
"blurred" but still recognizable — and (c) the activation after the full
``L1`` block (Conv2D + MaxPooling2D), which "definitely hides" the
original image.  This module turns that qualitative figure into numbers:

* :func:`activation_to_images` renders an activation tensor as a
  grayscale image (channel mean), the direct analogue of the figure;
* :func:`pixel_correlation` measures how much of the original image
  structure survives in that rendering;
* :class:`LinearReconstructionAttack` trains a ridge-regression inverter
  from activations back to pixels — an *active* adversary at the server —
  and reports the reconstruction error (MSE / PSNR / SSIM);
* :func:`leakage_report` runs all of the above for every layer of a
  client segment, producing the per-layer leakage profile the figure
  gestures at.

Lower correlation, lower PSNR/SSIM and higher reconstruction MSE all mean
*better privacy*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import ndimage

from ..nn import Sequential, Tensor, no_grad

__all__ = [
    "activation_to_images",
    "upsample_nearest",
    "normalized_mse",
    "psnr",
    "ssim",
    "pixel_correlation",
    "LinearReconstructionAttack",
    "LayerLeakage",
    "leakage_report",
]


# --------------------------------------------------------------------------- #
# Rendering activations as images (Fig. 4's "image capture")
# --------------------------------------------------------------------------- #
def activation_to_images(activations: np.ndarray, normalize: bool = True) -> np.ndarray:
    """Render a batch of activations as grayscale images.

    Parameters
    ----------
    activations:
        Array of shape ``(N, C, H, W)``.
    normalize:
        Rescale each image to span ``[0, 1]`` (as an image viewer would).

    Returns
    -------
    Array of shape ``(N, H, W)``.
    """
    activations = np.asarray(activations)
    if activations.ndim != 4:
        raise ValueError(f"expected (N, C, H, W) activations, got shape {activations.shape}")
    images = activations.mean(axis=1)
    if normalize:
        flat = images.reshape(images.shape[0], -1)
        minimum = flat.min(axis=1, keepdims=True)
        maximum = flat.max(axis=1, keepdims=True)
        flat = (flat - minimum) / np.maximum(maximum - minimum, 1e-12)
        images = flat.reshape(images.shape)
    return images


def upsample_nearest(images: np.ndarray, target_size: int) -> np.ndarray:
    """Nearest-neighbour upsample ``(N, H, W)`` images to ``(N, target, target)``."""
    images = np.asarray(images)
    if images.ndim != 3:
        raise ValueError(f"expected (N, H, W) images, got shape {images.shape}")
    height = images.shape[1]
    if target_size % height != 0:
        raise ValueError(
            f"target size {target_size} is not a multiple of the source size {height}"
        )
    factor = target_size // height
    return np.repeat(np.repeat(images, factor, axis=1), factor, axis=2)


# --------------------------------------------------------------------------- #
# Image-similarity metrics
# --------------------------------------------------------------------------- #
def normalized_mse(reference: np.ndarray, reconstruction: np.ndarray) -> float:
    """Mean squared error normalized by the reference's variance.

    0 means perfect reconstruction; 1 means the reconstruction is no better
    than predicting the reference's mean.
    """
    reference = np.asarray(reference, dtype=np.float64)
    reconstruction = np.asarray(reconstruction, dtype=np.float64)
    if reference.shape != reconstruction.shape:
        raise ValueError(
            f"shape mismatch: {reference.shape} vs {reconstruction.shape}"
        )
    mse = float(np.mean((reference - reconstruction) ** 2))
    variance = float(np.var(reference))
    return mse / max(variance, 1e-12)


def psnr(reference: np.ndarray, reconstruction: np.ndarray, data_range: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB (higher = reconstruction closer to reference)."""
    reference = np.asarray(reference, dtype=np.float64)
    reconstruction = np.asarray(reconstruction, dtype=np.float64)
    mse = float(np.mean((reference - reconstruction) ** 2))
    if mse == 0:
        return float("inf")
    return float(10.0 * np.log10((data_range ** 2) / mse))


def ssim(reference: np.ndarray, reconstruction: np.ndarray, data_range: float = 1.0,
         sigma: float = 1.5) -> float:
    """Mean structural similarity between two grayscale image batches.

    Implements the standard Gaussian-weighted SSIM with the usual
    ``K1=0.01, K2=0.03`` constants, averaged over pixels and samples.
    Accepts ``(H, W)`` single images or ``(N, H, W)`` batches.
    """
    reference = np.asarray(reference, dtype=np.float64)
    reconstruction = np.asarray(reconstruction, dtype=np.float64)
    if reference.shape != reconstruction.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {reconstruction.shape}")
    if reference.ndim == 2:
        reference = reference[None]
        reconstruction = reconstruction[None]

    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2
    values = []
    for ref, rec in zip(reference, reconstruction):
        mu_x = ndimage.gaussian_filter(ref, sigma)
        mu_y = ndimage.gaussian_filter(rec, sigma)
        sigma_x = ndimage.gaussian_filter(ref * ref, sigma) - mu_x * mu_x
        sigma_y = ndimage.gaussian_filter(rec * rec, sigma) - mu_y * mu_y
        sigma_xy = ndimage.gaussian_filter(ref * rec, sigma) - mu_x * mu_y
        numerator = (2 * mu_x * mu_y + c1) * (2 * sigma_xy + c2)
        denominator = (mu_x ** 2 + mu_y ** 2 + c1) * (sigma_x + sigma_y + c2)
        values.append(float(np.mean(numerator / denominator)))
    return float(np.mean(values))


def pixel_correlation(rendered: np.ndarray, originals: np.ndarray) -> float:
    """Mean absolute Pearson correlation between rendered activations and originals.

    ``rendered`` is ``(N, h, w)`` (activation renderings, any spatial size
    dividing the original); ``originals`` is ``(N, C, H, W)`` raw images.
    The originals are converted to grayscale and the renderings are
    upsampled to match before correlating per sample.
    """
    rendered = np.asarray(rendered)
    originals = np.asarray(originals)
    grayscale = originals.mean(axis=1)
    target = grayscale.shape[-1]
    if rendered.shape[-1] != target:
        rendered = upsample_nearest(rendered, target)
    correlations = []
    for sample_rendered, sample_gray in zip(rendered, grayscale):
        x = sample_rendered.reshape(-1)
        y = sample_gray.reshape(-1)
        x = x - x.mean()
        y = y - y.mean()
        denominator = np.sqrt((x ** 2).sum() * (y ** 2).sum())
        if denominator < 1e-12:
            correlations.append(0.0)
        else:
            correlations.append(abs(float((x * y).sum() / denominator)))
    return float(np.mean(correlations))


# --------------------------------------------------------------------------- #
# Reconstruction attack
# --------------------------------------------------------------------------- #
class LinearReconstructionAttack:
    """Ridge-regression inversion from smashed activations to raw pixels.

    Models an honest-but-curious server that has somehow obtained a set of
    (activation, raw image) pairs — e.g. from a public dataset pushed
    through a stolen client segment — and fits a linear inverter.  The
    quality of the reconstructions it achieves on *unseen* activations
    bounds how much pixel information the smashed representation leaks to
    a linear adversary.

    Parameters
    ----------
    ridge:
        Tikhonov regularization strength (protects the fit when the
        activation dimensionality exceeds the number of attack samples).
    """

    def __init__(self, ridge: float = 1e-3) -> None:
        if ridge < 0:
            raise ValueError("ridge must be non-negative")
        self.ridge = ridge
        self._weights: Optional[np.ndarray] = None
        self._bias: Optional[np.ndarray] = None
        self._image_shape: Optional[Tuple[int, ...]] = None

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has been called."""
        return self._weights is not None

    def fit(self, activations: np.ndarray, images: np.ndarray) -> "LinearReconstructionAttack":
        """Fit the inverter on (activation, image) pairs."""
        activations = np.asarray(activations, dtype=np.float64)
        images = np.asarray(images, dtype=np.float64)
        if activations.shape[0] != images.shape[0]:
            raise ValueError("activations and images must have the same number of samples")
        if activations.shape[0] < 2:
            raise ValueError("need at least two samples to fit the attack")
        features = activations.reshape(activations.shape[0], -1)
        targets = images.reshape(images.shape[0], -1)
        self._image_shape = images.shape[1:]

        feature_mean = features.mean(axis=0)
        target_mean = targets.mean(axis=0)
        centered_features = features - feature_mean
        centered_targets = targets - target_mean

        gram = centered_features.T @ centered_features
        gram[np.diag_indices_from(gram)] += self.ridge * max(features.shape[0], 1)
        cross = centered_features.T @ centered_targets
        self._weights = np.linalg.solve(gram, cross)
        self._bias = target_mean - feature_mean @ self._weights
        return self

    def reconstruct(self, activations: np.ndarray) -> np.ndarray:
        """Invert activations back into image space."""
        if not self.is_fitted:
            raise RuntimeError("attack must be fitted before reconstructing")
        features = np.asarray(activations, dtype=np.float64).reshape(activations.shape[0], -1)
        flat = features @ self._weights + self._bias
        return flat.reshape(activations.shape[0], *self._image_shape)

    def evaluate(self, activations: np.ndarray, images: np.ndarray) -> Dict[str, float]:
        """Reconstruction quality on held-out pairs (lower quality = better privacy)."""
        reconstructions = self.reconstruct(activations)
        images = np.asarray(images, dtype=np.float64)
        gray_reference = images.mean(axis=1) if images.ndim == 4 else images
        gray_reconstruction = (
            reconstructions.mean(axis=1) if reconstructions.ndim == 4 else reconstructions
        )
        return {
            "reconstruction_nmse": normalized_mse(images, reconstructions),
            "reconstruction_psnr": psnr(images, np.clip(reconstructions, 0.0, 1.0)),
            "reconstruction_ssim": ssim(gray_reference, np.clip(gray_reconstruction, 0.0, 1.0)),
        }


# --------------------------------------------------------------------------- #
# Per-layer leakage profile
# --------------------------------------------------------------------------- #
@dataclass
class LayerLeakage:
    """Leakage metrics of one layer's activations."""

    layer: str
    correlation: float
    reconstruction_nmse: float
    reconstruction_psnr: float
    reconstruction_ssim: float
    activation_shape: Tuple[int, ...] = field(default_factory=tuple)

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary form (layer name included)."""
        return {
            "layer": self.layer,
            "correlation": self.correlation,
            "reconstruction_nmse": self.reconstruction_nmse,
            "reconstruction_psnr": self.reconstruction_psnr,
            "reconstruction_ssim": self.reconstruction_ssim,
            "activation_shape": tuple(self.activation_shape),
        }


def leakage_report(
    client_model: Sequential,
    images: np.ndarray,
    attack_fraction: float = 0.5,
    ridge: float = 1e-3,
) -> List[LayerLeakage]:
    """Quantify how much of the raw image leaks from every client-side layer.

    Parameters
    ----------
    client_model:
        The end-system's segment (e.g. ``L1_conv → L1_relu → L1_pool``).
    images:
        Raw images ``(N, C, H, W)``; the first ``attack_fraction`` of them
        train the reconstruction attack, the rest evaluate it.
    ridge:
        Regularization of the linear inverter.

    Returns
    -------
    One :class:`LayerLeakage` entry for the raw input (layer name
    ``"input"``) followed by one per client layer, in forward order.
    """
    images = np.asarray(images, dtype=np.float64)
    if images.ndim != 4:
        raise ValueError(f"expected (N, C, H, W) images, got shape {images.shape}")
    if not 0.0 < attack_fraction < 1.0:
        raise ValueError("attack_fraction must be in (0, 1)")
    split = int(round(images.shape[0] * attack_fraction))
    split = min(max(split, 2), images.shape[0] - 2)

    client_model.train(False)
    with no_grad():
        activations = client_model.forward_collect(Tensor(images))

    report: List[LayerLeakage] = []

    def analyse(layer_name: str, layer_activations: np.ndarray) -> LayerLeakage:
        if layer_activations.ndim == 4:
            rendered = activation_to_images(layer_activations)
        else:
            # Dense activations have no spatial structure; render as a
            # square-ish image purely for the correlation metric.
            side = int(np.ceil(np.sqrt(layer_activations.shape[1])))
            padded = np.zeros((layer_activations.shape[0], side * side),
                              dtype=layer_activations.dtype)
            padded[:, :layer_activations.shape[1]] = layer_activations
            rendered = padded.reshape(-1, side, side)
        correlation = (
            pixel_correlation(rendered, images)
            if rendered.shape[-1] <= images.shape[-1] and images.shape[-1] % rendered.shape[-1] == 0
            else 0.0
        )
        attack = LinearReconstructionAttack(ridge=ridge)
        attack.fit(layer_activations[:split], images[:split])
        metrics = attack.evaluate(layer_activations[split:], images[split:])
        return LayerLeakage(
            layer=layer_name,
            correlation=correlation,
            reconstruction_nmse=metrics["reconstruction_nmse"],
            reconstruction_psnr=metrics["reconstruction_psnr"],
            reconstruction_ssim=metrics["reconstruction_ssim"],
            activation_shape=tuple(layer_activations.shape[1:]),
        )

    report.append(analyse("input", images))
    for layer_name, activation in activations.items():
        report.append(analyse(layer_name, activation.data))
    return report
