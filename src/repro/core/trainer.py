"""Spatio-temporal split-learning trainer.

This is the orchestration layer that ties everything together: the *M*
end-systems holding the first ``L_i`` blocks and their private data
(:class:`~repro.core.end_system.EndSystem`), the centralized server
holding the remaining layers and the scheduling queue
(:class:`~repro.core.server.CentralServer`), and the simulated
geo-distributed network (:class:`~repro.simnet.transport.Transport`).

Both training modes run on the discrete-event engine in
:mod:`repro.core.engine` (uplink-arrival, server-step and
gradient-landing events over :class:`~repro.simnet.events.Simulator`):

* **synchronous** (the default; what Table I measures) — every round each
  end-system ships one batch and the server step is a *barrier event*
  scheduled at the round's last accepted arrival; gradients flow back
  before the next round-start event fires.  The simulated clock advances
  with the link latencies, so the run reports how long an epoch would
  take over a real WAN.
* **asynchronous** — every end-system keeps a bounded number of batches
  in flight and a dispatch event fires whenever the server is free and
  arrivals are pending.  Far-away end-systems complete fewer updates per
  unit time, which is the arrival bias the paper's queue-scheduling
  discussion warns about; the scheduling ablation quantifies it.

Bounded queues and backpressure
-------------------------------
``TrainingConfig.max_queue_size`` bounds the server's parameter-
scheduling queue; ``TrainingConfig.queue_backpressure`` decides what
happens at the bound.  Under ``"drop"`` an overflowing arrival is shed
and the originating end-system is notified so its pending activation
never leaks; under ``"block"`` an end-system defers its next send until
the queue has room (messages in flight count towards capacity), so the
queue never overflows.  The ``queue_congestion`` experiment sweeps both
policies against queue capacity under a 100+ client star.

Asymmetric links
----------------
Uplink (activations) and downlink (gradients) traffic travel over
*separate* :class:`~repro.simnet.link.Link` objects with independent
latency samples, drop draws and counters (see
:meth:`~repro.simnet.topology.GeoTopology.downlink`), and the transport
log reports per-direction drop counts.

Sharded multi-server deployments
--------------------------------
``TrainingConfig.num_servers > 1`` splits the end-systems across that
many :class:`~repro.cluster.shard.ServerShard` replicas (assignment via
``TrainingConfig.shard_assigner``), each with its own queue, arena and
optimizer, connected by a multi-hub star topology whose inter-server
links carry periodic weight-synchronization traffic
(``TrainingConfig.server_sync_every`` / ``server_sync_mode``; see
:mod:`repro.cluster`).  ``num_servers=1`` reduces exactly to the paper's
single central server — pinned to 1e-9 by the cluster equivalence tests.

Failure injection and failover
------------------------------
``TrainingConfig.failure_schedule`` (scripted crashes) or
``failure_mtbf_s``/``failure_mttr_s`` (stochastic churn) inject shard
crash/recovery events into the simulation; ``failover_policy`` decides
whether a dead shard's clients are rebalanced across the survivors
(reusing the pluggable assigners) or parked until recovery.  Work shed
by a crash rides the same leak-free ``notify_drop`` accounting as every
other loss, and the run's history reports crashes, recoveries,
reassignments and total downtime (see :mod:`repro.cluster.failover`).

Batched queue draining
----------------------
With ``TrainingConfig.server_batching`` (the default) each server step
drains every arrived activation message into one concatenated
forward/backward and a single optimizer step
(:meth:`~repro.core.server.CentralServer.process_batch`), and the
boundary gradient is scattered back per end-system.  Set
``server_batching=False`` to recover one-step-per-message processing,
which is what the staleness-sensitive ablations model.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import fields as dataclass_fields
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..backend import use_backend
from ..chaos import FaultPlan, MessageChaos, build_fault_plan
from ..cluster.assigner import get_assigner
from ..cluster.coordinator import ClusterCoordinator
from ..cluster.failover import (
    FailureModel,
    ScheduledFailures,
    StochasticFailures,
    get_failover_policy,
)
from ..cluster.shard import ServerShard
from ..data.datasets import Dataset
from ..data.loader import DataLoader
from ..data.transforms import Transform
from ..nn.serialization import pack_rng_state, restore_rng_state
from ..obs.plane import Observability
from ..obs.registry import Sample, samples_from_mapping
from ..simnet.topology import GeoTopology, multi_hub_star_topology, star_topology
from ..simnet.transport import Transport
from ..state import (
    CheckpointStore,
    ClientCheckpoint,
    FileCheckpointStore,
    MemoryCheckpointStore,
    RunCheckpoint,
    ShardCheckpoint,
)
from ..utils.logging import get_logger
from ..utils.perf import counters as perf_counters
from ..utils.rng import SeedSequence
from .config import TrainingConfig
from .end_system import EndSystem
from .engine import EngineStats, TrainingEngine
from .history import EpochRecord, TrainingHistory
from .scheduling import get_policy
from .server import CentralServer
from .split import SplitSpec

__all__ = ["SpatioTemporalTrainer"]

logger = get_logger("core.trainer")

#: TrafficLog counter fields a run checkpoint persists verbatim.
_TRAFFIC_COUNTERS = (
    "uplink_messages", "downlink_messages", "uplink_bytes", "downlink_bytes",
    "nack_messages", "nack_bytes", "sync_messages", "sync_bytes",
    "dropped_messages", "uplink_dropped", "downlink_dropped", "nack_dropped",
    "sync_dropped",
    "retried_messages", "uplink_retried", "downlink_retried",
    "corrupted_messages", "uplink_corrupted", "downlink_corrupted",
    "sync_corrupted", "duplicated_messages", "reordered_messages",
)


class SpatioTemporalTrainer:
    """End-to-end trainer for the paper's framework.

    Parameters
    ----------
    split_spec:
        Architecture and cut point shared by the deployment.
    client_datasets:
        One dataset per end-system (its private local shard).
    config:
        Training hyper-parameters.
    topology:
        Simulated network; defaults to a homogeneous star with 5 ms links.
    train_transform:
        Optional transform applied to every training batch on the
        end-systems (augmentation / normalization).
    eval_transform:
        Optional transform applied to evaluation batches (normalization
        only; defaults to ``train_transform`` if not given).
    checkpoint_store:
        Optional durable store for periodic shard checkpoints and
        epoch-boundary run checkpoints (see :mod:`repro.state`).  When
        omitted but ``config.checkpoint_every_s`` is set, a store is
        built automatically: file-backed if ``config.checkpoint_dir``
        names a directory, in-memory otherwise.
    """

    def __init__(
        self,
        split_spec: SplitSpec,
        client_datasets: Sequence[Dataset],
        config: Optional[TrainingConfig] = None,
        topology: Optional[GeoTopology] = None,
        train_transform: Optional[Transform] = None,
        eval_transform: Optional[Transform] = None,
        checkpoint_store: Optional[CheckpointStore] = None,
    ) -> None:
        if not client_datasets:
            raise ValueError("need at least one end-system dataset")
        self.split_spec = split_spec
        self.config = config if config is not None else TrainingConfig()
        self.num_end_systems = len(client_datasets)
        num_servers = self.config.num_servers
        if topology is None:
            if num_servers == 1:
                topology = star_topology(self.num_end_systems)
            else:
                # The assigner sees the clients' local sample counts (the
                # load proxy); a default star is latency-homogeneous.
                assignment = get_assigner(self.config.shard_assigner).assign(
                    self.num_end_systems,
                    num_servers,
                    loads=[len(dataset) for dataset in client_datasets],
                )
                topology = multi_hub_star_topology(
                    self.num_end_systems, num_servers, assignment=assignment
                )
        self.topology = topology
        if len(self.topology.end_systems) != self.num_end_systems:
            raise ValueError(
                f"topology has {len(self.topology.end_systems)} end-systems but "
                f"{self.num_end_systems} datasets were provided"
            )
        hubs = self.topology.servers
        if len(hubs) != num_servers:
            raise ValueError(
                f"topology has {len(hubs)} server hubs but config.num_servers="
                f"{num_servers}"
            )
        #: Per-message chaos (corruption/duplication/reordering) rides
        #: inside the transport; ``None`` when no message chaos is on.
        self.message_chaos: Optional[MessageChaos] = None
        if self.config.message_chaos_enabled:
            self.message_chaos = MessageChaos(
                corrupt_probability=self.config.chaos_corrupt_probability,
                duplicate_probability=self.config.chaos_duplicate_probability,
                reorder_probability=self.config.chaos_reorder_probability,
                reorder_delay_s=self.config.chaos_reorder_delay_s,
                duplicate_delay_s=self.config.chaos_duplicate_delay_s,
                # Distinct prime offset so the chaos streams never collide
                # with the link seeds or the failure/retry streams.
                seed=self.config.seed + 524_287,
            )
        self.transport = Transport(self.topology, chaos=self.message_chaos)
        self.train_transform = train_transform
        self.eval_transform = eval_transform if eval_transform is not None else train_transform

        seeds = SeedSequence(self.config.seed)
        self.end_systems: List[EndSystem] = []
        for system_id, dataset in enumerate(client_datasets):
            loader = DataLoader(
                dataset,
                batch_size=self.config.batch_size,
                shuffle=self.config.shuffle,
                drop_last=self.config.drop_last,
                transform=train_transform,
                seed=self.config.seed + system_id,
            )
            self.end_systems.append(
                EndSystem(
                    system_id=system_id,
                    loader=loader,
                    split_spec=split_spec,
                    optimizer_name=self.config.client_optimizer,
                    optimizer_kwargs=self.config.client_optimizer_kwargs,
                    seed=int(seeds.generator(f"client-{system_id}").integers(0, 2 ** 31)),
                )
            )

        # Every shard replica initializes from the same "server" seed
        # stream, so all server segments start with identical weights (they
        # are replicas of one logical server) and shard 0 is bit-identical
        # to the pre-cluster single server.
        server_seed = int(seeds.generator("server").integers(0, 2 ** 31))
        shards: List[ServerShard] = []
        for shard_index, hub in enumerate(hubs):
            server = CentralServer(
                split_spec=split_spec,
                optimizer_name=self.config.server_optimizer,
                optimizer_kwargs=self.config.server_optimizer_kwargs,
                loss_name=self.config.loss,
                queue_policy=get_policy(self.config.queue_policy),
                max_queue_size=self.config.max_queue_size,
                # Per-message processing never gathers, so staging would be a
                # pure copy tax; the arena rides with batched draining.
                use_arena=self.config.server_arena and self.config.server_batching,
                seed=server_seed,
            )
            shards.append(ServerShard(shard_index, server, hub))
        self._node_name_to_system = {
            end_system.node_name: end_system for end_system in self.end_systems
        }
        # Map end-system ids to topology node names positionally so custom
        # topologies with descriptive names (e.g. cities) still work.
        self._system_to_node = {
            end_system.system_id: node
            for end_system, node in zip(self.end_systems, self.topology.end_systems)
        }
        # The topology is the assignment's ground truth: each end-system
        # belongs to the shard whose hub its node hangs off.
        hub_to_shard = {hub: index for index, hub in enumerate(hubs)}
        assignment = {
            end_system.system_id: hub_to_shard[
                self.topology.hub_of(self._system_to_node[end_system.system_id])
            ]
            for end_system in self.end_systems
        }
        self.cluster = ClusterCoordinator(
            shards=shards,
            assignment=assignment,
            sync_every=self.config.server_sync_every,
            sync_mode=self.config.server_sync_mode,
        )
        #: Shard 0's server — the *only* server with ``num_servers=1``
        #: (back-compat alias used throughout the single-server tests).
        self.server = self.cluster.shards[0].server
        failure_model = self._build_failure_model()
        #: Timeline chaos plan (flaps, churn, partitions, stragglers,
        #: moves) consumed by the engine; ``None`` without chaos knobs.
        self.fault_plan: Optional[FaultPlan] = build_fault_plan(
            self.config, self.num_end_systems
        )
        if checkpoint_store is None and self.config.checkpoint_every_s is not None:
            if self.config.checkpoint_dir is not None:
                checkpoint_store = FileCheckpointStore(self.config.checkpoint_dir)
            else:
                checkpoint_store = MemoryCheckpointStore()
        self.checkpoint_store = checkpoint_store
        #: Per-run observability plane (the inert ``NULL_OBS`` unless
        #: ``config.obs_enabled``): metrics registry + trace sampler +
        #: JSONL sink, flushed by the engine's ``PRIORITY_OBS`` events.
        self.obs = Observability.from_config(self.config)
        self._register_obs_collectors()
        self.engine = TrainingEngine(
            end_systems=self.end_systems,
            transport=self.transport,
            system_to_node=self._system_to_node,
            config=self.config,
            cluster=self.cluster,
            failure_model=failure_model,
            failover=(
                get_failover_policy(
                    self.config.failover_policy,
                    assigner=self.config.failover_assigner,
                )
                if failure_model is not None
                else None
            ),
            checkpoint_store=self.checkpoint_store,
            fault_plan=self.fault_plan,
            obs=self.obs,
        )
        self._clock = 0.0
        #: First epoch index :meth:`train` will run — advanced past the
        #: completed epochs by :meth:`restore_run_checkpoint`.
        self._start_epoch = 0

    def _build_failure_model(self) -> Optional[FailureModel]:
        """Instantiate the configured failure-injection model (or ``None``).

        A scripted timeline wins over stochastic churn (the config
        rejects setting both); the stochastic streams are derived from
        the master seed so a run's failure pattern is reproducible.
        """
        if not self.config.failures_enabled:
            return None
        if self.config.failure_schedule:
            return ScheduledFailures(self.config.failure_schedule)
        return StochasticFailures(
            mtbf_s=self.config.failure_mtbf_s,
            mttr_s=self.config.failure_mttr_s,
            seed=self.config.seed + 104729,
        )

    def _register_obs_collectors(self) -> None:
        """Adapt the legacy telemetry views into registry collectors.

        The dicts stay the source of truth (histories keep reading them
        directly); the registry re-exports them as canonical samples so
        one JSONL stream carries everything ``repro.obs report`` needs —
        including the nine drop-balance series that
        :func:`repro.obs.invariants.drop_balance_from_metrics` rebuilds
        the leak-freedom invariant from.  The engine registers its own
        ``engine.*`` collector when constructed.
        """
        if not self.obs.enabled:
            return
        registry = self.obs.registry

        def collect_traffic() -> List[Sample]:
            return samples_from_mapping("traffic", self.transport.log.summary())

        def collect_cluster() -> List[Sample]:
            return samples_from_mapping(
                "cluster", {"queue_dropped": self.cluster.queue_dropped})

        def collect_clients() -> List[Sample]:
            rows = samples_from_mapping("clients", {
                "drops_notified": sum(
                    es.drops_notified for es in self.end_systems),
            })
            rows.extend(samples_from_mapping("clients", {
                "pending_batches": sum(
                    es.pending_batches for es in self.end_systems),
            }, kind="gauge"))
            return rows

        def collect_shards() -> List[Sample]:
            rows: List[Sample] = []
            for shard in self.cluster.shards:
                rows.extend(samples_from_mapping(
                    "shard", shard.stats(),
                    labels={"shard": shard.shard_id}))
            return rows

        # The perf counters are process-global; baseline them at wiring
        # time so the exported ``perf.*`` series counts only this run
        # (and same-seed runs in one process export identical metrics).
        perf_baseline = perf_counters.snapshot()

        def collect_perf() -> List[Sample]:
            snapshot = perf_counters.snapshot()
            deltas = {
                key: value - perf_baseline.get(key, 0)
                for key, value in snapshot.items()
                if isinstance(value, (int, float)) and not isinstance(value, bool)
            }
            return samples_from_mapping("perf", deltas)

        registry.register_collector(collect_traffic)
        registry.register_collector(collect_cluster)
        registry.register_collector(collect_clients)
        registry.register_collector(collect_shards)
        registry.register_collector(collect_perf)

    def _finalize_obs(self) -> None:
        """End-of-run metrics flush plus the optional on-disk export."""
        if not self.obs.enabled:
            return
        self.obs.flush(self.engine.clock)
        if self.config.obs_dir is not None:
            metrics_path, trace_path = self.obs.write(self.config.obs_dir)
            logger.info("observability export: %s, %s",
                        metrics_path, trace_path)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @property
    def simulated_time(self) -> float:
        """Current simulated wall-clock time in seconds."""
        return self.engine.clock

    def _epoch_iterators(self, epoch: int) -> Dict[int, Iterator[Tuple[np.ndarray, np.ndarray]]]:
        return {
            end_system.system_id: end_system.batches(epoch)
            for end_system in self.end_systems
        }

    def _queue_stats(self) -> Dict[str, object]:
        """Run-level queue/engine statistics attached to every history.

        With one shard the headline numbers equal the single queue's; a
        multi-shard run rolls every shard's queue up (summed drops,
        count-weighted mean wait, Jain's index over the merged per-system
        sample counts) and attaches the per-shard breakdown plus the
        inter-server synchronization counters.
        """
        stats = {
            "mean_waiting_time_s": self.cluster.mean_waiting_time(),
            "fairness_index": self.cluster.fairness_index(),
            "dropped": self.cluster.queue_dropped,
            "processed_per_system": self.cluster.processed_per_system(),
            "blocked_sends": self.engine.stats.blocked_sends,
            "engine_events": self.engine.stats.events_processed,
            "mean_nack_delay_s": self.engine.stats.mean_nack_delay_s,
            "num_servers": self.cluster.num_shards,
        }
        if self.cluster.num_shards > 1:
            stats["per_shard"] = self.cluster.shard_stats()
            stats["weight_syncs"] = self.engine.stats.weight_syncs
            stats["sync_messages"] = self.engine.stats.sync_messages
        if self.engine.failure_model is not None:
            engine_stats = self.engine.stats
            stats["shard_crashes"] = engine_stats.shard_crashes
            stats["shard_recoveries"] = engine_stats.shard_recoveries
            stats["clients_reassigned"] = engine_stats.clients_reassigned
            stats["failover_dropped"] = engine_stats.failover_dropped
            # Completed outages plus the tail of any outage still open
            # when the run ended.
            stats["total_downtime_s"] = sum(
                shard.downtime_s
                + (
                    max(0.0, self.engine.clock - shard.down_since)
                    if shard.down_since is not None
                    else 0.0
                )
                for shard in self.cluster.shards
            )
            # Recovery-point metric: how much simulated time / how many
            # processed samples each crash rolled back to its restore point.
            shards = self.cluster.shards
            stats["rpo_lost_s"] = sum(shard.rpo_lost_s for shard in shards)
            stats["rpo_lost_samples"] = sum(shard.rpo_lost_samples for shard in shards)
            recoveries = engine_stats.shard_recoveries
            stats["mean_rpo_s_per_recovery"] = (
                stats["rpo_lost_s"] / recoveries if recoveries else 0.0
            )
            stats["recoveries_from_checkpoint"] = sum(
                shard.recoveries_from_checkpoint for shard in shards
            )
            stats["recoveries_from_sync"] = sum(
                shard.recoveries_from_sync for shard in shards
            )
            stats["recoveries_from_initial"] = sum(
                shard.recoveries_from_initial for shard in shards
            )
        if self.config.reliable_delivery:
            engine_stats = self.engine.stats
            stats["retries"] = engine_stats.retries
            stats["gave_up"] = engine_stats.gave_up
            stats["deduped"] = engine_stats.deduped
            stats["quorum_syncs"] = engine_stats.quorum_syncs
            stats["sync_timeouts"] = engine_stats.sync_timeouts
        if self.config.chaos_enabled:
            log = self.transport.log
            stats["chaos_events"] = self.engine.stats.chaos_events
            # Chaos duplication dedups at the receiver even without the
            # reliability layer, so the counter surfaces in both blocks.
            stats["deduped"] = self.engine.stats.deduped
            stats["corrupted_messages"] = log.corrupted_messages
            stats["duplicated_messages"] = log.duplicated_messages
            stats["reordered_messages"] = log.reordered_messages
        if self.checkpoint_store is not None:
            stats["checkpoints_written"] = self.engine.stats.checkpoints_written
            stats["checkpoint_bytes"] = self.checkpoint_store.bytes_written
            stats["checkpoint_write_wall_s"] = self.checkpoint_store.write_wall_s
        if self.obs.enabled:
            # Only when the plane is on — an obs-off history must be
            # byte-identical to a pre-obs run.
            stats["observability"] = {
                "metric_rows": len(self.obs.rows),
                "flushes": self.obs.flushes,
                "flush_wall_s": self.obs.flush_wall_s,
                "trace_events": len(self.obs.tracer.events),
                "trace_emitted": self.obs.tracer.emitted,
                "trace_dropped": self.obs.tracer.dropped,
            }
        return stats

    def _backend_context(self):
        """Install ``config.compute_backend`` for the duration of a run.

        The selection is scoped (``use_backend``) rather than a
        process-global ``set_backend`` at construction time, so two
        trainers with different backend configs can run in one process
        without the last-constructed one winning.
        """
        if self.config.compute_backend is None:
            return contextlib.nullcontext()
        return use_backend(self.config.compute_backend)

    def train(self, test_dataset: Optional[Dataset] = None,
              epochs: Optional[int] = None,
              evaluate_every: int = 1,
              on_epoch_end: Optional[Callable[[EpochRecord], None]] = None,
              ) -> TrainingHistory:
        """Run training and return the full history.

        Parameters
        ----------
        test_dataset:
            Optional held-out dataset evaluated every ``evaluate_every``
            epochs (and always after the final epoch).
        epochs:
            Override for ``config.epochs``.
        on_epoch_end:
            Optional observer called with each epoch's
            :class:`~repro.core.history.EpochRecord` after the epoch's
            run checkpoint (if any) has been written — the run-server
            worker uses it to publish live progress.  It must not mutate
            training state.
        """
        with self._backend_context():
            return self._train(test_dataset, epochs, evaluate_every, on_epoch_end)

    def _train(self, test_dataset: Optional[Dataset],
               epochs: Optional[int],
               evaluate_every: int,
               on_epoch_end: Optional[Callable[[EpochRecord], None]] = None,
               ) -> TrainingHistory:
        epochs = epochs if epochs is not None else self.config.epochs
        history = TrainingHistory(config=self.config.to_dict())
        last_evaluation: Optional[Dict[str, object]] = None
        for epoch in range(self._start_epoch, epochs):
            start = time.perf_counter()
            epoch_start_clock = self.engine.clock
            iterators = self._epoch_iterators(epoch)
            if self.config.mode == "synchronous":
                tracker = self.engine.run_synchronous_epoch(iterators)
            else:
                tracker = self.engine.run_asynchronous(iterators)
            self._clock = self.engine.clock
            wall = time.perf_counter() - start

            averages = tracker.averages()
            record = EpochRecord(
                epoch=epoch,
                train_loss=averages.get("loss", float("nan")),
                train_accuracy=averages.get("accuracy", 0.0),
                simulated_time_s=self.engine.clock - epoch_start_clock,
                wall_time_s=wall,
                batches=self.cluster.batches_processed,
                samples=self.cluster.samples_processed,
            )
            should_evaluate = test_dataset is not None and (
                (epoch + 1) % max(evaluate_every, 1) == 0 or epoch == epochs - 1
            )
            if should_evaluate:
                last_evaluation = self.evaluate(test_dataset)
                record.test_loss = last_evaluation["loss"]
                record.test_accuracy = last_evaluation["accuracy"]
            history.append(record)
            self._write_run_checkpoint(epoch + 1)
            if on_epoch_end is not None:
                on_epoch_end(record)
            logger.info(
                "epoch %d: train_acc=%.4f train_loss=%.4f test_acc=%s",
                epoch, record.train_accuracy, record.train_loss,
                f"{record.test_accuracy:.4f}" if record.test_accuracy is not None else "n/a",
            )

        self._finalize_obs()
        history.traffic = self.transport.log.summary()
        history.queue_stats = self._queue_stats()
        if test_dataset is not None:
            # The final epoch always evaluates, so reuse its result instead
            # of re-running the full test set a second time.
            if last_evaluation is None:
                last_evaluation = self.evaluate(test_dataset)
            history.per_system_accuracy = last_evaluation["per_system_accuracy"]
        return history

    def evaluate(self, dataset: Dataset, batch_size: Optional[int] = None) -> Dict[str, object]:
        """Evaluate the deployed split model on a held-out dataset.

        Every end-system evaluates the full test set through *its own*
        client segment followed by its shard's server segment (the one
        shared server when ``num_servers=1``); the headline accuracy is
        the mean over end-systems (they would each serve their own
        patients in the paper's scenario), and the per-system values are
        reported for fairness analysis.
        """
        with self._backend_context():
            return self._evaluate(dataset, batch_size)

    def _evaluate(self, dataset: Dataset, batch_size: Optional[int]) -> Dict[str, object]:
        images, labels = dataset.arrays()
        if self.eval_transform is not None:
            images = self.eval_transform(images)
        batch_size = batch_size or max(self.config.batch_size, 64)
        per_system_accuracy: Dict[int, float] = {}
        per_system_loss: Dict[int, float] = {}
        for end_system in self.end_systems:
            shard_server = self.cluster.shard_of(end_system.system_id).server
            correct_weighted = 0.0
            loss_weighted = 0.0
            total = 0
            for start in range(0, images.shape[0], batch_size):
                stop = start + batch_size
                batch_images = images[start:stop]
                batch_labels = labels[start:stop]
                smashed = end_system.forward_inference(batch_images)
                metrics = shard_server.evaluate(smashed, batch_labels)
                correct_weighted += metrics["accuracy"] * batch_images.shape[0]
                loss_weighted += metrics["loss"] * batch_images.shape[0]
                total += batch_images.shape[0]
            per_system_accuracy[end_system.system_id] = correct_weighted / total
            per_system_loss[end_system.system_id] = loss_weighted / total
        return {
            "accuracy": float(np.mean(list(per_system_accuracy.values()))),
            "loss": float(np.mean(list(per_system_loss.values()))),
            "per_system_accuracy": per_system_accuracy,
            "per_system_loss": per_system_loss,
        }

    def train_time_budget(self, simulated_seconds: float,
                          test_dataset: Optional[Dataset] = None) -> TrainingHistory:
        """Asynchronous training until the simulated clock reaches a budget.

        End-systems cycle through their local data indefinitely; the run
        stops once ``simulated_seconds`` of simulated wall-clock time have
        elapsed.  This is the regime where the paper's arrival-bias warning
        bites: within a fixed time window a nearby end-system completes far
        more updates than a remote one, and the scheduling policy decides
        how the server divides its attention.
        """
        if simulated_seconds <= 0:
            raise ValueError("simulated_seconds must be positive")
        if self.config.mode != "asynchronous":
            raise ValueError("train_time_budget requires mode='asynchronous'")

        def cycling_batches(end_system: EndSystem):
            epoch = 0
            while True:
                for batch in end_system.batches(epoch):
                    yield batch
                epoch += 1

        iterators = {
            end_system.system_id: cycling_batches(end_system)
            for end_system in self.end_systems
        }
        history = TrainingHistory(config=self.config.to_dict())
        start_clock = self.engine.clock
        start = time.perf_counter()
        with self._backend_context():
            tracker = self.engine.run_asynchronous(
                iterators, stop_time=start_clock + simulated_seconds
            )
        self._clock = self.engine.clock
        averages = tracker.averages()
        record = EpochRecord(
            epoch=0,
            train_loss=averages.get("loss", float("nan")),
            train_accuracy=averages.get("accuracy", 0.0),
            simulated_time_s=self.engine.clock - start_clock,
            wall_time_s=time.perf_counter() - start,
            batches=self.cluster.batches_processed,
            samples=self.cluster.samples_processed,
        )
        if test_dataset is not None:
            evaluation = self.evaluate(test_dataset)
            record.test_loss = evaluation["loss"]
            record.test_accuracy = evaluation["accuracy"]
            history.per_system_accuracy = evaluation["per_system_accuracy"]
        history.append(record)
        self._finalize_obs()
        history.traffic = self.transport.log.summary()
        history.queue_stats = self._queue_stats()
        return history

    # ------------------------------------------------------------------ #
    # Durable run checkpoints (coordinator restart)
    # ------------------------------------------------------------------ #
    def _link_items(self) -> List[Tuple[str, object]]:
        """Every live link under a stable key for checkpoint round-trips.

        Keys are ``up::<node>`` / ``down::<node>`` for the per-client
        star spokes (the downlink entry only exists when it is a
        dedicated object) and ``sync::<src>::<dst>`` per directional
        inter-server edge.
        """
        items: List[Tuple[str, object]] = []
        for node in self.topology.end_systems:
            uplink = self.topology.uplink(node)
            items.append((f"up::{node}", uplink))
            downlink = self.topology.downlink(node)
            if downlink is not uplink:
                items.append((f"down::{node}", downlink))
        servers = self.topology.servers
        for i, src in enumerate(servers):
            for dst in servers[i + 1:]:
                if not self.topology.graph.has_edge(src, dst):
                    continue
                forward = self.topology.inter_server_link(src, dst)
                items.append((f"sync::{src}::{dst}", forward))
                backward = self.topology.inter_server_link(dst, src)
                if backward is not forward:
                    items.append((f"sync::{dst}::{src}", backward))
        return items

    def _write_run_checkpoint(self, completed_epochs: int) -> None:
        if self.checkpoint_store is None or not self.engine._checkpoint_enabled():
            return
        self.checkpoint_store.save_run(self._capture_run_checkpoint(completed_epochs))

    def _capture_run_checkpoint(self, completed_epochs: int) -> RunCheckpoint:
        """Snapshot the entire deployment at an epoch boundary.

        Epoch boundaries are quiescent — no in-flight messages, drained
        queues, no pending NACKs — so the capture needs no transit
        state, only weights, optimizer slots, counters and every live
        RNG stream position.
        """
        engine = self.engine
        log = self.transport.log
        traffic: Dict[str, object] = {
            name: getattr(log, name) for name in _TRAFFIC_COUNTERS
        }
        traffic["transit_times"] = list(log.transit_times)
        link_states = {
            key: {
                "rng": pack_rng_state(link._rng),
                "messages_sent": link.messages_sent,
                "messages_dropped": link.messages_dropped,
                "bytes_sent": link.bytes_sent,
            }
            for key, link in self._link_items()
        }
        node_health = {
            name: self.topology.is_up(name)
            for name in list(self.topology.end_systems) + list(self.topology.servers)
        }
        failure_model = engine.failure_model
        rng_streams: Dict[str, np.ndarray] = {}
        if engine._retry_rng is not None:
            rng_streams["retry"] = pack_rng_state(engine._retry_rng)
        return RunCheckpoint(
            epoch=int(completed_epochs),
            engine_clock=float(engine.clock),
            config=self.config.to_dict(),
            engine_stats=engine.stats.as_dict(),
            shards=[
                ShardCheckpoint.capture(
                    runtime.shard,
                    sim_time=engine.clock,
                    round_index=runtime.round_index,
                    generation=runtime.generation,
                )
                for runtime in engine._runtimes
            ],
            clients=[ClientCheckpoint.capture(es) for es in self.end_systems],
            assignment=dict(self.cluster.assignment),
            original_assignment=dict(self.cluster.original_assignment),
            last_sync_snapshot=self.cluster.last_sync_snapshot,
            last_sync_time_s=self.cluster.last_sync_time_s,
            syncs_completed=self.cluster.syncs_completed,
            node_health=node_health,
            traffic=traffic,
            link_states=link_states,
            rng_streams=rng_streams,
            failure_state=(
                None if failure_model is None else failure_model.state_dict()
            ),
            chaos_state=(
                None if self.fault_plan is None else self.fault_plan.state_dict()
            ),
            message_chaos_state=(
                None if self.message_chaos is None
                else self.message_chaos.state_dict()
            ),
            obs_instruments=(
                self.obs.instruments_state() if self.obs.enabled else None
            ),
        )

    def _restore_engine_stats(self, state: Dict[str, object]) -> None:
        stats = self.engine.stats
        for field_info in dataclass_fields(EngineStats):
            if field_info.name == "nack_delay_total_s":
                continue
            if field_info.name in state:
                setattr(stats, field_info.name, state[field_info.name])
        # ``as_dict`` only exposes the mean; rebuild the accumulator so the
        # resumed run keeps averaging over the full nack population.
        stats.nack_delay_total_s = (
            float(state.get("mean_nack_delay_s", 0.0)) * stats.nacks_sent
        )

    def restore_run_checkpoint(self, run: RunCheckpoint) -> None:
        """Rebuild this trainer's runtime state from a run checkpoint.

        The trainer must have been constructed with the *same* config and
        topology shape the checkpoint was captured under (that is what
        :meth:`resume_from_store` guarantees); this method then restores
        shard and client snapshots, the client→shard assignment (replaying
        failover moves through the topology), node health, link RNG
        streams and counters, traffic/engine statistics, coordinator sync
        state, and the failure model's timeline so the resumed run is
        replay-exact from the next epoch onward.
        """
        engine = self.engine
        if len(run.shards) != self.cluster.num_shards:
            raise ValueError(
                f"checkpoint has {len(run.shards)} shards but this deployment "
                f"has {self.cluster.num_shards}"
            )
        if len(run.clients) != len(self.end_systems):
            raise ValueError(
                f"checkpoint has {len(run.clients)} clients but this deployment "
                f"has {len(self.end_systems)}"
            )
        if run.original_assignment != self.cluster.original_assignment:
            raise ValueError(
                "checkpoint was captured under a different initial client "
                "assignment; rebuild the trainer with the same config/topology"
            )
        for checkpoint, runtime in zip(run.shards, engine._runtimes):
            checkpoint.restore(runtime.shard, include_counters=True)
            runtime.round_index = checkpoint.round_index
            runtime.generation = checkpoint.generation
            runtime.last_checkpoint_s = float(run.engine_clock)
        for checkpoint, end_system in zip(run.clients, self.end_systems):
            checkpoint.restore(end_system)
        # Replay failover moves so topology routing and coordinator
        # bookkeeping match the checkpoint (hooks are inert between runs).
        moves = {
            system_id: shard_id
            for system_id, shard_id in run.assignment.items()
            if self.cluster.assignment.get(system_id) != shard_id
        }
        if moves:
            engine._apply_reassignment(None, moves)
        # Engine statistics restore *after* the replayed moves so the
        # checkpointed counters win over the replay's side effects.
        self._restore_engine_stats(run.engine_stats)
        engine.clock = float(run.engine_clock)
        self._clock = engine.clock
        for name in _TRAFFIC_COUNTERS:
            setattr(self.transport.log, name, int(run.traffic[name]))
        self.transport.log.transit_times = [
            float(value) for value in run.traffic["transit_times"]
        ]
        for name, up in run.node_health.items():
            self.topology.set_node_up(name, bool(up))
        links = dict(self._link_items())
        for key, state in run.link_states.items():
            link = links.get(key)
            if link is None:
                raise ValueError(f"checkpoint references unknown link {key!r}")
            link.messages_sent = int(state["messages_sent"])
            link.messages_dropped = int(state["messages_dropped"])
            link.bytes_sent = int(state["bytes_sent"])
            restore_rng_state(link._rng, np.asarray(state["rng"], dtype=np.uint8))
        self.cluster.last_sync_snapshot = (
            None
            if run.last_sync_snapshot is None
            else {
                name: np.array(value, copy=True)
                for name, value in run.last_sync_snapshot.items()
            }
        )
        self.cluster.last_sync_time_s = (
            None if run.last_sync_time_s is None else float(run.last_sync_time_s)
        )
        self.cluster.syncs_completed = int(run.syncs_completed)
        if run.failure_state is not None and engine.failure_model is not None:
            engine.failure_model.load_state_dict(run.failure_state)
        if run.chaos_state is not None and self.fault_plan is not None:
            self.fault_plan.load_state_dict(run.chaos_state)
        if run.message_chaos_state is not None and self.message_chaos is not None:
            self.message_chaos.load_state_dict(run.message_chaos_state)
        packed_retry = run.rng_streams.get("retry")
        if packed_retry is not None and engine._retry_rng is not None:
            restore_rng_state(
                engine._retry_rng, np.asarray(packed_retry, dtype=np.uint8)
            )
        if run.obs_instruments:
            self.obs.restore_instruments(run.obs_instruments)
        self._start_epoch = int(run.epoch)

    @classmethod
    def resume_from_store(
        cls,
        store: CheckpointStore,
        split_spec: SplitSpec,
        client_datasets: Sequence[Dataset],
        *,
        topology: Optional[GeoTopology] = None,
        train_transform: Optional[Transform] = None,
        eval_transform: Optional[Transform] = None,
    ) -> "SpatioTemporalTrainer":
        """Rebuild a trainer from the newest intact run checkpoint.

        This is the coordinator-restart path: everything mutable comes
        from the store (the config rides inside the checkpoint), while
        the immutable inputs — architecture and datasets — are passed in
        by the caller.  Calling :meth:`train` on the result resumes at
        the first incomplete epoch and is replay-exact against an
        uninterrupted run.
        """
        run = store.latest_run()
        if run is None:
            raise ValueError("checkpoint store holds no intact run checkpoint")
        config = TrainingConfig.from_dict(run.config)
        trainer = cls(
            split_spec,
            client_datasets,
            config=config,
            topology=topology,
            train_transform=train_transform,
            eval_transform=eval_transform,
            checkpoint_store=store,
        )
        trainer.restore_run_checkpoint(run)
        return trainer

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def per_system_update_counts(self) -> Dict[int, int]:
        """Number of gradient updates each end-system has applied so far."""
        return {
            end_system.system_id: end_system.updates_applied
            for end_system in self.end_systems
        }

    def state_dict(self) -> Dict[str, Dict[str, np.ndarray]]:
        """Checkpoint of every server shard and every end-system segment.

        Single-server deployments keep the legacy ``"server"`` key;
        sharded deployments store one ``"server_shard_{k}"`` entry per
        replica.
        """
        if self.cluster.num_shards == 1:
            state = {"server": self.server.state_dict()}
        else:
            state = {
                f"server_shard_{shard.shard_id}": shard.server.state_dict()
                for shard in self.cluster.shards
            }
        for end_system in self.end_systems:
            state[f"end_system_{end_system.system_id}"] = end_system.state_dict()
        return state

    def load_state_dict(self, state: Dict[str, Dict[str, np.ndarray]]) -> None:
        """Restore a checkpoint produced by :meth:`state_dict`."""
        if self.cluster.num_shards == 1:
            self.server.load_state_dict(state["server"])
        else:
            for shard in self.cluster.shards:
                shard.server.load_state_dict(state[f"server_shard_{shard.shard_id}"])
        for end_system in self.end_systems:
            end_system.load_state_dict(state[f"end_system_{end_system.system_id}"])
