"""Spatio-temporal split-learning trainer.

This is the orchestration layer that ties everything together: the *M*
end-systems holding the first ``L_i`` blocks and their private data
(:class:`~repro.core.end_system.EndSystem`), the centralized server
holding the remaining layers and the scheduling queue
(:class:`~repro.core.server.CentralServer`), and the simulated
geo-distributed network (:class:`~repro.simnet.transport.Transport`).

Two training modes are provided:

* **synchronous** (the default; what Table I measures) — every round each
  end-system ships one batch, the server drains the queue in policy order,
  and gradients flow back before the next round starts.  The simulated
  clock still advances with the link latencies, so the run reports how
  long an epoch would take over a real WAN.
* **asynchronous** — an event-driven loop where every end-system keeps a
  bounded number of batches in flight and the server processes arrivals
  as they come.  Far-away end-systems complete fewer updates per unit
  time, which is the arrival bias the paper's queue-scheduling discussion
  warns about; the scheduling ablation quantifies it.

Batched queue draining
----------------------
With ``TrainingConfig.server_batching`` (the default) the server empties
its scheduling queue through
:meth:`~repro.core.server.CentralServer.process_batch`: every pending
activation message is concatenated into one server-segment
forward/backward and a single optimizer step, and the boundary gradient
is scattered back per end-system.  Under heavy multi-client traffic this
amortises the per-message overhead of the NumPy substrate — the server's
cost scales with the number of *samples*, not the number of *messages*.
Set ``server_batching=False`` to recover the original one-step-per-message
behaviour (one optimizer step per queued message), which is what the
staleness-sensitive ablations model.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.datasets import Dataset
from ..data.loader import DataLoader
from ..data.transforms import Transform
from ..nn.metrics import MetricTracker, accuracy
from ..simnet.topology import GeoTopology, star_topology
from ..simnet.transport import Transport
from ..utils.logging import get_logger
from ..utils.rng import SeedSequence
from .config import TrainingConfig
from .end_system import EndSystem
from .history import EpochRecord, TrainingHistory
from .messages import ActivationMessage
from .scheduling import get_policy
from .server import CentralServer
from .split import SplitSpec

__all__ = ["SpatioTemporalTrainer"]

logger = get_logger("core.trainer")


class SpatioTemporalTrainer:
    """End-to-end trainer for the paper's framework.

    Parameters
    ----------
    split_spec:
        Architecture and cut point shared by the deployment.
    client_datasets:
        One dataset per end-system (its private local shard).
    config:
        Training hyper-parameters.
    topology:
        Simulated network; defaults to a homogeneous star with 5 ms links.
    train_transform:
        Optional transform applied to every training batch on the
        end-systems (augmentation / normalization).
    eval_transform:
        Optional transform applied to evaluation batches (normalization
        only; defaults to ``train_transform`` if not given).
    """

    def __init__(
        self,
        split_spec: SplitSpec,
        client_datasets: Sequence[Dataset],
        config: Optional[TrainingConfig] = None,
        topology: Optional[GeoTopology] = None,
        train_transform: Optional[Transform] = None,
        eval_transform: Optional[Transform] = None,
    ) -> None:
        if not client_datasets:
            raise ValueError("need at least one end-system dataset")
        self.split_spec = split_spec
        self.config = config if config is not None else TrainingConfig()
        self.num_end_systems = len(client_datasets)
        self.topology = (
            topology if topology is not None else star_topology(self.num_end_systems)
        )
        if len(self.topology.end_systems) != self.num_end_systems:
            raise ValueError(
                f"topology has {len(self.topology.end_systems)} end-systems but "
                f"{self.num_end_systems} datasets were provided"
            )
        self.transport = Transport(self.topology)
        self.train_transform = train_transform
        self.eval_transform = eval_transform if eval_transform is not None else train_transform

        seeds = SeedSequence(self.config.seed)
        self.end_systems: List[EndSystem] = []
        for system_id, dataset in enumerate(client_datasets):
            loader = DataLoader(
                dataset,
                batch_size=self.config.batch_size,
                shuffle=self.config.shuffle,
                drop_last=self.config.drop_last,
                transform=train_transform,
                seed=self.config.seed + system_id,
            )
            self.end_systems.append(
                EndSystem(
                    system_id=system_id,
                    loader=loader,
                    split_spec=split_spec,
                    optimizer_name=self.config.client_optimizer,
                    optimizer_kwargs=self.config.client_optimizer_kwargs,
                    seed=int(seeds.generator(f"client-{system_id}").integers(0, 2 ** 31)),
                )
            )

        self.server = CentralServer(
            split_spec=split_spec,
            optimizer_name=self.config.server_optimizer,
            optimizer_kwargs=self.config.server_optimizer_kwargs,
            loss_name=self.config.loss,
            queue_policy=get_policy(self.config.queue_policy),
            seed=int(seeds.generator("server").integers(0, 2 ** 31)),
        )
        self._clock = 0.0
        self._node_name_to_system = {
            end_system.node_name: end_system for end_system in self.end_systems
        }
        # Map end-system ids to topology node names positionally so custom
        # topologies with descriptive names (e.g. cities) still work.
        self._system_to_node = {
            end_system.system_id: node
            for end_system, node in zip(self.end_systems, self.topology.end_systems)
        }

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @property
    def simulated_time(self) -> float:
        """Current simulated wall-clock time in seconds."""
        return self._clock

    def train(self, test_dataset: Optional[Dataset] = None,
              epochs: Optional[int] = None,
              evaluate_every: int = 1) -> TrainingHistory:
        """Run training and return the full history.

        Parameters
        ----------
        test_dataset:
            Optional held-out dataset evaluated every ``evaluate_every``
            epochs (and always after the final epoch).
        epochs:
            Override for ``config.epochs``.
        """
        epochs = epochs if epochs is not None else self.config.epochs
        history = TrainingHistory(config=self.config.to_dict())
        for epoch in range(epochs):
            start = time.perf_counter()
            epoch_start_clock = self._clock
            if self.config.mode == "synchronous":
                tracker = self._train_epoch_synchronous(epoch)
            else:
                tracker = self._train_epoch_asynchronous(epoch)
            wall = time.perf_counter() - start

            averages = tracker.averages()
            record = EpochRecord(
                epoch=epoch,
                train_loss=averages.get("loss", float("nan")),
                train_accuracy=averages.get("accuracy", 0.0),
                simulated_time_s=self._clock - epoch_start_clock,
                wall_time_s=wall,
                batches=self.server.batches_processed,
                samples=self.server.samples_processed,
            )
            should_evaluate = test_dataset is not None and (
                (epoch + 1) % max(evaluate_every, 1) == 0 or epoch == epochs - 1
            )
            if should_evaluate:
                evaluation = self.evaluate(test_dataset)
                record.test_loss = evaluation["loss"]
                record.test_accuracy = evaluation["accuracy"]
            history.append(record)
            logger.info(
                "epoch %d: train_acc=%.4f train_loss=%.4f test_acc=%s",
                epoch, record.train_accuracy, record.train_loss,
                f"{record.test_accuracy:.4f}" if record.test_accuracy is not None else "n/a",
            )

        history.traffic = self.transport.log.summary()
        history.queue_stats = {
            "mean_waiting_time_s": self.server.queue.mean_waiting_time,
            "fairness_index": self.server.queue.fairness_index(),
            "dropped": self.server.queue.dropped,
        }
        if test_dataset is not None:
            evaluation = self.evaluate(test_dataset)
            history.per_system_accuracy = evaluation["per_system_accuracy"]
        return history

    def evaluate(self, dataset: Dataset, batch_size: Optional[int] = None) -> Dict[str, object]:
        """Evaluate the deployed split model on a held-out dataset.

        Every end-system evaluates the full test set through *its own*
        client segment followed by the shared server segment; the headline
        accuracy is the mean over end-systems (they would each serve their
        own patients in the paper's scenario), and the per-system values
        are reported for fairness analysis.
        """
        images, labels = dataset.arrays()
        if self.eval_transform is not None:
            images = self.eval_transform(images)
        batch_size = batch_size or max(self.config.batch_size, 64)
        per_system_accuracy: Dict[int, float] = {}
        per_system_loss: Dict[int, float] = {}
        for end_system in self.end_systems:
            correct_weighted = 0.0
            loss_weighted = 0.0
            total = 0
            for start in range(0, images.shape[0], batch_size):
                stop = start + batch_size
                batch_images = images[start:stop]
                batch_labels = labels[start:stop]
                smashed = end_system.forward_inference(batch_images)
                metrics = self.server.evaluate(smashed, batch_labels)
                correct_weighted += metrics["accuracy"] * batch_images.shape[0]
                loss_weighted += metrics["loss"] * batch_images.shape[0]
                total += batch_images.shape[0]
            per_system_accuracy[end_system.system_id] = correct_weighted / total
            per_system_loss[end_system.system_id] = loss_weighted / total
        return {
            "accuracy": float(np.mean(list(per_system_accuracy.values()))),
            "loss": float(np.mean(list(per_system_loss.values()))),
            "per_system_accuracy": per_system_accuracy,
            "per_system_loss": per_system_loss,
        }

    # ------------------------------------------------------------------ #
    # Synchronous mode
    # ------------------------------------------------------------------ #
    def _train_epoch_synchronous(self, epoch: int) -> MetricTracker:
        tracker = MetricTracker()
        iterators = {
            end_system.system_id: end_system.batches(epoch)
            for end_system in self.end_systems
        }
        active = set(iterators)
        round_index = 0
        while active:
            round_messages: List[ActivationMessage] = []
            # Spatial phase: every active end-system ships one batch.
            for end_system in self.end_systems:
                if end_system.system_id not in active:
                    continue
                try:
                    images, labels = next(iterators[end_system.system_id])
                except StopIteration:
                    active.discard(end_system.system_id)
                    continue
                message = end_system.forward_batch(
                    images, labels, round_index=round_index, created_at=self._clock
                )
                network_message = self.transport.send_to_server(
                    self._system_to_node[end_system.system_id],
                    {"activations": message.activations, "labels": message.labels},
                    now=self._clock,
                )
                if network_message is None:
                    # Link dropped the batch; the client forgets it.
                    end_system.discard_pending(message.batch_id)
                    continue
                message.arrival_time = network_message.arrival_time
                message.size_bytes = network_message.size_bytes
                self.server.receive(message)
                round_messages.append(message)

            if not round_messages and not self.server.has_pending():
                round_index += 1
                continue

            # Temporal phase: the server drains the queue — as one
            # concatenated batch step when server_batching is on (the
            # default), or one step per message in policy order otherwise.
            latest_arrival = max(
                (message.arrival_time for message in round_messages), default=self._clock
            )
            gradient_arrivals = [latest_arrival]
            if self.config.server_batching:
                # The concatenated step cannot start before the last
                # message of the round has arrived, so every gradient is
                # sent back at latest_arrival.
                results = self.server.process_pending_batch(now=latest_arrival)
                send_times = [latest_arrival] * len(results)
            else:
                results = []
                send_times = []
                while self.server.has_pending():
                    activation_message, gradient_message = self.server.process_next(
                        now=latest_arrival
                    )
                    results.append((activation_message, gradient_message))
                    send_times.append(activation_message.arrival_time)
            for (activation_message, gradient_message), send_time in zip(results, send_times):
                tracker.update(
                    {"loss": gradient_message.loss, "accuracy": gradient_message.accuracy},
                    count=activation_message.batch_size,
                )
                end_system = self.end_systems[activation_message.end_system_id]
                downlink = self.transport.send_to_end_system(
                    self._system_to_node[end_system.system_id],
                    gradient_message.gradient,
                    now=send_time,
                )
                if downlink is None:
                    end_system.discard_pending(gradient_message.batch_id)
                    continue
                gradient_arrivals.append(downlink.arrival_time)
                end_system.apply_gradient(gradient_message)

            # Synchronous barrier: the next round starts once every gradient
            # has landed.
            self._clock = max(gradient_arrivals)
            round_index += 1
        return tracker

    # ------------------------------------------------------------------ #
    # Asynchronous mode
    # ------------------------------------------------------------------ #
    def _train_epoch_asynchronous(self, epoch: int) -> MetricTracker:
        """Event-driven epoch: one pass over every end-system's local data."""
        iterators = {
            end_system.system_id: end_system.batches(epoch)
            for end_system in self.end_systems
        }
        return self._run_asynchronous(iterators)

    def train_time_budget(self, simulated_seconds: float,
                          test_dataset: Optional[Dataset] = None) -> TrainingHistory:
        """Asynchronous training until the simulated clock reaches a budget.

        End-systems cycle through their local data indefinitely; the run
        stops once ``simulated_seconds`` of simulated wall-clock time have
        elapsed.  This is the regime where the paper's arrival-bias warning
        bites: within a fixed time window a nearby end-system completes far
        more updates than a remote one, and the scheduling policy decides
        how the server divides its attention.
        """
        if simulated_seconds <= 0:
            raise ValueError("simulated_seconds must be positive")
        if self.config.mode != "asynchronous":
            raise ValueError("train_time_budget requires mode='asynchronous'")

        def cycling_batches(end_system: EndSystem):
            epoch = 0
            while True:
                for batch in end_system.batches(epoch):
                    yield batch
                epoch += 1

        iterators = {
            end_system.system_id: cycling_batches(end_system)
            for end_system in self.end_systems
        }
        history = TrainingHistory(config=self.config.to_dict())
        start_clock = self._clock
        start = time.perf_counter()
        tracker = self._run_asynchronous(
            iterators, stop_time=start_clock + simulated_seconds
        )
        averages = tracker.averages()
        record = EpochRecord(
            epoch=0,
            train_loss=averages.get("loss", float("nan")),
            train_accuracy=averages.get("accuracy", 0.0),
            simulated_time_s=self._clock - start_clock,
            wall_time_s=time.perf_counter() - start,
            batches=self.server.batches_processed,
            samples=self.server.samples_processed,
        )
        if test_dataset is not None:
            evaluation = self.evaluate(test_dataset)
            record.test_loss = evaluation["loss"]
            record.test_accuracy = evaluation["accuracy"]
            history.per_system_accuracy = evaluation["per_system_accuracy"]
        history.append(record)
        history.traffic = self.transport.log.summary()
        history.queue_stats = {
            "mean_waiting_time_s": self.server.queue.mean_waiting_time,
            "fairness_index": self.server.queue.fairness_index(),
            "dropped": self.server.queue.dropped,
            "processed_per_system": self.server.queue.processed_per_system(),
        }
        return history

    def _run_asynchronous(self, iterators, stop_time: Optional[float] = None) -> MetricTracker:
        """Shared event loop for the asynchronous modes.

        Clients keep at most ``config.max_in_flight`` batches outstanding;
        the server becomes free ``server_step_time_s`` after starting a
        batch and always picks the next message through the scheduling
        policy among those that have already *arrived*.  When ``stop_time``
        is given, no new server step starts at or after that simulated time.

        With ``config.server_batching`` (default) each server step drains
        *every* already-arrived message into one concatenated
        forward/backward (see :meth:`CentralServer.process_batch`), still
        costing a single ``server_step_time_s``; with the flag off the
        server takes one step per message, which is the contention regime
        the staleness ablation studies.
        """
        tracker = MetricTracker()
        exhausted: set = set()
        # Min-heap of (arrival_time, sequence, message) for in-flight uplinks.
        in_flight: List[Tuple[float, int, ActivationMessage]] = []
        counter = itertools.count()

        def send_next_batch(end_system: EndSystem, at_time: float) -> None:
            if end_system.system_id in exhausted:
                return
            if stop_time is not None and at_time >= stop_time:
                # Past the budget: stop feeding new work into the pipeline.
                return
            try:
                images, labels = next(iterators[end_system.system_id])
            except StopIteration:
                exhausted.add(end_system.system_id)
                return
            message = end_system.forward_batch(images, labels, created_at=at_time)
            network_message = self.transport.send_to_server(
                self._system_to_node[end_system.system_id],
                {"activations": message.activations, "labels": message.labels},
                now=at_time,
            )
            if network_message is None:
                end_system.discard_pending(message.batch_id)
                # Immediately try the next batch; the dropped one is lost.
                send_next_batch(end_system, at_time)
                return
            message.arrival_time = network_message.arrival_time
            message.size_bytes = network_message.size_bytes
            heapq.heappush(in_flight, (message.arrival_time, next(counter), message))

        # Prime the pipeline.
        for end_system in self.end_systems:
            for _ in range(self.config.max_in_flight):
                send_next_batch(end_system, self._clock)

        server_free_at = self._clock
        while in_flight or self.server.has_pending():
            # Move every arrived message into the scheduling queue.
            horizon = max(server_free_at, self._clock)
            if not self.server.has_pending() and in_flight:
                # Nothing to process yet: jump to the next arrival.
                horizon = max(horizon, in_flight[0][0])
            while in_flight and in_flight[0][0] <= horizon:
                _, _, message = heapq.heappop(in_flight)
                self.server.receive(message)
            if not self.server.has_pending():
                continue

            start_time = max(server_free_at, horizon)
            if stop_time is not None and start_time >= stop_time:
                # Budget exhausted: leave the remaining arrivals unprocessed.
                self._clock = max(self._clock, stop_time)
                break
            if self.config.server_batching:
                # Batched draining: every message that has arrived by
                # start_time is folded into one concatenated server step
                # costing a single server_step_time_s.
                results = self.server.process_pending_batch(now=start_time)
            else:
                results = [self.server.process_next(now=start_time)]
            finish_time = start_time + self.config.server_step_time_s
            server_free_at = finish_time
            self._clock = finish_time
            for activation_message, gradient_message in results:
                tracker.update(
                    {"loss": gradient_message.loss, "accuracy": gradient_message.accuracy},
                    count=activation_message.batch_size,
                )

                end_system = self.end_systems[activation_message.end_system_id]
                downlink = self.transport.send_to_end_system(
                    self._system_to_node[end_system.system_id],
                    gradient_message.gradient,
                    now=finish_time,
                )
                if downlink is None:
                    end_system.discard_pending(gradient_message.batch_id)
                    send_next_batch(end_system, finish_time)
                    continue
                end_system.apply_gradient(gradient_message)
                # The client computes its next batch as soon as the gradient lands.
                send_next_batch(end_system, downlink.arrival_time)
                self._clock = max(self._clock, downlink.arrival_time)
        return tracker

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def per_system_update_counts(self) -> Dict[int, int]:
        """Number of gradient updates each end-system has applied so far."""
        return {
            end_system.system_id: end_system.updates_applied
            for end_system in self.end_systems
        }

    def state_dict(self) -> Dict[str, Dict[str, np.ndarray]]:
        """Checkpoint of the server segment and every end-system segment."""
        state = {"server": self.server.state_dict()}
        for end_system in self.end_systems:
            state[f"end_system_{end_system.system_id}"] = end_system.state_dict()
        return state

    def load_state_dict(self, state: Dict[str, Dict[str, np.ndarray]]) -> None:
        """Restore a checkpoint produced by :meth:`state_dict`."""
        self.server.load_state_dict(state["server"])
        for end_system in self.end_systems:
            end_system.load_state_dict(state[f"end_system_{end_system.system_id}"])
