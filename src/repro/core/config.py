"""Configuration dataclasses for split-learning training runs."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional, Sequence

__all__ = ["CONFIG_SCHEMA_VERSION", "TrainingConfig"]

#: Version of the ``TrainingConfig`` JSON schema.  Bump it whenever a
#: serialized config written by this version could be misread by an
#: older reader (renamed keys, changed semantics); adding a new knob
#: with a default does not require a bump — :meth:`TrainingConfig.from_dict`
#: fills missing keys with defaults so old payloads keep loading.
CONFIG_SCHEMA_VERSION = 1


@dataclass
class TrainingConfig:
    """Hyper-parameters of a spatio-temporal split-learning run.

    Parameters
    ----------
    epochs:
        Number of passes over every end-system's local data (synchronous
        mode).
    batch_size:
        Mini-batch size used by every end-system.
    client_optimizer / client_lr:
        Optimizer and learning rate for each end-system's local segment.
    server_optimizer / server_lr:
        Optimizer and learning rate for the server segment.
    loss:
        Loss name (see :func:`repro.nn.losses.get_loss`).
    queue_policy:
        Name of the server queue's scheduling policy (see
        :func:`repro.core.scheduling.get_policy`).
    max_queue_size:
        Capacity of the server's parameter-scheduling queue.  ``None``
        (the default) models an unbounded queue; a positive integer
        bounds it, which is the regime where the paper's late/sparse
        arrivals actually cost something.  What happens at the bound is
        decided by ``queue_backpressure``.
    queue_backpressure:
        Policy applied when the bounded queue has no room:

        * ``"drop"`` — the arriving activation message is discarded and
          the originating end-system is notified so it can forget the
          pending activation (no client-side leak) and move on to its
          next batch.
        * ``"block"`` — admission control: an end-system defers its next
          send until the queue has room (counting messages already in
          flight towards capacity), so nothing is ever dropped at the
          queue.
    mode:
        ``"synchronous"`` (the default; what Table I uses) or
        ``"asynchronous"`` (event-driven, used by the staleness ablation).
    num_servers:
        Number of server shards.  ``1`` (the default) is the paper's
        single central server; larger values split the clients across
        that many :class:`~repro.cluster.shard.ServerShard` replicas —
        each with its own queue, arena and optimizer — kept consistent
        by periodic weight synchronization (see ``server_sync_mode``).
    shard_assigner:
        Client-to-shard assignment strategy (see
        :func:`repro.cluster.assigner.get_assigner`): ``"static_hash"``,
        ``"load_aware"`` or ``"latency_aware"``.  Ignored when a custom
        multi-hub topology already fixes the assignment.
    server_sync_every:
        Inter-server synchronization cadence: every this-many *rounds*
        (synchronous mode) or per-shard *server steps* (asynchronous
        mode).  Irrelevant with one server.
    server_sync_mode:
        ``"average"`` — a barrier event where every shard installs the
        sample-weighted average of all server segments (FedAvg-style;
        synchronous mode only), or ``"staleness"`` — asynchronous
        gossip whose merge coefficient decays with each snapshot's
        transit staleness (either training mode).
    server_batching:
        When ``True`` (the default) the server drains every pending
        activation message in one concatenated forward/backward pass
        (:meth:`repro.core.server.CentralServer.process_batch`) instead
        of running one pass per message, and performs a single optimizer
        step on the union batch.  Set to ``False`` to recover the
        per-message processing of the original implementation.
    server_arena:
        When ``True`` (the default) the server stages admitted
        activation payloads into a preallocated shape-bucketed arena at
        enqueue time (:class:`repro.utils.arena.ActivationArena`), so
        batched drains train on a contiguous zero-copy view instead of
        re-concatenating every pending message.
    compute_backend:
        Name of the compute backend the trainer installs **for the
        duration of each run** (``train`` / ``evaluate`` /
        ``train_time_budget``, via :func:`repro.backend.use_backend`):
        ``"numpy"`` (reference) or ``"blocked"`` (tiled GEMMs with fused
        epilogues).  ``None`` (the default) runs on whatever backend is
        globally active.
    failure_schedule:
        Scripted shard crashes: a list of ``(time_s, shard_id)`` or
        ``(time_s, shard_id, downtime_s)`` entries (simulated seconds;
        without a downtime the shard stays down).  Mutually exclusive
        with ``failure_mtbf_s``.  ``None`` (the default) injects no
        failures and runs the exact pre-failover event chains.
    failure_mtbf_s:
        Stochastic churn: mean time between failures of each shard
        (exponential draws from a per-shard stream seeded off ``seed``).
        ``None`` disables stochastic failures.
    failure_mttr_s:
        Mean time to recovery under stochastic churn (exponential).
    failover_policy:
        What happens to a crashed shard's clients (see
        :func:`repro.cluster.failover.get_failover_policy`):
        ``"rebalance"`` reassigns them across the healthy survivors and
        fails them back on recovery; ``"standby"`` parks them until
        their home shard returns.
    failover_assigner:
        :class:`~repro.cluster.assigner.ShardAssigner` the rebalancing
        failover reuses to spread orphaned clients over the survivors;
        ``None`` defaults to ``"load_aware"``.
    failover_delay_s:
        Simulated detection-plus-switchover delay between a crash and
        the reassignment of its clients.
    checkpoint_every_s:
        Durable-checkpoint cadence in simulated seconds.  ``None`` (the
        default) disables checkpointing entirely — the engine schedules
        no checkpoint events and the run is byte-for-byte identical to a
        checkpoint-free build.  With a positive value (and a checkpoint
        store installed) every shard's full state — weights, optimizer
        moments, RNG streams, counters and the drop-accounting ledger —
        is captured on that cadence, crash recovery prefers the newest
        intact checkpoint over the last sync snapshot, and the trainer
        writes a run-level checkpoint at every epoch boundary from which
        a coordinator restart resumes replay-exact.
    checkpoint_mode:
        When the per-shard cadence fires: ``"interval"`` (the default)
        schedules dedicated simulator events every ``checkpoint_every_s``
        seconds; ``"round"`` captures opportunistically at round barriers
        (synchronous mode) or step dispatches (asynchronous mode) once at
        least ``checkpoint_every_s`` simulated seconds have passed since
        the shard's previous capture — no extra events, checkpoints ride
        existing ones.
    checkpoint_dir:
        Directory for a :class:`~repro.state.FileCheckpointStore` the
        trainer builds when no store is passed explicitly.  ``None``
        (the default) with ``checkpoint_every_s`` set falls back to an
        in-memory store (durable against simulated crashes, not process
        death).
    reliable_delivery:
        When ``True`` the transport becomes reliable: every activation
        and gradient send is covered by an ack/timeout retry chain with
        capped exponential backoff and seeded jitter, lost copies are
        retransmitted (absorbed into ``retried`` traffic counters rather
        than surfacing as drops), duplicate deliveries are idempotently
        deduplicated at the receiving shard, and a sender that exhausts
        ``retry_max`` retries gives up exactly once (``gave_up`` joins
        the drop-accounting balance).  ``False`` (the default) keeps the
        PR 7 fire-and-forget semantics bit-for-bit.
    retry_timeout_s / retry_backoff / retry_max / retry_jitter /
    retry_timeout_cap_s:
        Reliable-delivery retransmission knobs: attempt ``k`` times out
        after ``min(retry_timeout_cap_s, retry_timeout_s *
        retry_backoff**k)`` seconds plus a seeded uniform jitter of up to
        ``retry_jitter`` of that timeout; after ``retry_max`` retries the
        sender gives up.  Only consulted when ``reliable_delivery`` is
        on.
    sync_quorum / sync_timeout_s:
        Quorum-degraded ``"average"`` sync: when ``sync_timeout_s`` is
        set, a rendezvous that has waited that long fires with only the
        shards that showed up — provided they are at least
        ``sync_quorum`` (a fraction) of the healthy unfinished shards
        and at least two — instead of stalling on stragglers; below
        quorum the waiters are released without a sync and regroup at
        the next rendezvous.  ``sync_timeout_s=None`` (the default) is
        the exact PR 7 all-or-nothing barrier.
    chaos_schedule:
        Scripted fault-injection timeline for the chaos plane
        (:class:`repro.chaos.ScheduledFaults`).  Entries are tuples:
        ``("flap", t, duration, client_id)`` /
        ``("leave", t, duration, client_id)`` (client link outage /
        churn), ``("partition", t, duration, hub_a, hub_b)`` (hub↔hub
        partition), ``("straggler", t, duration, shard_id, factor)``
        (multiplicative service-time inflation) and
        ``("move", t, client_id, shard_id)`` (client mobility).
        Mutually exclusive with the stochastic chaos knobs.
    chaos_flap_mtbf_s / chaos_flap_mttr_s / chaos_leave_mtbf_s /
    chaos_leave_mttr_s:
        Stochastic client churn (:class:`repro.chaos.StochasticFaults`):
        per-client exponential mean time between flaps/leaves and mean
        outage durations.  ``None`` MTBF disables that fault class.
    chaos_corrupt_probability / chaos_duplicate_probability /
    chaos_reorder_probability:
        Per-message chaos at the transport (seeded, deterministic):
        probability that a delivered message is corrupted (counted and
        lost), duplicated (uplink activations only; the extra copy is
        deduplicated at the shard) or reordered (its arrival delayed by
        a seeded draw up to ``chaos_reorder_delay_s``).
    chaos_reorder_delay_s / chaos_duplicate_delay_s:
        Maximum extra arrival delay for reordered messages and for the
        duplicate copy of a duplicated message.
    obs_enabled:
        Turns on the :mod:`repro.obs` observability plane: the metrics
        registry collects every subsystem's counters, the tracer records
        sampled message/control-plane spans, and the engine flushes
        periodic JSONL snapshots.  Off (the default) the run uses the
        inert ``NULL_OBS`` bundle and is byte-identical to a pre-obs run.
    obs_trace_sample_rate:
        Fraction of message transfers traced, decided per sequence
        number by a seeded order-independent hash (so the same ``seed``
        always yields the identical trace).  Control-plane events
        (crashes, failover, syncs, checkpoints) are always traced.
    obs_trace_capacity:
        Ring-buffer bound on retained trace events; older events are
        evicted (and counted) once the buffer is full.
    obs_flush_every_s:
        Sim-time cadence of the engine's ``PRIORITY_OBS`` metric-flush
        events.  ``None`` flushes only once, at the end of the run.
    obs_dir:
        When set (and obs is enabled), the trainer writes
        ``metrics.jsonl`` and ``trace.json`` here after ``train()``.
    max_in_flight:
        Asynchronous mode only: how many batches an end-system may have
        outstanding (sent but not yet acknowledged with a gradient).
    server_step_time_s:
        Simulated compute time the server spends per batch; makes queue
        contention meaningful in asynchronous mode.
    seed:
        Master seed; every stochastic component derives its own stream
        from it.
    shuffle / drop_last:
        DataLoader behaviour on each end-system.
    """

    epochs: int = 10
    batch_size: int = 32
    client_optimizer: str = "adam"
    client_lr: float = 1e-3
    server_optimizer: str = "adam"
    server_lr: float = 1e-3
    loss: str = "cross_entropy"
    queue_policy: str = "fifo"
    max_queue_size: Optional[int] = None
    queue_backpressure: str = "drop"
    mode: str = "synchronous"
    num_servers: int = 1
    shard_assigner: str = "static_hash"
    server_sync_every: int = 1
    server_sync_mode: str = "average"
    server_batching: bool = True
    server_arena: bool = True
    compute_backend: Optional[str] = None
    failure_schedule: Optional[List[Sequence[float]]] = None
    failure_mtbf_s: Optional[float] = None
    failure_mttr_s: float = 1.0
    failover_policy: str = "rebalance"
    failover_assigner: Optional[str] = None
    failover_delay_s: float = 0.0
    checkpoint_every_s: Optional[float] = None
    checkpoint_mode: str = "interval"
    checkpoint_dir: Optional[str] = None
    reliable_delivery: bool = False
    retry_timeout_s: float = 0.05
    retry_backoff: float = 2.0
    retry_max: int = 3
    retry_jitter: float = 0.1
    retry_timeout_cap_s: float = 1.0
    sync_quorum: float = 1.0
    sync_timeout_s: Optional[float] = None
    chaos_schedule: Optional[List[Sequence[object]]] = None
    chaos_flap_mtbf_s: Optional[float] = None
    chaos_flap_mttr_s: float = 0.05
    chaos_leave_mtbf_s: Optional[float] = None
    chaos_leave_mttr_s: float = 0.5
    chaos_corrupt_probability: float = 0.0
    chaos_duplicate_probability: float = 0.0
    chaos_reorder_probability: float = 0.0
    chaos_reorder_delay_s: float = 0.005
    chaos_duplicate_delay_s: float = 0.002
    obs_enabled: bool = False
    obs_trace_sample_rate: float = 1.0
    obs_trace_capacity: int = 65536
    obs_flush_every_s: Optional[float] = None
    obs_dir: Optional[str] = None
    max_in_flight: int = 1
    server_step_time_s: float = 0.0
    seed: int = 0
    shuffle: bool = True
    drop_last: bool = False
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.client_lr <= 0 or self.server_lr <= 0:
            raise ValueError("learning rates must be positive")
        if self.mode not in {"synchronous", "asynchronous"}:
            raise ValueError(
                f"mode must be 'synchronous' or 'asynchronous', got {self.mode!r}"
            )
        if self.max_in_flight <= 0:
            raise ValueError("max_in_flight must be positive")
        if self.server_step_time_s < 0:
            raise ValueError("server_step_time_s must be non-negative")
        if self.max_queue_size is not None and self.max_queue_size <= 0:
            raise ValueError("max_queue_size must be positive (or None for unbounded)")
        if self.queue_backpressure not in {"drop", "block"}:
            raise ValueError(
                f"queue_backpressure must be 'drop' or 'block', got {self.queue_backpressure!r}"
            )
        if self.num_servers <= 0:
            raise ValueError("num_servers must be positive")
        if self.server_sync_every <= 0:
            raise ValueError("server_sync_every must be positive")
        if self.server_sync_mode not in {"average", "staleness"}:
            raise ValueError(
                f"server_sync_mode must be 'average' or 'staleness', "
                f"got {self.server_sync_mode!r}"
            )
        if (
            self.num_servers > 1
            and self.mode == "asynchronous"
            and self.server_sync_mode == "average"
        ):
            raise ValueError(
                "server_sync_mode='average' is a round barrier and requires "
                "mode='synchronous'; asynchronous clusters use the "
                "'staleness' gossip mode"
            )
        if self.num_servers > 1:
            from ..cluster.assigner import available_assigners

            if self.shard_assigner not in available_assigners():
                known = ", ".join(available_assigners())
                raise ValueError(
                    f"shard_assigner must be one of {known}, "
                    f"got {self.shard_assigner!r}"
                )
        if self.compute_backend is not None:
            from ..backend import available_backends

            if self.compute_backend not in available_backends():
                known = ", ".join(available_backends())
                raise ValueError(
                    f"compute_backend must be one of {known} (or None), "
                    f"got {self.compute_backend!r}"
                )
        if self.failure_schedule is not None and self.failure_mtbf_s is not None:
            raise ValueError(
                "failure_schedule and failure_mtbf_s are mutually exclusive: "
                "use a scripted timeline or stochastic churn, not both"
            )
        if self.failure_mtbf_s is not None and self.failure_mtbf_s <= 0:
            raise ValueError("failure_mtbf_s must be positive (or None)")
        if self.failure_mttr_s <= 0:
            raise ValueError("failure_mttr_s must be positive")
        if self.failover_delay_s < 0:
            raise ValueError("failover_delay_s must be non-negative")
        if self.checkpoint_every_s is not None and self.checkpoint_every_s <= 0:
            raise ValueError("checkpoint_every_s must be positive (or None)")
        if self.checkpoint_mode not in {"interval", "round"}:
            raise ValueError(
                f"checkpoint_mode must be 'interval' or 'round', "
                f"got {self.checkpoint_mode!r}"
            )
        if self.retry_timeout_s <= 0:
            raise ValueError("retry_timeout_s must be positive")
        if self.retry_backoff < 1.0:
            raise ValueError("retry_backoff must be >= 1")
        if self.retry_max < 0:
            raise ValueError("retry_max must be non-negative")
        if not 0.0 <= self.retry_jitter < 1.0:
            raise ValueError("retry_jitter must be in [0, 1)")
        if self.retry_timeout_cap_s < self.retry_timeout_s:
            raise ValueError("retry_timeout_cap_s must be >= retry_timeout_s")
        if not 0.0 < self.sync_quorum <= 1.0:
            raise ValueError("sync_quorum must be in (0, 1]")
        if self.sync_timeout_s is not None and self.sync_timeout_s <= 0:
            raise ValueError("sync_timeout_s must be positive (or None)")
        for knob in (
            "chaos_corrupt_probability",
            "chaos_duplicate_probability",
            "chaos_reorder_probability",
        ):
            probability = float(getattr(self, knob))
            if not 0.0 <= probability <= 1.0:
                raise ValueError(f"{knob} must be in [0, 1]")
        if self.chaos_reorder_delay_s < 0:
            raise ValueError("chaos_reorder_delay_s must be non-negative")
        if self.chaos_duplicate_delay_s < 0:
            raise ValueError("chaos_duplicate_delay_s must be non-negative")
        stochastic_chaos = (
            self.chaos_flap_mtbf_s is not None or self.chaos_leave_mtbf_s is not None
        )
        if self.chaos_schedule is not None and stochastic_chaos:
            raise ValueError(
                "chaos_schedule and the stochastic chaos MTBF knobs are "
                "mutually exclusive: use a scripted timeline or stochastic "
                "churn, not both"
            )
        if self.chaos_flap_mtbf_s is not None and self.chaos_flap_mtbf_s <= 0:
            raise ValueError("chaos_flap_mtbf_s must be positive (or None)")
        if self.chaos_flap_mttr_s <= 0:
            raise ValueError("chaos_flap_mttr_s must be positive")
        if self.chaos_leave_mtbf_s is not None and self.chaos_leave_mtbf_s <= 0:
            raise ValueError("chaos_leave_mtbf_s must be positive (or None)")
        if self.chaos_leave_mttr_s <= 0:
            raise ValueError("chaos_leave_mttr_s must be positive")
        if not 0.0 <= self.obs_trace_sample_rate <= 1.0:
            raise ValueError("obs_trace_sample_rate must be in [0, 1]")
        if self.obs_trace_capacity <= 0:
            raise ValueError("obs_trace_capacity must be positive")
        if self.obs_flush_every_s is not None and self.obs_flush_every_s <= 0:
            raise ValueError("obs_flush_every_s must be positive (or None)")
        if self.obs_dir is not None and not self.obs_enabled:
            raise ValueError("obs_dir requires obs_enabled=True")
        if self.chaos_schedule:
            # Malformed entries would otherwise surface as IndexErrors
            # deep inside ScheduledFaults during trainer construction.
            known_kinds = {"flap", "leave", "partition", "straggler", "move"}
            for entry in self.chaos_schedule:
                if len(entry) < 1 or str(entry[0]) not in known_kinds:
                    kinds = ", ".join(sorted(known_kinds))
                    raise ValueError(
                        f"chaos_schedule entries must start with one of "
                        f"{kinds}; got {entry!r}"
                    )
                if len(entry) < 2 or float(entry[1]) < 0:  # type: ignore[arg-type]
                    raise ValueError(
                        f"chaos_schedule entry {entry!r} needs a "
                        "non-negative start time as its second element"
                    )
        if self.failure_schedule:
            # An out-of-range shard id would silently never fire (the
            # engine only peeks the timelines of existing shards), so the
            # scripted churn would quietly run failure-free.
            for entry in self.failure_schedule:
                if len(entry) < 2:
                    continue  # malformed entries get ScheduledFailures' error
                shard_id = int(entry[1])
                if not 0 <= shard_id < self.num_servers:
                    raise ValueError(
                        f"failure_schedule names shard {shard_id}, but the "
                        f"deployment has num_servers={self.num_servers} "
                        f"(shard ids are 0-based)"
                    )
        if self.failures_enabled:
            from ..cluster.assigner import available_assigners
            from ..cluster.failover import available_failover_policies

            if self.failover_policy not in available_failover_policies():
                known = ", ".join(available_failover_policies())
                raise ValueError(
                    f"failover_policy must be one of {known}, "
                    f"got {self.failover_policy!r}"
                )
            if (
                self.failover_assigner is not None
                and self.failover_assigner not in available_assigners()
            ):
                known = ", ".join(available_assigners())
                raise ValueError(
                    f"failover_assigner must be one of {known} (or None), "
                    f"got {self.failover_assigner!r}"
                )

    @property
    def failures_enabled(self) -> bool:
        """True when either failure-injection mechanism is configured."""
        return bool(self.failure_schedule) or self.failure_mtbf_s is not None

    @property
    def chaos_enabled(self) -> bool:
        """True when any chaos-plane fault injection is configured."""
        return (
            bool(self.chaos_schedule)
            or self.chaos_flap_mtbf_s is not None
            or self.chaos_leave_mtbf_s is not None
            or self.message_chaos_enabled
        )

    @property
    def message_chaos_enabled(self) -> bool:
        """True when per-message corruption/duplication/reordering is on."""
        return (
            self.chaos_corrupt_probability > 0
            or self.chaos_duplicate_probability > 0
            or self.chaos_reorder_probability > 0
        )

    @property
    def client_optimizer_kwargs(self) -> Dict[str, float]:
        """Keyword arguments used to build every end-system optimizer."""
        return {"lr": self.client_lr}

    @property
    def server_optimizer_kwargs(self) -> Dict[str, float]:
        """Keyword arguments used to build the server optimizer."""
        return {"lr": self.server_lr}

    def to_dict(self) -> Dict[str, Any]:
        """Versioned flat dictionary form.

        This is the serialization half of the public JobSpec schema
        (:mod:`repro.api`): the payload carries ``schema_version`` so a
        reader can reject configs written under an incompatible schema,
        and :meth:`from_dict` round-trips it (through JSON) back into a
        validated config.  Also used for logging, experiment records and
        run checkpoints.
        """
        payload: Dict[str, Any] = {"schema_version": CONFIG_SCHEMA_VERSION}
        payload.update(asdict(self))
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TrainingConfig":
        """Rebuild a config from :meth:`to_dict` output (or its JSON form).

        Validation is strict where it protects the reader and lenient
        where it preserves forward motion:

        * ``schema_version`` newer than this build (or < 1) is rejected —
          the payload may carry semantics this reader would silently
          misapply; a missing version is treated as version 1.
        * Unknown keys are rejected with the offending names — a typo'd
          knob must not silently train with defaults.
        * Missing keys fall back to field defaults, so configs written
          before a knob existed keep loading.

        Every value then flows through ``__init__``, reusing the full
        validator suite in ``__post_init__``.
        """
        if not isinstance(payload, Mapping):
            raise TypeError(
                f"TrainingConfig payload must be a mapping, got "
                f"{type(payload).__name__}"
            )
        data = dict(payload)
        version = int(data.pop("schema_version", 1))
        if not 1 <= version <= CONFIG_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported TrainingConfig schema_version {version} "
                f"(this build reads versions 1..{CONFIG_SCHEMA_VERSION})"
            )
        known = {field_info.name for field_info in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown TrainingConfig keys: {', '.join(unknown)} "
                "(schema is strict; remove or rename them)"
            )
        return cls(**data)

    @classmethod
    def fast_debug(cls, **overrides) -> "TrainingConfig":
        """A tiny configuration suitable for unit tests (1 epoch, small batches)."""
        defaults = dict(epochs=1, batch_size=8)
        defaults.update(overrides)
        return cls(**defaults)
