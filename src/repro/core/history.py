"""Training-history records produced by the trainers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["EpochRecord", "TrainingHistory"]


@dataclass
class EpochRecord:
    """Metrics of a single epoch (or asynchronous training segment)."""

    epoch: int
    train_loss: float
    train_accuracy: float
    test_loss: Optional[float] = None
    test_accuracy: Optional[float] = None
    simulated_time_s: float = 0.0
    wall_time_s: float = 0.0
    batches: int = 0
    samples: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary of the record (``None`` metrics omitted)."""
        record = {
            "epoch": self.epoch,
            "train_loss": self.train_loss,
            "train_accuracy": self.train_accuracy,
            "simulated_time_s": self.simulated_time_s,
            "wall_time_s": self.wall_time_s,
            "batches": self.batches,
            "samples": self.samples,
        }
        if self.test_loss is not None:
            record["test_loss"] = self.test_loss
        if self.test_accuracy is not None:
            record["test_accuracy"] = self.test_accuracy
        record.update(self.extra)
        return record


@dataclass
class TrainingHistory:
    """Full record of a training run: per-epoch metrics plus run-level stats."""

    records: List[EpochRecord] = field(default_factory=list)
    traffic: Dict[str, float] = field(default_factory=dict)
    queue_stats: Dict[str, float] = field(default_factory=dict)
    per_system_accuracy: Dict[int, float] = field(default_factory=dict)
    config: Dict[str, object] = field(default_factory=dict)

    def append(self, record: EpochRecord) -> None:
        """Add one epoch record."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def final_train_accuracy(self) -> float:
        """Training accuracy of the last epoch (0 when no epochs ran)."""
        return self.records[-1].train_accuracy if self.records else 0.0

    @property
    def final_test_accuracy(self) -> Optional[float]:
        """Test accuracy of the last epoch that evaluated (``None`` if never)."""
        for record in reversed(self.records):
            if record.test_accuracy is not None:
                return record.test_accuracy
        return None

    @property
    def best_test_accuracy(self) -> Optional[float]:
        """Best test accuracy seen over the run (``None`` if never evaluated)."""
        values = [r.test_accuracy for r in self.records if r.test_accuracy is not None]
        return max(values) if values else None

    @property
    def total_simulated_time(self) -> float:
        """Total simulated network/compute time across all epochs (seconds)."""
        return sum(record.simulated_time_s for record in self.records)

    def accuracy_curve(self) -> List[float]:
        """Per-epoch training accuracy."""
        return [record.train_accuracy for record in self.records]

    def loss_curve(self) -> List[float]:
        """Per-epoch training loss."""
        return [record.train_loss for record in self.records]

    def to_rows(self) -> List[Dict[str, float]]:
        """All epoch records as flat dictionaries."""
        return [record.as_dict() for record in self.records]

    def reliability(self) -> Dict[str, float]:
        """Fault-plane and reliable-delivery counters for the run.

        Collects the chaos/retry statistics the trainer publishes into
        ``queue_stats`` and ``traffic`` into one flat view.  Empty for
        fault-free runs with reliability off, so downstream tables can
        skip the columns entirely.
        """
        merged: Dict[str, float] = {}
        for key in ("retries", "gave_up", "deduped", "quorum_syncs",
                    "sync_timeouts", "chaos_events"):
            if key in self.queue_stats:
                merged[key] = self.queue_stats[key]
        for key in ("retried_messages", "corrupted_messages",
                    "duplicated_messages", "reordered_messages"):
            if key in self.traffic:
                merged[key] = float(self.traffic[key])
        return merged

    def observability(self) -> Dict[str, float]:
        """The obs plane's self-accounting for the run (see ``repro.obs``).

        Empty for obs-off runs — the trainer only attaches the block
        when ``TrainingConfig.obs_enabled`` is set, keeping disabled
        histories byte-identical to pre-obs ones.
        """
        block = self.queue_stats.get("observability")
        return dict(block) if isinstance(block, dict) else {}

    def summary(self) -> Dict[str, object]:
        """Run-level summary combining accuracy, traffic and queue statistics."""
        return {
            "epochs": len(self.records),
            "final_train_accuracy": self.final_train_accuracy,
            "final_test_accuracy": self.final_test_accuracy,
            "best_test_accuracy": self.best_test_accuracy,
            "total_simulated_time_s": self.total_simulated_time,
            "traffic": dict(self.traffic),
            "queue": dict(self.queue_stats),
            "reliability": self.reliability(),
            "per_system_accuracy": dict(self.per_system_accuracy),
        }
