"""Split specification: which layers live on end-systems vs. the server.

The paper's central design knob is *how many of the CNN's blocks are held
by the end-systems*.  Table I sweeps this from "Nothing" (all layers at
the server — the non-private global model) through "L1, L2, L3, L4".
:class:`SplitSpec` captures that knob and knows how to materialize

* a fresh *client segment* (blocks ``L1 .. L{client_blocks}``) for each
  end-system — every end-system trains its own copy on its own data, and
* the *server segment* (everything after the cut), of which there is a
  single shared instance trained on the activations of all end-systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..nn import Sequential
from .models import CNNArchitecture

__all__ = ["SplitSpec"]


@dataclass(frozen=True)
class SplitSpec:
    """A (architecture, cut point) pair.

    Parameters
    ----------
    architecture:
        Factory describing the full network.
    client_blocks:
        Number of ``L_i`` blocks held by each end-system.  ``0`` reproduces
        the paper's "Nothing (all layers are in the server)" row, i.e. the
        centralized, non-private baseline; ``architecture.num_blocks``
        places every convolutional block on the end-systems.
    """

    architecture: CNNArchitecture
    client_blocks: int = 1

    def __post_init__(self) -> None:
        if not 0 <= self.client_blocks <= self.architecture.num_blocks:
            raise ValueError(
                f"client_blocks must be in [0, {self.architecture.num_blocks}], "
                f"got {self.client_blocks}"
            )

    # ------------------------------------------------------------------ #
    # Descriptive helpers
    # ------------------------------------------------------------------ #
    @property
    def label(self) -> str:
        """Human-readable name matching Table I's first column."""
        if self.client_blocks == 0:
            return "Nothing (all layers are in the server)"
        return ", ".join(f"L{index + 1}" for index in range(self.client_blocks))

    @property
    def is_private(self) -> bool:
        """True when end-systems never transmit raw input data."""
        return self.client_blocks > 0

    @property
    def boundary_layer(self) -> Optional[str]:
        """Name of the last client-side layer (``None`` when the cut is 0)."""
        return self.architecture.boundary_layer_name(self.client_blocks)

    @property
    def smashed_shape(self) -> Tuple[int, int, int]:
        """Shape ``(C, H, W)`` of the activation crossing the cut."""
        return self.architecture.block_output_shape(self.client_blocks)

    def smashed_size(self, batch_size: int) -> int:
        """Number of scalars shipped to the server per batch."""
        channels, height, width = self.smashed_shape
        return batch_size * channels * height * width

    # ------------------------------------------------------------------ #
    # Model materialization
    # ------------------------------------------------------------------ #
    def _cut_index(self, model: Sequential) -> int:
        boundary = self.boundary_layer
        if boundary is None:
            return 0
        return model.index_of(boundary) + 1

    def build_full_model(self, rng: Optional[np.random.Generator] = None,
                         seed: Optional[int] = None) -> Sequential:
        """Instantiate the complete, unsplit network."""
        return self.architecture.build(rng=rng, seed=seed)

    def build_client_segment(self, rng: Optional[np.random.Generator] = None,
                             seed: Optional[int] = None) -> Sequential:
        """Instantiate a fresh client segment (blocks ``L1 .. L{client_blocks}``)."""
        model = self.build_full_model(rng=rng, seed=seed)
        head, _ = model.split_at(self._cut_index(model))
        return head

    def build_server_segment(self, rng: Optional[np.random.Generator] = None,
                             seed: Optional[int] = None) -> Sequential:
        """Instantiate the server segment (everything after the cut)."""
        model = self.build_full_model(rng=rng, seed=seed)
        _, tail = model.split_at(self._cut_index(model))
        return tail

    def split_model(self, model: Sequential) -> Tuple[Sequential, Sequential]:
        """Split an existing full model into (client, server) views sharing parameters."""
        return model.split_at(self._cut_index(model))

    def __str__(self) -> str:
        return f"SplitSpec(client_blocks={self.client_blocks}, label={self.label!r})"
