"""Event-driven training orchestration engine.

Both training modes of :class:`~repro.core.trainer.SpatioTemporalTrainer`
run on one discrete-event engine built on
:class:`~repro.simnet.events.Simulator`.  The engine schedules three kinds
of occurrences:

* **uplink arrival** — a smashed-activation message lands at the server
  and is admitted into (or shed by) the parameter-scheduling queue;
* **server step** — the server trains on queued messages.  In
  *asynchronous* mode a dispatch event fires whenever the server is free
  and work has arrived; in *synchronous* mode the dispatch is a **barrier**
  event scheduled at the round's last arrival, so the whole round is a
  single event chain rather than a separate hand-written loop;
* **gradient landing** — a gradient message reaches its end-system, which
  finishes back-propagation and (asynchronously) ships its next batch.

Lossy-network semantics
-----------------------
Every way a batch can be lost funnels through
:meth:`EndSystem.notify_drop`, so client-side pending activations never
leak:

* the uplink drops the message in transit (the client immediately moves
  on to its next batch);
* a bounded queue (``TrainingConfig.max_queue_size``) overflows under the
  ``"drop"`` backpressure policy (the client is NACKed at arrival time);
* the downlink drops the gradient (the client forgets the batch when the
  server's reply fails to appear).

Under the ``"block"`` backpressure policy nothing is ever shed at the
queue: an end-system defers its next send until the queue has room,
counting messages already in flight towards the capacity, so admission
never overflows.  Blocked senders wait in FIFO order and are released as
the server pops messages, which prevents the low-numbered-client
starvation a naive retry loop would cause.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..nn.metrics import MetricTracker
from ..simnet.events import Simulator
from ..simnet.transport import Transport
from ..utils.logging import get_logger
from .config import TrainingConfig
from .end_system import EndSystem
from .messages import ActivationMessage, GradientMessage
from .server import CentralServer

__all__ = [
    "TrainingEngine",
    "EngineStats",
    "PRIORITY_ARRIVAL",
    "PRIORITY_LANDING",
    "PRIORITY_DISPATCH",
]

logger = get_logger("core.engine")

#: Event priorities: at equal simulated times, arrivals are admitted and
#: gradients land *before* the server dispatches, so a step always sees
#: every message that has arrived by its start time.
PRIORITY_ARRIVAL = 0
PRIORITY_LANDING = 1
PRIORITY_DISPATCH = 5


@dataclass
class EngineStats:
    """Counters the engine accumulates across runs (epochs)."""

    queue_drops: int = 0        #: messages shed by a full queue ("drop" policy)
    blocked_sends: int = 0      #: sends deferred by backpressure ("block" policy)
    cancelled_at_stop: int = 0  #: batches abandoned when a time budget cut the run
    events_processed: int = 0   #: simulator events executed
    server_steps: int = 0       #: training steps the server dispatched
    rounds: int = 0             #: synchronous rounds driven to completion

    def as_dict(self) -> Dict[str, int]:
        return {
            "queue_drops": self.queue_drops,
            "blocked_sends": self.blocked_sends,
            "cancelled_at_stop": self.cancelled_at_stop,
            "events_processed": self.events_processed,
            "server_steps": self.server_steps,
            "rounds": self.rounds,
        }


class TrainingEngine:
    """Discrete-event orchestrator shared by both training modes.

    Parameters
    ----------
    end_systems:
        The deployment's clients, in system-id order.
    server:
        The centralized server (owns the bounded scheduling queue).
    transport:
        Network transport over the (possibly asymmetric) topology.
    system_to_node:
        Map from end-system ids to topology node names.
    config:
        Training configuration; the engine consults ``mode``-independent
        fields (``server_batching``, ``server_step_time_s``,
        ``max_in_flight``, ``max_queue_size``, ``queue_backpressure``).
    """

    def __init__(
        self,
        end_systems: List[EndSystem],
        server: CentralServer,
        transport: Transport,
        system_to_node: Dict[int, str],
        config: TrainingConfig,
    ) -> None:
        self.end_systems = list(end_systems)
        self.server = server
        self.transport = transport
        self.system_to_node = dict(system_to_node)
        self.config = config
        self.clock = 0.0
        self.stats = EngineStats()
        self._by_id = {end_system.system_id: end_system for end_system in self.end_systems}
        # Uplink messages admitted (or simply in transit) but not yet
        # resolved at the server; counted towards queue capacity so the
        # "block" policy can never overflow the queue on arrival.
        self._in_transit = 0

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def _blocking(self) -> bool:
        return (
            self.config.max_queue_size is not None
            and self.config.queue_backpressure == "block"
        )

    def _queue_has_room(self) -> bool:
        capacity = self.config.max_queue_size
        if capacity is None:
            return True
        return len(self.server.queue) + self._in_transit < capacity

    def _send_uplink(
        self,
        end_system: EndSystem,
        images: np.ndarray,
        labels: np.ndarray,
        at_time: float,
        round_index: int = 0,
    ) -> Optional[ActivationMessage]:
        """Forward a batch and ship it; ``None`` when the uplink dropped it."""
        message = end_system.forward_batch(
            images, labels, round_index=round_index, created_at=at_time
        )
        network_message = self.transport.send_to_server(
            self.system_to_node[end_system.system_id],
            {"activations": message.activations, "labels": message.labels},
            now=at_time,
        )
        if network_message is None:
            end_system.notify_drop(message.batch_id)
            return None
        message.arrival_time = network_message.arrival_time
        message.size_bytes = network_message.size_bytes
        return message

    def _send_downlink(self, end_system: EndSystem, gradient_message: GradientMessage,
                       at_time: float):
        return self.transport.send_to_end_system(
            self.system_to_node[end_system.system_id],
            gradient_message.gradient,
            now=at_time,
        )

    def _admit(self, message: ActivationMessage, end_system: EndSystem) -> bool:
        """Resolve an arrival: enqueue it, or shed it and NACK the client."""
        self._in_transit -= 1
        if self.server.receive(message):
            return True
        end_system.notify_drop(message.batch_id)
        self.stats.queue_drops += 1
        return False

    # ------------------------------------------------------------------ #
    # Synchronous mode: rounds as barrier events
    # ------------------------------------------------------------------ #
    def run_synchronous_epoch(
        self, iterators: Dict[int, Iterator[Tuple[np.ndarray, np.ndarray]]]
    ) -> MetricTracker:
        """Drive one synchronous epoch as a chain of round events.

        Each round is three event stages: a *round-start* event where every
        active end-system ships one batch, per-message *arrival* events
        that admit (or shed) messages at the queue, and one *barrier* event
        at the round's last arrival where the server drains the queue —
        as one concatenated step when ``server_batching`` is on, or one
        step per message in policy order otherwise — and the gradients
        flow back.  The next round starts once every gradient has landed.
        """
        tracker = MetricTracker()
        sim = Simulator()
        active = set(iterators)
        deferred: Deque[EndSystem] = deque()  # "block" policy: waiting for queue room
        accepted_this_round: List[ActivationMessage] = []
        self._in_transit = 0

        def on_arrival(sim: Simulator, message: ActivationMessage,
                       end_system: EndSystem) -> None:
            if self._admit(message, end_system):
                accepted_this_round.append(message)

        def start_round(sim: Simulator, round_index: int) -> None:
            if not active:
                return
            senders: List[EndSystem] = list(deferred)
            deferred.clear()
            already_queued = {end_system.system_id for end_system in senders}
            senders.extend(
                end_system for end_system in self.end_systems
                if end_system.system_id in active
                and end_system.system_id not in already_queued
            )
            in_flight = 0
            last_arrival = self.clock
            for end_system in senders:
                if end_system.system_id not in active:
                    continue
                if self._blocking() and not self._queue_has_room():
                    deferred.append(end_system)
                    self.stats.blocked_sends += 1
                    continue
                try:
                    images, labels = next(iterators[end_system.system_id])
                except StopIteration:
                    active.discard(end_system.system_id)
                    continue
                message = self._send_uplink(
                    end_system, images, labels, self.clock, round_index=round_index
                )
                if message is None:
                    # The link dropped the batch; the client forgets it and
                    # ships its next batch when the following round starts.
                    continue
                self._in_transit += 1
                in_flight += 1
                last_arrival = max(last_arrival, message.arrival_time)
                sim.schedule(
                    message.arrival_time,
                    lambda s, m=message, e=end_system: on_arrival(s, m, e),
                    priority=PRIORITY_ARRIVAL,
                    label="uplink-arrival",
                )
            self.stats.rounds += 1
            if in_flight:
                sim.schedule(
                    max(last_arrival, sim.now),
                    lambda s, r=round_index: barrier(s, r),
                    priority=PRIORITY_DISPATCH,
                    label="round-barrier",
                )
            elif active:
                # Every send this round was dropped in transit; retry
                # immediately — the simulated clock does not advance.
                sim.schedule(
                    sim.now,
                    lambda s, r=round_index: start_round(s, r + 1),
                    label="round-start",
                )

        def barrier(sim: Simulator, round_index: int) -> None:
            # The queue is drained at every barrier and capacity is >= 1,
            # so a round that put messages in flight always lands at least
            # one (the round's first arrival cannot be shed).
            arrived = list(accepted_this_round)
            accepted_this_round.clear()
            # Queue-dropped messages never reached the server segment, so
            # they do not hold the barrier back.
            latest_arrival = max(
                (message.arrival_time for message in arrived), default=self.clock
            )
            gradient_arrivals = [latest_arrival]
            if self.config.server_batching:
                # The concatenated step cannot start before the last
                # accepted message of the round has arrived, so every
                # gradient is sent back at latest_arrival.
                results = self.server.process_pending_batch(now=latest_arrival)
                send_times = [latest_arrival] * len(results)
            else:
                results = []
                send_times = []
                while self.server.has_pending():
                    activation_message, gradient_message = self.server.process_next(
                        now=latest_arrival
                    )
                    results.append((activation_message, gradient_message))
                    send_times.append(activation_message.arrival_time)
            self.stats.server_steps += 1
            for (activation_message, gradient_message), send_time in zip(results, send_times):
                tracker.update(
                    {"loss": gradient_message.loss, "accuracy": gradient_message.accuracy},
                    count=activation_message.batch_size,
                )
                end_system = self._by_id[activation_message.end_system_id]
                downlink = self._send_downlink(end_system, gradient_message, send_time)
                if downlink is None:
                    end_system.notify_drop(gradient_message.batch_id)
                    continue
                gradient_arrivals.append(downlink.arrival_time)
                end_system.apply_gradient(gradient_message)
            # Synchronous barrier: the next round starts once every
            # gradient has landed (and not before this barrier fired).
            self.clock = max(self.clock, max(gradient_arrivals), sim.now)
            sim.schedule(
                self.clock,
                lambda s, r=round_index: start_round(s, r + 1),
                label="round-start",
            )

        sim.schedule(self.clock, lambda s: start_round(s, 0), label="round-start")
        sim.run()
        self.stats.events_processed += sim.processed_events
        return tracker

    # ------------------------------------------------------------------ #
    # Asynchronous mode: arrival / dispatch / landing events
    # ------------------------------------------------------------------ #
    def run_asynchronous(
        self,
        iterators: Dict[int, Iterator[Tuple[np.ndarray, np.ndarray]]],
        stop_time: Optional[float] = None,
    ) -> MetricTracker:
        """Event-driven asynchronous training.

        Clients keep at most ``config.max_in_flight`` batches outstanding;
        the server dispatches a step whenever it is free and at least one
        message has arrived, draining every arrived message into one
        concatenated step when ``server_batching`` is on or taking one
        step per message otherwise.  A step that started at ``t`` ends at
        ``t + server_step_time_s``; the server may dispatch again once the
        step has ended *and* the step's gradients have landed.  When
        ``stop_time`` is given, no step starts at or after that simulated
        time, and every batch still in flight is abandoned (clients
        discard the pending activations — nothing leaks).
        """
        tracker = MetricTracker()
        sim = Simulator()
        exhausted: set = set()
        waiting: Deque[EndSystem] = deque()  # "block" policy: deferred senders
        in_flight: Dict[int, Tuple[ActivationMessage, EndSystem]] = {}
        state = {"next_free": self.clock, "dispatch_scheduled": False}
        self._in_transit = 0

        def try_send(end_system: EndSystem, at_time: float) -> None:
            if end_system.system_id in exhausted or sim.stopped:
                return
            if stop_time is not None and at_time >= stop_time:
                # Past the budget: stop feeding new work into the pipeline.
                return
            if self._blocking() and not self._queue_has_room():
                waiting.append(end_system)
                self.stats.blocked_sends += 1
                return
            try:
                images, labels = next(iterators[end_system.system_id])
            except StopIteration:
                exhausted.add(end_system.system_id)
                return
            message = self._send_uplink(end_system, images, labels, at_time)
            if message is None:
                # Dropped in transit; the lost batch is forgotten and the
                # client immediately computes its next one.
                try_send(end_system, at_time)
                return
            self._in_transit += 1
            in_flight[message.sequence] = (message, end_system)
            sim.schedule(
                message.arrival_time,
                lambda s, m=message, e=end_system: on_arrival(s, m, e),
                priority=PRIORITY_ARRIVAL,
                label="uplink-arrival",
            )

        def on_arrival(sim: Simulator, message: ActivationMessage,
                       end_system: EndSystem) -> None:
            in_flight.pop(message.sequence, None)
            if not self._admit(message, end_system):
                # Queue overflow ("drop" policy): the client is NACKed at
                # arrival time and moves on to its next batch.
                try_send(end_system, sim.now)
                return
            maybe_dispatch(sim)

        def maybe_dispatch(sim: Simulator) -> None:
            if state["dispatch_scheduled"] or sim.now < state["next_free"]:
                return
            if not self.server.has_pending():
                return
            state["dispatch_scheduled"] = True
            sim.schedule(sim.now, dispatch, priority=PRIORITY_DISPATCH, label="server-step")

        def release_waiters(sim: Simulator, at_time: float) -> None:
            while waiting and self._queue_has_room():
                try_send(waiting.popleft(), at_time)

        def dispatch(sim: Simulator) -> None:
            state["dispatch_scheduled"] = False
            if not self.server.has_pending():
                # Went idle; the next arrival re-triggers a dispatch.
                return
            start_time = sim.now
            if stop_time is not None and start_time >= stop_time:
                halt(sim)
                return
            if self.config.server_batching:
                # Batched draining: every message that has arrived by
                # start_time is folded into one concatenated server step
                # costing a single server_step_time_s.
                results = self.server.process_pending_batch(now=start_time)
            else:
                results = [self.server.process_next(now=start_time)]
            self.stats.server_steps += 1
            # The pops above freed queue slots; blocked senders go first.
            release_waiters(sim, start_time)
            finish_time = start_time + self.config.server_step_time_s
            self.clock = max(self.clock, finish_time)
            next_dispatch_at = finish_time
            for activation_message, gradient_message in results:
                tracker.update(
                    {"loss": gradient_message.loss, "accuracy": gradient_message.accuracy},
                    count=activation_message.batch_size,
                )
                end_system = self._by_id[activation_message.end_system_id]
                downlink = self._send_downlink(end_system, gradient_message, finish_time)
                if downlink is None:
                    end_system.notify_drop(gradient_message.batch_id)
                    # The client moves on as soon as the step has ended.
                    sim.schedule(
                        finish_time,
                        lambda s, e=end_system: try_send(e, s.now),
                        priority=PRIORITY_LANDING,
                        label="gradient-lost",
                    )
                    continue
                next_dispatch_at = max(next_dispatch_at, downlink.arrival_time)
                self.clock = max(self.clock, downlink.arrival_time)
                sim.schedule(
                    downlink.arrival_time,
                    lambda s, e=end_system, g=gradient_message: land(s, e, g),
                    priority=PRIORITY_LANDING,
                    label="gradient-landing",
                )
            # The server may start its next step once it is free and this
            # step's gradients have all landed.
            state["next_free"] = next_dispatch_at
            state["dispatch_scheduled"] = True
            sim.schedule(next_dispatch_at, dispatch, priority=PRIORITY_DISPATCH,
                         label="server-step")

        def land(sim: Simulator, end_system: EndSystem,
                 gradient_message: GradientMessage) -> None:
            end_system.apply_gradient(gradient_message)
            # The client computes its next batch as soon as the gradient lands.
            try_send(end_system, sim.now)

        def halt(sim: Simulator) -> None:
            # Budget exhausted.  Abandon whatever has not been trained on —
            # uplinks still in flight and messages sitting in the queue —
            # and make sure the owning clients forget the activations.
            if stop_time is not None:
                self.clock = max(self.clock, stop_time)
            for message, end_system in in_flight.values():
                end_system.discard_pending(message.batch_id)
                self.stats.cancelled_at_stop += 1
            in_flight.clear()
            # flush_queue also releases the messages' activation-arena
            # rows, so a budgeted stop does not pin staged memory.
            for message in self.server.flush_queue():
                self._by_id[message.end_system_id].discard_pending(message.batch_id)
                self.stats.cancelled_at_stop += 1
            waiting.clear()
            self._in_transit = 0
            sim.stop()

        # Prime the pipeline: every client ships max_in_flight batches.
        for end_system in self.end_systems:
            for _ in range(self.config.max_in_flight):
                try_send(end_system, self.clock)
        sim.run()
        self.stats.events_processed += sim.processed_events
        return tracker
